//! Re-entrant spout core: one `step()` = one iteration of the classic
//! spout loop, so the same code drives a dedicated thread
//! (`Scheduling::ThreadPerTask`) or a work-stealing activation that
//! must yield between steps (`Scheduling::WorkStealing`).
//!
//! When the planner fused a `spout → bolt → …` chain, the core also
//! owns the chain tail ([`SpoutChain`]): every produced tuple runs the
//! fused bolts inline and only the *final* outputs are routed. Ack
//! bookkeeping stays exactly-once: the chain's final edge ids XOR into
//! the root's tree, and a holding stage contributes one synthetic
//! "hold token" edge that is acked when the stage commits — the same
//! shape the unfused runtime builds from real channel edges.

use super::emit::EmitCtx;
use super::fuse::{ChainOut, FusedChain};
use super::{decode_root, encode_root, Route, Semantics, Sink};
use crate::acker::Acker;
use crate::channel::Notifier;
use crate::metrics::{CounterHandle, HistogramHandle, Metrics, Sampler};
use crate::supervise::{panic_message, RestartDecision, RestartPolicy, RestartTracker};
use crate::time::{WatermarkConfig, WatermarkGen, WatermarkMerger};
use crate::topology::Spout;
use crate::tuple::{tuple_of, Tuple};
use sa_core::rng::SplitMix64;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything a spout task needs from the executor, scheduler-agnostic.
pub(crate) struct SpoutCtx {
    pub(crate) task: usize,
    pub(crate) name: String,
    pub(crate) routes: Vec<Route>,
    pub(crate) acker: Arc<Mutex<Acker>>,
    pub(crate) semantics: Semantics,
    pub(crate) metrics: Metrics,
    pub(crate) sink: Sink,
    pub(crate) drop_prob: f64,
    /// Chaos: link-delay injection for this component's sends.
    pub(crate) delay: Option<(f64, Duration)>,
    /// Chaos: probability that one `next_tuple` call panics.
    pub(crate) panic_prob: f64,
    /// Supervision policy for this component.
    pub(crate) restart: RestartPolicy,
    /// Replay budget before quarantine (`None` = replay forever).
    pub(crate) max_replays: Option<u32>,
    /// Escalation: topology-wide abort flag + first-failure slot.
    pub(crate) abort: Arc<AtomicBool>,
    pub(crate) failure: Arc<Mutex<Option<String>>>,
    /// Run epoch: the injectable clock for restart-window accounting.
    pub(crate) run_start: Instant,
    pub(crate) seed: u64,
    pub(crate) batch_size: usize,
    pub(crate) batch_linger: Duration,
    pub(crate) sample_every: u32,
    pub(crate) ack_timeout: Duration,
    pub(crate) shutdown_timeout: Duration,
    pub(crate) unclean: Arc<AtomicBool>,
    pub(crate) kill: Option<Arc<AtomicBool>>,
    /// This task's global watermark-source id.
    pub(crate) wm_source: u32,
    /// Watermark policy (`None` = event-time layer off).
    pub(crate) watermarks: Option<WatermarkConfig>,
    /// Bumped whenever ack progress lands anywhere in the topology —
    /// what an idle spout waits on instead of sleep-polling.
    pub(crate) ack_note: Arc<Notifier>,
    /// Hook run after this spout settles roots belonging to *other*
    /// spouts (wakes them so the requeued roots are picked up).
    pub(crate) on_ack: Arc<dyn Fn() + Send + Sync>,
}

/// Spout-side poison-tuple bookkeeping: replay counts per message and
/// the dead-letter output they overflow into.
struct Quarantine {
    max_replays: Option<u32>,
    /// Failures observed per spout-local message id.
    counts: HashMap<u64, u32>,
    /// Terminal-sink key (`"{spout}.dlq"`).
    key: String,
    dlq: CounterHandle,
}

/// Spout-side watermark state (only built when the policy is on).
struct SpoutWm {
    gen: WatermarkGen,
    cfg: WatermarkConfig,
    /// Emissions since the last broadcast attempt.
    since_emit: usize,
    /// When this spout last produced a tuple (idle detection).
    last_emit: Instant,
    /// Whether the idle marker for the current lull was already sent.
    idle_sent: bool,
}

/// The spout loop's histogram handles (instrumented runs only).
struct SpoutObs {
    /// Sampled `next_tuple` latency (only calls that yielded a tuple).
    next_us: HistogramHandle,
    /// Sampled end-to-end latency: spout emission → root fully acked.
    ack_us: HistogramHandle,
    /// Duration of each acker settle visit (registration + drain).
    settle_us: HistogramHandle,
}

/// A fused `spout → bolt…` tail owned by the spout task, with its own
/// chain-level supervision and held-ack ledger.
pub(crate) struct SpoutChain {
    pub(crate) chain: FusedChain,
    /// Task id of the last stage — downstream watermark markers carry
    /// this source so the fused run is indistinguishable from unfused.
    pub(crate) last_id: u32,
    /// Min-merges this spout's own markers (single input by the fusion
    /// rule) so chain windows fire exactly when an unfused tail would.
    pub(crate) merger: WatermarkMerger,
    /// Chain-level restart accounting (the head bolt's policy).
    pub(crate) tracker: RestartTracker,
    /// Held roots: `(root, hold-token edge)` per input whose chain
    /// effects are not yet durable.
    pub(crate) ledger: Vec<(u64, u64)>,
    pub(crate) token_rng: SplitMix64,
    /// Chaos: max panic probability over the fused stages.
    pub(crate) panic_prob: f64,
    pub(crate) panic_rng: SplitMix64,
    pub(crate) panics: CounterHandle,
    pub(crate) restarts: CounterHandle,
    pub(crate) restart_us: Option<HistogramHandle>,
    /// Set after any successful execute; gates the idle hook.
    pub(crate) idle_dirty: bool,
    /// Escalated: the chain drops inputs (fails them for the record)
    /// while the topology aborts.
    pub(crate) zombie: bool,
}

impl SpoutChain {
    #[allow(clippy::too_many_arguments)] // built once per fused spout, at spawn
    pub(crate) fn new(
        chain: FusedChain,
        last_id: u32,
        wm_source: u32,
        restart: RestartPolicy,
        panic_prob: f64,
        seed: u64,
        metrics: &Metrics,
        sample_every: u32,
    ) -> Self {
        let head = chain.head_name().to_string();
        Self {
            merger: WatermarkMerger::new([wm_source]),
            tracker: RestartTracker::new(restart),
            ledger: Vec::new(),
            token_rng: SplitMix64::new(seed ^ 0x70C3),
            panic_prob,
            panic_rng: SplitMix64::new(seed ^ 0xC4A1),
            panics: metrics.register(&format!("{head}.panics")),
            restarts: metrics.register(&format!("{head}.restarts")),
            restart_us: (sample_every > 0)
                .then(|| metrics.register_histogram(&format!("{head}.restart_us"))),
            idle_dirty: false,
            zombie: false,
            chain,
            last_id,
        }
    }
}

/// What one `step()` did — the scheduler decides what happens next.
pub(crate) enum SpoutStep {
    /// Produced a tuple (or recovered from a panic): call again soon.
    Progress,
    /// Source exhausted for now. `seen` is the ack-notifier sequence
    /// snapshotted *before* the final settle — waiting with
    /// `wait_past(seen, …)` cannot miss an ack that landed in between.
    Idle { seen: u64 },
    /// Terminal: clean finish, shutdown timeout, kill, or escalation.
    Done,
}

/// One call into the fused tail (chaos + panic supervision applied).
enum ChainCall<'a> {
    Execute(&'a Tuple),
    Watermark(u64),
    Flush,
    Idle,
}

/// The spout state machine. `step()` is one iteration of the classic
/// spout loop; both schedulers drive it.
pub(crate) struct SpoutCore {
    spout: Box<dyn Spout>,
    pub(crate) ctx: SpoutCtx,
    emit: EmitCtx,
    obs: Option<SpoutObs>,
    tracker: RestartTracker,
    panic_rng: SplitMix64,
    panics: CounterHandle,
    restarts: CounterHandle,
    restart_us: Option<HistogramHandle>,
    quarantine: Quarantine,
    next_sampler: Sampler,
    ack_sampler: Sampler,
    local_auto: u64,
    // Fresh ack-tree root per emission: replays get a new tree, so stale
    // acks from an earlier attempt cannot corrupt it (Storm assigns new
    // root ids on re-emission for the same reason). `in_flight` maps
    // live roots back to the spout's stable message id, plus the
    // emission timestamp for sampled roots (ack-latency tracking).
    root_counter: u64,
    in_flight: HashMap<u64, (u64, Option<Instant>)>,
    // Root registrations (and chain hold-token acks) accumulated since
    // the last acker visit; applied in one lock acquisition per batch
    // rather than one per tuple.
    pending_inits: Vec<(u64, u64)>,
    pending_acks: Vec<(u64, u64)>,
    since_settle: usize,
    // Stall clock: time since the spout last made progress (an
    // emission, or a root settling). Only a full `shutdown_timeout` of
    // NO progress marks the run unclean — wall-clock age alone must
    // not, or long trickle-input runs get falsely flagged while roots
    // are still settling.
    exhausted_at: Option<Instant>,
    wm: Option<SpoutWm>,
    finished_clean: bool,
    chain: Option<SpoutChain>,
    done: bool,
}

impl SpoutCore {
    pub(crate) fn new(spout: Box<dyn Spout>, mut ctx: SpoutCtx, chain: Option<SpoutChain>) -> Self {
        let emit = EmitCtx::new(
            std::mem::take(&mut ctx.routes),
            match &chain {
                // Fused: the routed outputs are the LAST stage's, so the
                // emit-side counters keep that stage's public name.
                Some(sc) => sc.chain.tail_name().to_string(),
                None => ctx.name.clone(),
            },
            &ctx.metrics,
            ctx.sink.clone(),
            ctx.seed,
            ctx.drop_prob,
            ctx.delay,
            ctx.batch_size,
            ctx.batch_linger,
            ctx.sample_every,
        )
        // At-most-once deliveries are unanchored and chaos-free runs
        // never drop per link, so broadcast fan-out can share one
        // pivoted Frame across all targets.
        .share_broadcast(ctx.semantics == Semantics::AtMostOnce && ctx.drop_prob == 0.0);
        let obs = (ctx.sample_every > 0).then(|| SpoutObs {
            next_us: ctx.metrics.register_histogram(&format!("{}.next_us", ctx.name)),
            ack_us: ctx.metrics.register_histogram(&format!("{}.ack_latency_us", ctx.name)),
            settle_us: ctx.metrics.register_histogram(&format!("{}.settle_us", ctx.name)),
        });
        let tracker = RestartTracker::new(ctx.restart.clone());
        let panic_rng = SplitMix64::new(ctx.seed ^ 0xFA17);
        let panics = ctx.metrics.register(&format!("{}.panics", ctx.name));
        let restarts = ctx.metrics.register(&format!("{}.restarts", ctx.name));
        let restart_us = (ctx.sample_every > 0)
            .then(|| ctx.metrics.register_histogram(&format!("{}.restart_us", ctx.name)));
        let quarantine = Quarantine {
            max_replays: ctx.max_replays,
            counts: HashMap::new(),
            key: format!("{}.dlq", ctx.name),
            dlq: ctx.metrics.register(&format!("{}.dlq", ctx.name)),
        };
        let next_sampler = Sampler::new(ctx.sample_every);
        let ack_sampler = Sampler::new(ctx.sample_every);
        let wm = ctx.watermarks.take().map(|cfg| SpoutWm {
            gen: WatermarkGen::new(cfg.bound),
            cfg,
            since_emit: 0,
            last_emit: Instant::now(),
            idle_sent: false,
        });
        Self {
            spout,
            ctx,
            emit,
            obs,
            tracker,
            panic_rng,
            panics,
            restarts,
            restart_us,
            quarantine,
            next_sampler,
            ack_sampler,
            local_auto: 0,
            root_counter: 0,
            in_flight: HashMap::new(),
            pending_inits: Vec::new(),
            pending_acks: Vec::new(),
            since_settle: 0,
            exhausted_at: None,
            wm,
            finished_clean: false,
            chain,
            done: false,
        }
    }

    /// Run up to `budget` steps, stopping early on idle or done. The
    /// work-stealing runner calls this so one activation cannot
    /// monopolize a worker.
    pub(crate) fn run_slice(&mut self, budget: usize) -> SpoutStep {
        for _ in 0..budget {
            match self.step() {
                SpoutStep::Progress => {}
                stop => return stop,
            }
        }
        SpoutStep::Progress
    }

    /// One iteration of the spout loop. Never blocks beyond supervised
    /// restart backoff and chaos delays.
    pub(crate) fn step(&mut self) -> SpoutStep {
        if self.done {
            return SpoutStep::Done;
        }
        if self.ctx.kill.as_ref().is_some_and(|k| k.load(Ordering::Relaxed)) {
            // Crash: stop dead. Buffered partial batches are lost in
            // flight; in-flight trees never settle.
            self.ctx.unclean.store(true, Ordering::Relaxed);
            self.done = true;
            return SpoutStep::Done;
        }
        if self.ctx.abort.load(Ordering::Relaxed) {
            // Another task escalated: stop feeding the topology so the
            // coordinator can drain it and report the failure.
            self.ctx.unclean.store(true, Ordering::Relaxed);
            self.done = true;
            return SpoutStep::Done;
        }
        // Settle acks/fails destined for this spout — once per batch (or
        // on idle), not once per tuple.
        if self.ctx.semantics == Semantics::AtLeastOnce && self.since_settle >= self.emit.batch_size
        {
            self.since_settle = 0;
            self.settle();
        }
        self.emit.flush_if_lingering();
        // Panic isolation: `next_tuple` runs under `catch_unwind` (plus
        // chaos injection), so a crashing spout is supervised — backoff
        // and retry with the same instance — not a dead topology.
        let attempt = if self.ctx.panic_prob > 0.0 && self.panic_rng.bernoulli(self.ctx.panic_prob)
        {
            Err("injected chaos panic (FaultPlan)".to_string())
        } else {
            let t0 = self.next_sampler.hit().then(Instant::now);
            match catch_unwind(AssertUnwindSafe(|| self.spout.next_tuple())) {
                Ok(produced) => {
                    if produced.is_some() {
                        if let (Some(t0), Some(obs)) = (t0, &self.obs) {
                            obs.next_us.record(t0.elapsed().as_secs_f64() * 1e6);
                        }
                    }
                    Ok(produced)
                }
                Err(payload) => Err(panic_message(&*payload)),
            }
        };
        let produced = match attempt {
            Ok(produced) => produced,
            Err(why) => {
                self.panics.add(1);
                self.ctx.metrics.task_panic();
                match self.tracker.on_panic(self.ctx.run_start.elapsed()) {
                    RestartDecision::Restart(backoff) => {
                        let t0 = Instant::now();
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                        self.restarts.add(1);
                        self.ctx.metrics.task_restart();
                        if let Some(h) = &self.restart_us {
                            h.record(t0.elapsed().as_secs_f64() * 1e6);
                        }
                        return SpoutStep::Progress;
                    }
                    RestartDecision::Escalate => {
                        {
                            let mut slot = self.ctx.failure.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(format!(
                                    "spout '{}' task {} escalated: restart budget exhausted \
                                     ({} restarts in the last {:?}): {why}",
                                    self.ctx.name,
                                    self.ctx.task,
                                    self.tracker.restarts_in_window(self.ctx.run_start.elapsed()),
                                    self.tracker.policy().window,
                                ));
                            }
                        }
                        self.ctx.metrics.escalated();
                        self.ctx.abort.store(true, Ordering::Relaxed);
                        self.ctx.unclean.store(true, Ordering::Relaxed);
                        self.done = true;
                        return SpoutStep::Done;
                    }
                }
            }
        };
        match produced {
            Some(t) => {
                self.process(t);
                SpoutStep::Progress
            }
            None => self.idle_step(),
        }
    }

    /// Route one produced tuple (directly, or through the fused tail).
    fn process(&mut self, mut t: Tuple) {
        self.exhausted_at = None;
        self.since_settle += 1;
        // The spout's own message id (stable across replays) arrives in
        // `root`; it becomes the tuple's lineage.
        let local = if t.root != 0 {
            t.root
        } else {
            self.local_auto += 1;
            self.local_auto
        };
        t.lineage = local;
        match self.ctx.semantics {
            Semantics::AtMostOnce => {
                t.root = 0;
                match self.chain.take() {
                    None => {
                        self.emit.push(&t, false);
                    }
                    Some(mut sc) => {
                        if !sc.zombie {
                            sc.idle_dirty = true;
                            if let Some(out) = self.chain_guarded(&mut sc, ChainCall::Execute(&t)) {
                                if !out.failed {
                                    for mut e in out.emitted {
                                        e.root = 0;
                                        self.emit.push(&e, false);
                                    }
                                }
                            }
                        }
                        self.chain = Some(sc);
                    }
                }
            }
            Semantics::AtLeastOnce => {
                self.root_counter += 1;
                let root = encode_root(self.ctx.task, self.root_counter);
                t.root = root;
                let born = self.ack_sampler.hit().then(Instant::now);
                self.in_flight.insert(root, (local, born));
                match self.chain.take() {
                    None => {
                        let xor = self.emit.push(&t, true);
                        self.pending_inits.push((root, xor));
                    }
                    Some(mut sc) => {
                        self.chain_execute_alo(&mut sc, &t, root, local);
                        self.chain = Some(sc);
                    }
                }
            }
        }
        let mut adv = None;
        if let Some(w) = self.wm.as_mut() {
            if let Some(et) = t.event_time {
                w.gen.observe(et);
            }
            w.since_emit += 1;
            w.last_emit = Instant::now();
            w.idle_sent = false;
            if w.since_emit >= w.cfg.emit_every {
                w.since_emit = 0;
                adv = w.gen.advance();
            }
        }
        if let Some(new_wm) = adv {
            self.broadcast_wm(new_wm, false);
        }
    }

    /// Exactly-once path through the fused tail: final edge ids (plus a
    /// hold token per holding input) form the root's ack tree. A chain
    /// panic or explicit `fail()` fails the root *then* registers an
    /// empty tree — the fail-before-init tombstone routes it straight
    /// to the replay path, never to a spurious success.
    fn chain_execute_alo(&mut self, sc: &mut SpoutChain, t: &Tuple, root: u64, local: u64) {
        if sc.zombie {
            self.fail_root_now(root);
            return;
        }
        sc.idle_dirty = true;
        match self.chain_guarded(sc, ChainCall::Execute(t)) {
            None => self.fail_root_now(root),
            Some(out) if out.failed => self.fail_root_now(root),
            Some(out) => {
                let mut xor = 0u64;
                for mut e in out.emitted {
                    e.root = root;
                    e.lineage = local;
                    xor ^= self.emit.push(&e, true);
                }
                if out.hold {
                    let token = sc.token_rng.next_u64() | 1;
                    xor ^= token;
                    sc.ledger.push((root, token));
                }
                if out.release {
                    self.pending_acks.append(&mut sc.ledger);
                }
                self.pending_inits.push((root, xor));
            }
        }
    }

    /// Fail + register a root in ONE acker visit: the fail lands first
    /// (orphan tombstone), so the zero-XOR init settles as FAILED and
    /// the message replays. `init(root, 0)` alone would read as a
    /// completed tree and spuriously ack the message.
    fn fail_root_now(&mut self, root: u64) {
        let mut acker = self.ctx.acker.lock().unwrap();
        acker.fail(root);
        acker.init(root, 0);
    }

    /// The exhausted branch: flush, settle, and decide between clean
    /// finish, stall timeout, and parking.
    fn idle_step(&mut self) -> SpoutStep {
        // Snapshot the notifier BEFORE settling: an ack landing after
        // this point bumps the sequence and `wait_past(seen, …)` returns
        // immediately instead of sleeping on missed progress.
        let seen = self.ctx.ack_note.seq();
        // Idle: commit the fused tail (may release held acks), then
        // ship partial batches and settle before deciding.
        self.chain_idle();
        self.emit.flush_all();
        let mut progressed = 0;
        if self.ctx.semantics == Semantics::AtLeastOnce {
            self.since_settle = 0;
            progressed = self.settle();
        }
        let done = match self.ctx.semantics {
            Semantics::AtMostOnce => true,
            Semantics::AtLeastOnce => self.spout.pending() == 0,
        };
        if done {
            self.finished_clean = true;
            self.finish();
            self.done = true;
            return SpoutStep::Done;
        }
        // An idle lull long enough to trip the timeout: drop the
        // out-of-orderness margin (everything emittable has been
        // emitted) and declare this source idle so it stops gating
        // downstream min-merges.
        let mut idle_mark = None;
        if let Some(w) = self.wm.as_mut() {
            if let Some(timeout) = w.cfg.idle_timeout {
                if !w.idle_sent && w.last_emit.elapsed() >= timeout {
                    w.idle_sent = true;
                    idle_mark = Some((w.gen.advance_to_max(), w.gen.max_ts().unwrap_or(0)));
                }
            }
        }
        if let Some((adv, max_ts)) = idle_mark {
            if let Some(new_wm) = adv {
                self.broadcast_wm(new_wm, false);
            }
            self.broadcast_idle(max_ts);
        }
        if progressed > 0 {
            // Roots settled: the run is draining, not stuck.
            self.exhausted_at = None;
        }
        let started = *self.exhausted_at.get_or_insert_with(Instant::now);
        if started.elapsed() > self.ctx.shutdown_timeout {
            self.ctx.unclean.store(true, Ordering::Relaxed);
            self.finish();
            self.done = true;
            return SpoutStep::Done;
        }
        SpoutStep::Idle { seen }
    }

    /// Terminal flush: final partial batches, end-of-stream watermark,
    /// and the fused tail's `flush` (its stages never see the
    /// coordinator's `Flush` message — the chain has no inbox).
    fn finish(&mut self) {
        self.emit.flush_all();
        if self.finished_clean && self.wm.is_some() {
            // End of stream: promise "no more data, ever" so every
            // pending window downstream fires before the flush phase.
            // (FIFO order puts this marker ahead of the coordinator's
            // `Flush`, which is only sent after spouts are joined.)
            self.broadcast_wm(u64::MAX, false);
        }
        if let Some(mut sc) = self.chain.take() {
            if !sc.zombie {
                if let Some(out) = self.chain_guarded(&mut sc, ChainCall::Flush) {
                    for mut e in out.emitted {
                        e.root = 0;
                        self.emit.push(&e, false);
                    }
                    if out.release {
                        self.pending_acks.append(&mut sc.ledger);
                    }
                }
                self.emit.flush_all();
            }
            self.chain = Some(sc);
        }
        // Leftover bookkeeping (e.g. from the flush release) still has
        // to reach the acker so trees settle for a later settle() by a
        // sibling — or just leave a consistent acker behind.
        if !self.pending_inits.is_empty() || !self.pending_acks.is_empty() {
            let mut acker = self.ctx.acker.lock().unwrap();
            for (root, xor) in self.pending_inits.drain(..) {
                acker.init(root, xor);
            }
            for (root, val) in self.pending_acks.drain(..) {
                acker.ack(root, val);
            }
        }
    }

    /// Run the fused tail's idle hook (commit windows / release held
    /// acks) when there is anything to commit.
    fn chain_idle(&mut self) {
        let Some(mut sc) = self.chain.take() else { return };
        if !sc.zombie && (sc.idle_dirty || !sc.ledger.is_empty() || sc.chain.holding()) {
            sc.idle_dirty = false;
            if let Some(out) = self.chain_guarded(&mut sc, ChainCall::Idle) {
                for mut e in out.emitted {
                    e.root = 0;
                    self.emit.push(&e, false);
                }
                if out.release {
                    self.pending_acks.append(&mut sc.ledger);
                }
            }
        }
        self.chain = Some(sc);
    }

    /// Broadcast a watermark downstream — directly, or through the
    /// fused tail's merger + `on_watermark` cascade so fused windows
    /// fire at exactly the advance an unfused tail would see.
    fn broadcast_wm(&mut self, wm: u64, idle: bool) {
        let Some(mut sc) = self.chain.take() else {
            self.emit.broadcast_watermark(self.ctx.wm_source, wm, idle);
            return;
        };
        if sc.zombie {
            // An escalated unfused bolt drains and discards markers;
            // match it (the topology is aborting anyway).
            self.chain = Some(sc);
            return;
        }
        if let Some(adv) = sc.merger.update(self.ctx.wm_source, wm, idle) {
            if let Some(out) = self.chain_guarded(&mut sc, ChainCall::Watermark(adv)) {
                for mut e in out.emitted {
                    e.root = 0;
                    self.emit.push(&e, false);
                }
                if out.release {
                    self.pending_acks.append(&mut sc.ledger);
                }
            }
            // Forward even when the callback panicked — the marker is
            // control-plane, exactly as the unfused runtime forwards it.
            self.emit.broadcast_watermark(sc.last_id, adv, false);
        }
        self.chain = Some(sc);
    }

    /// Forward this source's idle marker. A fused tail swallows it:
    /// unfused bolts only ever forward strict advances (idle=false), so
    /// the chain records the idle source in its merger and broadcasts
    /// nothing — downstream sees exactly what the unfused last stage
    /// would have sent.
    fn broadcast_idle(&mut self, max_ts: u64) {
        let Some(mut sc) = self.chain.take() else {
            self.emit.broadcast_watermark(self.ctx.wm_source, max_ts, true);
            return;
        };
        if !sc.zombie {
            sc.merger.update(self.ctx.wm_source, max_ts, true);
        }
        self.chain = Some(sc);
    }

    /// One guarded call into the fused tail: chaos injection (execute
    /// only, matching the unfused data path), panic capture, and
    /// chain-level supervision. `None` = the call panicked (and was
    /// supervised); the input must be failed for replay.
    fn chain_guarded(&mut self, sc: &mut SpoutChain, call: ChainCall) -> Option<ChainOut> {
        let inject = matches!(call, ChainCall::Execute(_))
            && sc.panic_prob > 0.0
            && sc.panic_rng.bernoulli(sc.panic_prob);
        let outcome = if inject {
            Err("injected chaos panic (FaultPlan)".to_string())
        } else {
            let chain = &mut sc.chain;
            catch_unwind(AssertUnwindSafe(|| match call {
                ChainCall::Execute(t) => chain.execute(t),
                ChainCall::Watermark(wm) => chain.on_watermark(wm),
                ChainCall::Flush => chain.flush(),
                ChainCall::Idle => chain.on_idle(),
            }))
            .map_err(|payload| panic_message(&*payload))
        };
        match outcome {
            Ok(out) => Some(out),
            Err(why) => {
                self.supervise_chain(sc, &why);
                None
            }
        }
    }

    /// Chain-level supervision: backoff + rebuild factory stages (and
    /// fail held roots for replay), or escalate the whole run.
    fn supervise_chain(&mut self, sc: &mut SpoutChain, why: &str) {
        sc.panics.add(1);
        self.ctx.metrics.task_panic();
        match sc.tracker.on_panic(self.ctx.run_start.elapsed()) {
            RestartDecision::Restart(backoff) => {
                let t0 = Instant::now();
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                match sc.chain.rebuild() {
                    Ok(true) => self.fail_ledger(sc),
                    Ok(false) => {} // instance stages resume in place
                    Err(e) => {
                        self.escalate_chain(sc, &format!("restart rebuild failed: {e}"));
                        return;
                    }
                }
                sc.restarts.add(1);
                self.ctx.metrics.task_restart();
                if let Some(h) = &sc.restart_us {
                    h.record(t0.elapsed().as_secs_f64() * 1e6);
                }
            }
            RestartDecision::Escalate => self.escalate_chain(sc, why),
        }
    }

    fn escalate_chain(&mut self, sc: &mut SpoutChain, why: &str) {
        {
            let mut slot = self.ctx.failure.lock().unwrap();
            if slot.is_none() {
                *slot = Some(format!(
                    "bolt '{}' task 0 escalated (fused into spout '{}'): restart budget \
                     exhausted ({} restarts in the last {:?}): {why}",
                    sc.chain.head_name(),
                    self.ctx.name,
                    sc.tracker.restarts_in_window(self.ctx.run_start.elapsed()),
                    sc.tracker.policy().window,
                ));
            }
        }
        self.ctx.metrics.escalated();
        self.ctx.abort.store(true, Ordering::Relaxed);
        self.ctx.unclean.store(true, Ordering::Relaxed);
        sc.zombie = true;
        self.fail_ledger(sc);
    }

    /// Fail every held root (their chain effects were rolled back by the
    /// rebuild); the ack timeout is not needed — replay is immediate.
    fn fail_ledger(&mut self, sc: &mut SpoutChain) {
        if sc.ledger.is_empty() {
            return;
        }
        let mut acker = self.ctx.acker.lock().unwrap();
        for (root, _) in sc.ledger.drain(..) {
            acker.fail(root);
        }
    }

    /// One acker visit: register accumulated roots, apply deferred
    /// hold-token acks, expire stale trees, and route
    /// completions/failures back into the spout. Returns the number of
    /// this spout's roots that settled (acked, failed, or quarantined)
    /// — the shutdown loop's progress signal.
    fn settle(&mut self) -> u64 {
        let obs = self.obs.as_ref();
        let visit_start = obs.map(|_| Instant::now());
        let (completed, failed) = {
            let mut acker = self.ctx.acker.lock().unwrap();
            for (root, xor) in self.pending_inits.drain(..) {
                acker.init(root, xor);
            }
            for (root, val) in self.pending_acks.drain(..) {
                acker.ack(root, val);
            }
            acker.expire(self.ctx.ack_timeout);
            (acker.take_completed(), acker.take_failed())
        };
        let mut settled = 0u64;
        let mut requeue_completed = Vec::new();
        let mut requeue_failed = Vec::new();
        for root in completed {
            let (task, _) = decode_root(root);
            if task == self.ctx.task {
                if let Some((local, born)) = self.in_flight.remove(&root) {
                    self.spout.ack(local);
                    self.quarantine.counts.remove(&local);
                    self.ctx.metrics.root_acked();
                    settled += 1;
                    if let (Some(obs), Some(born)) = (obs, born) {
                        obs.ack_us.record(born.elapsed().as_secs_f64() * 1e6);
                    }
                }
            } else {
                // Not ours: hand it back for the owning spout.
                requeue_completed.push(root);
            }
        }
        for root in failed {
            let (task, _) = decode_root(root);
            if task == self.ctx.task {
                if let Some((local, _)) = self.in_flight.remove(&root) {
                    self.ctx.metrics.root_failed();
                    let replays = self.quarantine.counts.entry(local).or_insert(0);
                    *replays += 1;
                    if self.quarantine.max_replays.is_some_and(|max| *replays > max) {
                        // Poison: its replay budget is spent. Retire the
                        // message from the spout and divert it (or an
                        // id-only stub) to the dead-letter output.
                        self.quarantine.counts.remove(&local);
                        let mut t = self
                            .spout
                            .quarantine(local)
                            .unwrap_or_else(|| tuple_of([local as i64]));
                        t.lineage = local;
                        t.root = 0;
                        self.ctx.metrics.root_quarantined();
                        self.quarantine.dlq.add(1);
                        super::sink_slot(&self.ctx.sink, &self.quarantine.key)
                            .lock()
                            .unwrap()
                            .push(t);
                    } else if self.spout.fail(local) {
                        // Replay is the spout's decision: only count one
                        // when the spout actually requeued the message.
                        self.ctx.metrics.root_replayed();
                    }
                    settled += 1;
                }
            } else {
                requeue_failed.push(root);
            }
        }
        let requeued = !requeue_completed.is_empty() || !requeue_failed.is_empty();
        if requeued {
            let mut acker = self.ctx.acker.lock().unwrap();
            for root in requeue_completed {
                acker.requeue_completed(root);
            }
            for root in requeue_failed {
                acker.requeue_failed(root);
            }
        }
        if let (Some(obs), Some(visit_start)) = (obs, visit_start) {
            obs.settle_us.record(visit_start.elapsed().as_secs_f64() * 1e6);
        }
        if requeued {
            // Roots for sibling spouts landed: wake them.
            (self.ctx.on_ack)();
        }
        settled
    }
}
