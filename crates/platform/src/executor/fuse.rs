//! Operator-chain fusion: run a degree-1 co-located pipeline as ONE
//! schedulable activation, delivering intermediate tuples by inline
//! `execute` calls instead of channel hops.
//!
//! The planner (`crate::topology`'s chain planner) guarantees every
//! fused edge is a parallelism-1, single-subscription,
//! single-subscriber hop, so inline delivery is observationally
//! equivalent to the FIFO channel it replaces: same tuples, same
//! order, same per-stage callbacks. Control events (watermark, flush,
//! idle) cascade stage by stage *behind* the data they cover, exactly
//! as in-band markers would. Each stage keeps its own public metrics
//! identity (`{stage}.executed`, `{stage}.emitted`, `{stage}.fired`,
//! `{stage}.dropped_late`, `{stage}.late` sink key) so fused and
//! unfused runs are observably alike; only the *last* stage's
//! `emitted` is deferred to the shared emit path, which counts it.
//!
//! Supervision wraps the whole chain as one unit (the head's restart
//! policy): a panic anywhere backs off and rebuilds every
//! factory-declared stage; held acks are failed for replay, exactly as
//! an unfused restart-from-checkpoint would.

use super::{BoltTask, Sink};
use crate::metrics::{CounterHandle, Metrics};
use crate::topology::{Bolt, BoltBuilder, OutputCollector};
use crate::tuple::Tuple;

/// The result of driving one event through a fused chain: the final
/// stage's emissions plus the chain-level ack verdict.
#[derive(Default)]
pub(crate) struct ChainOut {
    /// Outputs of the last stage (intermediate hops were consumed
    /// inline). Root/lineage stamping is the caller's job, as it is
    /// for an unfused bolt's collector.
    pub(crate) emitted: Vec<Tuple>,
    /// Some stage failed the (propagated) input: the whole chain
    /// rejects it, nothing is delivered downstream.
    pub(crate) failed: bool,
    /// At least one stage is holding its effects un-durable: defer the
    /// input's ack.
    pub(crate) hold: bool,
    /// Every previously-holding stage has committed: release all held
    /// acks.
    pub(crate) release: bool,
}

impl ChainOut {
    /// View as a plain collector so the shared emission/ack path can
    /// treat a fused chain exactly like a single bolt. (`late` is
    /// always empty: the chain routes each stage's late output itself.)
    pub(crate) fn into_collector(self) -> OutputCollector {
        let mut o = OutputCollector::new();
        o.emitted = self.emitted;
        o.failed = self.failed;
        o.hold = self.hold;
        o.release = self.release;
        o
    }
}

/// Control event cascading through the chain (alongside data).
#[derive(Clone, Copy)]
enum Control {
    Watermark(u64),
    Flush,
    Idle,
}

struct ChainStage {
    name: String,
    bolt: Box<dyn Bolt>,
    factory: Option<BoltBuilder>,
    executed: CounterHandle,
    /// `None` for the last stage: the shared emit path counts it.
    emitted: Option<CounterHandle>,
    /// Tuples emitted from `on_watermark` (event-time runs only).
    fired: Option<CounterHandle>,
    dropped_late: CounterHandle,
    late_key: String,
    /// Whether this stage's latest `hold_ack` is still unreleased.
    holds: bool,
}

/// A fused pipeline of bolts, driven inline by one task activation.
pub(crate) struct FusedChain {
    stages: Vec<ChainStage>,
    sink: Sink,
    /// Registry handle kept so rebuilt stages can re-register their
    /// bolt-owned counters (registration is idempotent-sharing).
    metrics: Metrics,
    /// Whether any stage was holding after the previous event (edge
    /// detection for `ChainOut::release`).
    holding: bool,
}

impl FusedChain {
    /// Assemble a chain from the materialized bolt tasks of its stages,
    /// in chain order (`names[i]` owns `tasks[i]`).
    pub(crate) fn build(
        names: &[String],
        tasks: Vec<BoltTask>,
        metrics: &Metrics,
        sink: Sink,
        watermarks: bool,
    ) -> Self {
        let last = names.len() - 1;
        let stages = names
            .iter()
            .zip(tasks)
            .enumerate()
            .map(|(i, (name, task))| {
                let mut bolt = task.bolt;
                bolt.register_metrics(metrics, name);
                ChainStage {
                    executed: metrics.register(&format!("{name}.executed")),
                    emitted: (i != last).then(|| metrics.register(&format!("{name}.emitted"))),
                    fired: watermarks.then(|| metrics.register(&format!("{name}.fired"))),
                    dropped_late: metrics.register(&format!("{name}.dropped_late")),
                    late_key: format!("{name}.late"),
                    holds: false,
                    bolt,
                    factory: task.factory,
                    name: name.clone(),
                }
            })
            .collect();
        Self { stages, sink, metrics: metrics.clone(), holding: false }
    }

    /// Name of the head stage (supervision attribution).
    pub(crate) fn head_name(&self) -> &str {
        &self.stages[0].name
    }

    /// Name of the last stage (the chain's public emission identity).
    pub(crate) fn tail_name(&self) -> &str {
        &self.stages[self.stages.len() - 1].name
    }

    /// Drive one input through every stage.
    pub(crate) fn execute(&mut self, input: &Tuple) -> ChainOut {
        self.cascade(Some(input), None)
    }

    /// Cascade a watermark advance: each stage's `on_watermark` fires
    /// after the data (and upstream firings) it covers.
    pub(crate) fn on_watermark(&mut self, wm: u64) -> ChainOut {
        self.cascade(None, Some(Control::Watermark(wm)))
    }

    /// Cascade the end-of-run flush.
    pub(crate) fn flush(&mut self) -> ChainOut {
        self.cascade(None, Some(Control::Flush))
    }

    /// Cascade the idle hook (commit + release held acks).
    pub(crate) fn on_idle(&mut self) -> ChainOut {
        self.cascade(None, Some(Control::Idle))
    }

    /// Whether any stage currently holds un-durable effects.
    pub(crate) fn holding(&self) -> bool {
        self.holding
    }

    /// Supervised restart: rebuild every factory-declared stage (it
    /// recovers from its checkpoint). Returns `true` when anything was
    /// rebuilt — the caller must then fail held roots for replay, as
    /// for an unfused restart-from-checkpoint. Instance stages resume
    /// in place, as they do unfused.
    pub(crate) fn rebuild(&mut self) -> sa_core::Result<bool> {
        let mut any = false;
        for stage in &mut self.stages {
            if let Some(build) = stage.factory.as_mut() {
                stage.bolt = build()?;
                stage.bolt.register_metrics(&self.metrics, &stage.name);
                stage.holds = false;
                any = true;
            }
        }
        self.holding = self.stages.iter().any(|s| s.holds);
        Ok(any)
    }

    /// The fusion engine: feed data through stage 0..n, then let the
    /// control event (if any) fire at each stage *behind* its data —
    /// the same order the in-band messages impose unfused. A stage
    /// panic propagates to the caller's `catch_unwind` (supervision is
    /// chain-level).
    fn cascade(&mut self, input: Option<&Tuple>, event: Option<Control>) -> ChainOut {
        let mut out = ChainOut::default();
        let mut carry: Vec<Tuple> = Vec::new();
        for k in 0..self.stages.len() {
            let mut produced: Vec<Tuple> = Vec::new();
            if k == 0 {
                if let Some(t) = input {
                    self.run_execute(k, t, &mut produced, &mut out);
                }
            } else {
                for t in std::mem::take(&mut carry) {
                    if out.failed {
                        break;
                    }
                    self.run_execute(k, &t, &mut produced, &mut out);
                }
            }
            if out.failed {
                // A failed stage rejects the whole input: the root is
                // failed for replay, nothing reaches the tail.
                break;
            }
            if let Some(ctl) = event {
                self.run_control(k, ctl, &mut produced);
            }
            carry = produced;
        }
        if !out.failed {
            out.emitted = carry;
        }
        let any = self.stages.iter().any(|s| s.holds);
        out.hold = any;
        out.release = self.holding && !any;
        self.holding = any;
        out
    }

    /// One stage's `execute`, unfused-equivalent: late diverted to the
    /// stage's side output, emissions inherit root/lineage/event-time
    /// from the stage's input (the upstream hop would have stamped the
    /// same values).
    fn run_execute(
        &mut self,
        k: usize,
        input: &Tuple,
        produced: &mut Vec<Tuple>,
        out: &mut ChainOut,
    ) {
        let stage = &mut self.stages[k];
        let mut o = OutputCollector::new();
        stage.bolt.execute(input, &mut o);
        stage.executed.add(1);
        route_late(stage, &self.sink, std::mem::take(&mut o.late));
        if o.failed {
            out.failed = true;
            return;
        }
        if o.release {
            stage.holds = false;
        }
        if o.hold && !o.release {
            stage.holds = true;
        }
        if let Some(c) = &stage.emitted {
            c.add(o.emitted.len() as u64);
        }
        for mut e in o.emitted {
            e.root = input.root;
            e.lineage = input.lineage;
            if e.event_time.is_none() {
                e.event_time = input.event_time;
            }
            produced.push(e);
        }
    }

    /// One stage's control callback (`on_watermark`/`flush`/`on_idle`),
    /// unfused-equivalent: emissions ride unanchored (root 0) and a
    /// control-path `fail()` is ignored, exactly as on the channel
    /// runtime's control path.
    fn run_control(&mut self, k: usize, ctl: Control, produced: &mut Vec<Tuple>) {
        let stage = &mut self.stages[k];
        let mut o = OutputCollector::new();
        match ctl {
            Control::Watermark(wm) => stage.bolt.on_watermark(wm, &mut o),
            Control::Flush => stage.bolt.flush(&mut o),
            Control::Idle => stage.bolt.on_idle(&mut o),
        }
        route_late(stage, &self.sink, std::mem::take(&mut o.late));
        if matches!(ctl, Control::Watermark(_)) {
            if let Some(f) = &stage.fired {
                f.add(o.emitted.len() as u64);
            }
        }
        if o.release {
            stage.holds = false;
        }
        if o.hold && !o.release {
            stage.holds = true;
        }
        if let Some(c) = &stage.emitted {
            c.add(o.emitted.len() as u64);
        }
        for mut e in o.emitted {
            e.root = 0;
            produced.push(e);
        }
    }
}

/// Deliver a stage's late tuples to its `"{stage}.late"` sink key.
/// Late tuples are rare by construction, so this takes the sink lock
/// directly rather than batching.
fn route_late(stage: &ChainStage, sink: &Sink, late: Vec<Tuple>) {
    if late.is_empty() {
        return;
    }
    stage.dropped_late.add(late.len() as u64);
    super::sink_slot(sink, &stage.late_key).lock().unwrap().extend(late);
}
