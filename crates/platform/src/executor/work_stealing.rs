//! The work-stealing runtime ([`crate::Scheduling::WorkStealing`]): a
//! fixed pool of N workers executes *activations* — "run this operator
//! task against its pending input" — instead of parking one OS thread
//! per task.
//!
//! Moving parts (primitives live in `channel.rs`):
//!
//! * one Chase–Lev [`WsDeque`] per worker (owner LIFO / stealer FIFO);
//! * a global [`Injector`] for out-of-pool submissions (spout
//!   activations, coordinator flush/terminate, timer firings) and
//!   deque overflow; idle workers spin → steal → park on its condvar —
//!   no sleep-polling anywhere;
//! * a timer heap for the two delayed re-activations the semantics
//!   need: a spout's ack-settle sweep cadence and a bolt's held-ack
//!   commit retry;
//! * per-slot `scheduled` flags so one task is never run by two
//!   workers, with the classic "clear, re-check inbox, re-claim"
//!   hand-off that cannot strand a message.
//!
//! Degree-1 co-located chains (the planner in `crate::topology`) fuse
//! into a single activation driving a [`FusedChain`] — intermediate
//! hops become inline `execute` calls with no channel, no re-batching,
//! no extra schedule. Supervision wraps activations, not threads: a
//! panic backs off and rebuilds the task's state inside its slot, and
//! the slot is simply re-enqueued.
//!
//! ## Why a slot never loses a wakeup
//!
//! An inbox send invokes `schedule(slot)`: claim `scheduled` via
//! `swap(true)`; only the winner enqueues. A finishing runner clears
//! the flag with `store(false)` and *then* re-checks the inbox: any
//! message that raced in either (a) arrived before the clear — the
//! runner's re-check sees it, re-claims, re-enqueues — or (b) arrived
//! after — the sender's own `schedule` sees `scheduled == false` and
//! enqueues. Parking is delegated to [`Injector::prepare_park`], whose
//! parked-count handshake closes the same window at the pool level.

use super::bolt::{BoltCore, TaskBolt, WorkerCtx};
use super::fuse::FusedChain;
use super::spout::{SpoutChain, SpoutCore, SpoutCtx, SpoutStep};
use super::{BoltTask, Msg, Route, RunCore, RunResult, Sender};
use crate::channel::{inbox_channel, InboxReceiver, Injector, WsDeque};
use crate::metrics::SchedCounters;
use crate::supervise::panic_message;
use crate::topology::plan_chains;
use sa_core::{Result, SaError};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Tuples processed per bolt activation before the slot yields (keeps
/// a backlogged task from monopolizing a worker). Budgeting in tuples
/// rather than messages makes the fairness slice batch-size-agnostic:
/// an activation amortizes its fixed costs (unit lock, claim hand-off,
/// injector requeue) over ~2k tuples whether they arrive as 64-tuple
/// batches or singletons.
const DRAIN_TUPLES: usize = 2048;
/// Messages pulled from the inbox per lock acquisition (bulk drain).
const DRAIN_MSGS: usize = 32;
/// Spout-loop iterations per activation (same fairness bound).
const SPOUT_SLICE: usize = 128;
/// Held-ack commit retry cadence (mirrors thread-per-task's 1 ms).
const HELD_RETRY: Duration = Duration::from_millis(1);
/// Idle-spout settle sweep cadence (mirrors thread-per-task's 2 ms).
const SETTLE_SWEEP: Duration = Duration::from_millis(2);
/// Park ceiling: a worker re-checks shutdown at least this often.
const PARK_MAX: Duration = Duration::from_millis(100);

/// Distinguishes pool workers of *this* run from foreign threads (and
/// from workers of a nested run) in the thread-local below.
static SCHED_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(scheduler id, worker index)` of the current thread, if it is
    /// a pool worker — `enqueue` targets the worker's own deque.
    static WORKER: Cell<(u64, usize)> = const { Cell::new((0, usize::MAX)) };
}

/// One schedulable unit: a spout (optionally with a fused bolt tail)
/// or a bolt task / fused bolt chain with its inbox.
enum SlotKind {
    Spout(Box<Mutex<SpoutCore>>),
    Bolt { unit: Box<Mutex<(BoltCore, WorkerCtx)>>, rx: InboxReceiver<Msg> },
}

struct Slot {
    kind: SlotKind,
    /// Claimed-for-execution flag (see module docs).
    scheduled: AtomicBool,
    /// Terminal: the task ran to completion; never scheduled again.
    finished: AtomicBool,
}

/// Shared scheduler state. Slots are filled once (before any worker
/// starts) and immutable thereafter.
struct Sched {
    id: u64,
    injector: Injector,
    deques: Vec<WsDeque>,
    slots: OnceLock<Vec<Slot>>,
    /// Delayed re-activations: `(deadline, slot)` min-heap.
    timers: Mutex<BinaryHeap<Reverse<(Instant, usize)>>>,
    shutdown: AtomicBool,
    /// Coordinator waits here for slots to finish.
    done_mx: Mutex<()>,
    done_cv: Condvar,
}

impl Sched {
    fn new(workers: usize) -> Self {
        Self {
            id: SCHED_IDS.fetch_add(1, Ordering::Relaxed),
            injector: Injector::new(),
            deques: (0..workers).map(|_| WsDeque::new(256)).collect(),
            slots: OnceLock::new(),
            timers: Mutex::new(BinaryHeap::new()),
            shutdown: AtomicBool::new(false),
            done_mx: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    fn slots(&self) -> &[Slot] {
        self.slots.get().expect("slots set before workers start")
    }

    /// Request that `s` run (inbox wake hooks, ack progress, timers).
    /// Exactly one concurrent caller wins the `scheduled` claim and
    /// enqueues; the rest are free no-ops.
    fn schedule(&self, s: usize) {
        let Some(slots) = self.slots.get() else { return };
        let slot = &slots[s];
        if slot.finished.load(Ordering::Acquire) {
            return;
        }
        if slot.scheduled.swap(true, Ordering::AcqRel) {
            return;
        }
        self.enqueue(s);
    }

    /// Enqueue an already-claimed slot: a pool worker keeps it local
    /// (LIFO, cache-warm) and signals stealable surplus; everyone else
    /// goes through the injector.
    fn enqueue(&self, s: usize) {
        let (owner, wi) = WORKER.with(|w| w.get());
        if owner == self.id {
            match self.deques[wi].push(s as u64) {
                Ok(()) => {
                    // Wake a parked sibling only when the push left
                    // stealable *surplus*: a lone item is popped by
                    // this worker right after its current activation,
                    // and waking someone to lose that race is a
                    // park/unpark round-trip per batch send.
                    if self.deques[wi].len() > 1 {
                        self.injector.wake_one();
                    }
                }
                Err(v) => self.injector.push(v),
            }
        } else {
            self.injector.push(s as u64);
        }
    }

    /// Enqueue an already-claimed slot at the global FIFO — used for
    /// self-requeues (a spout's next slice, a backlogged bolt's next
    /// drain) so local LIFO order cannot starve sibling slots.
    fn enqueue_global(&self, s: usize) {
        self.injector.push(s as u64);
    }

    fn timer_at(&self, at: Instant, s: usize) {
        self.timers.lock().unwrap().push(Reverse((at, s)));
    }

    /// Schedule every due timer. Returns whether any fired.
    fn fire_timers(&self, now: Instant) -> bool {
        let mut due = Vec::new();
        {
            let mut heap = self.timers.lock().unwrap();
            while let Some(&Reverse((at, s))) = heap.peek() {
                if at > now {
                    break;
                }
                heap.pop();
                due.push(s);
            }
        }
        for &s in &due {
            self.schedule(s);
        }
        !due.is_empty()
    }

    fn next_timer(&self) -> Option<Instant> {
        self.timers.lock().unwrap().peek().map(|&Reverse((at, _))| at)
    }

    /// Mark `s` terminal and wake the coordinator.
    fn finish(&self, s: usize) {
        self.slots()[s].finished.store(true, Ordering::Release);
        let _g = self.done_mx.lock().unwrap();
        self.done_cv.notify_all();
    }

    /// Block the coordinator until every listed slot has finished.
    fn wait_finished(&self, list: &[usize]) {
        for &s in list {
            while !self.slots()[s].finished.load(Ordering::Acquire) {
                let g = self.done_mx.lock().unwrap();
                if self.slots()[s].finished.load(Ordering::Acquire) {
                    break;
                }
                drop(self.done_cv.wait_timeout(g, Duration::from_millis(20)).unwrap());
            }
        }
    }
}

/// The worker loop: own deque (LIFO) → injector → steal (FIFO, oldest
/// first) → fire timers → park. `prepare_park` + a steal re-check +
/// `park`'s internal queue re-check make the descent lost-wakeup-free.
fn worker(sched: Arc<Sched>, wi: usize, counters: SchedCounters) {
    WORKER.with(|w| w.set((sched.id, wi)));
    loop {
        if sched.shutdown.load(Ordering::Acquire) {
            break;
        }
        let found = sched.deques[wi].pop().or_else(|| sched.injector.try_pop()).or_else(|| {
            let got = steal(&sched, wi);
            if got.is_some() {
                counters.steals.add(1);
            }
            got
        });
        if let Some(s) = found {
            counters.runs.add(1);
            run_slot(&sched, s as usize);
            continue;
        }
        if sched.fire_timers(Instant::now()) {
            continue;
        }
        // Announce the park *before* the final re-check: any producer
        // that enqueues after this sees parked > 0 and notifies.
        sched.injector.prepare_park();
        if let Some(s) = steal(&sched, wi) {
            sched.injector.cancel_park();
            counters.steals.add(1);
            counters.runs.add(1);
            run_slot(&sched, s as usize);
            continue;
        }
        if sched.shutdown.load(Ordering::Acquire) {
            sched.injector.cancel_park();
            break;
        }
        let timeout = sched
            .next_timer()
            .map(|at| at.saturating_duration_since(Instant::now()))
            .map_or(PARK_MAX, |d| d.min(PARK_MAX));
        counters.parks.add(1);
        if let Some(s) = sched.injector.park(timeout) {
            counters.runs.add(1);
            run_slot(&sched, s as usize);
        }
    }
}

/// Fairness weight of one inbox message: data costs its row count,
/// control markers cost one.
fn msg_tuples(msg: &Msg) -> usize {
    match msg {
        Msg::Data(batch) => batch.len().max(1),
        Msg::Frame(frame) => frame.len(),
        _ => 1,
    }
}

/// One sweep over the sibling deques, oldest work first.
fn steal(sched: &Sched, wi: usize) -> Option<u64> {
    let n = sched.deques.len();
    (1..n).find_map(|k| sched.deques[(wi + k) % n].steal())
}

/// Execute one activation. The caller owns the slot's `scheduled`
/// claim; this either hands it back (clear → re-check → maybe
/// re-claim), keeps it across a self-requeue, or retires the slot.
fn run_slot(sched: &Arc<Sched>, s: usize) {
    let slot = &sched.slots()[s];
    match &slot.kind {
        SlotKind::Bolt { unit, rx } => {
            let mut guard = unit.lock().unwrap();
            let (core, ctx) = &mut *guard;
            if core.done {
                return;
            }
            // Chunked drain: one inbox lock per DRAIN_MSGS messages,
            // processed inline until the tuple budget runs out — the
            // run-inline-after-drain loop keeps a steady producer from
            // forcing an injector round-trip per handful of messages.
            let mut budget = DRAIN_TUPLES as i64;
            let mut chunk: Vec<Msg> = Vec::with_capacity(DRAIN_MSGS);
            while budget > 0 {
                if rx.drain(DRAIN_MSGS, &mut chunk) == 0 {
                    break;
                }
                // Every drained message is processed — the budget is
                // re-checked only between chunks, so a drained message
                // can never be stranded in the local buffer.
                for msg in chunk.drain(..) {
                    budget -= msg_tuples(&msg) as i64;
                    core.handle_msg(msg, ctx);
                    if core.done {
                        drop(guard);
                        sched.finish(s);
                        return;
                    }
                }
            }
            if rx.is_empty() {
                // Fully drained: idle hook (commit + release held acks,
                // flush partial batches) before the slot goes dormant.
                core.idle(ctx);
            }
            let held = !core.held_empty();
            drop(guard);
            slot.scheduled.store(false, Ordering::Release);
            if !rx.is_empty() {
                // Backlog (budget exhausted, or a racing send): re-claim
                // and requeue globally so siblings get the worker first.
                if !slot.scheduled.swap(true, Ordering::AcqRel) {
                    sched.enqueue_global(s);
                }
            } else if held {
                // A failed commit left acks held; retry the commit on a
                // cadence — fresh input still wakes the slot instantly.
                sched.timer_at(Instant::now() + HELD_RETRY, s);
            }
        }
        SlotKind::Spout(mx) => {
            let mut guard = mx.lock().unwrap();
            match guard.run_slice(SPOUT_SLICE) {
                SpoutStep::Progress => {
                    drop(guard);
                    // Keep the claim; yield the worker between slices.
                    sched.enqueue_global(s);
                }
                SpoutStep::Idle { seen } => {
                    let note = guard.ctx.ack_note.clone();
                    drop(guard);
                    slot.scheduled.store(false, Ordering::Release);
                    if note.seq() != seen {
                        // An ack landed between the settle and here:
                        // re-claim rather than sleep on a stale snapshot.
                        if !slot.scheduled.swap(true, Ordering::AcqRel) {
                            sched.enqueue_global(s);
                        }
                    } else {
                        // Dormant until ack progress (`on_ack` schedules
                        // spout slots directly) or the sweep cadence.
                        sched.timer_at(Instant::now() + SETTLE_SWEEP, s);
                    }
                }
                SpoutStep::Done => {
                    drop(guard);
                    sched.finish(s);
                }
            }
        }
    }
}

/// What each slot will hold, resolved before any channel or core is
/// built (wake hooks need final slot indices).
enum UnitSpec {
    /// `chain[0]` is the spout component; `chain[1..]` its fused tail.
    Spout { chain: Vec<usize>, local_idx: usize },
    /// `chain[0]` is the head bolt; singleton chains may have many
    /// tasks (`task_idx`), fused chains are parallelism-1.
    Bolt { chain: Vec<usize>, task_idx: usize },
}

pub(crate) fn run(mut core: RunCore) -> Result<RunResult> {
    let workers = core.config.scheduling.worker_count().max(1);
    let instrumented = core.config.latency_sample_every > 0;
    let watermarks = core.config.watermarks.is_some();
    let mut built = std::mem::take(&mut core.built);
    let mut spout_insts = std::mem::take(&mut core.spouts);

    // --- Plan the schedulable units: fused chains (degree-1 co-located
    //     pipelines collapse into one activation) or — with fusion off —
    //     one unit per task. ---
    let chains: Vec<Vec<usize>> = if core.config.fuse_chains {
        plan_chains(&core.decls)
    } else {
        (0..core.decls.len()).map(|i| vec![i]).collect()
    };

    // Spout task index (ack-root prefix) by declaration order — same
    // assignment as the thread-per-task runtime, so root encodings are
    // scheduler-independent.
    let mut spout_task: HashMap<(usize, usize), usize> = HashMap::new();
    let mut next_spout_task = 0usize;
    for (ci, c) in core.decls.iter().enumerate() {
        if !c.is_bolt() {
            for local in 0..c.parallelism {
                spout_task.insert((ci, local), next_spout_task);
                next_spout_task += 1;
            }
        }
    }

    let mut specs: Vec<UnitSpec> = Vec::new();
    let mut spout_slots: Vec<usize> = Vec::new();
    let mut bolt_slots_of: HashMap<String, Vec<usize>> = HashMap::new();
    for chain in &chains {
        let head = &core.decls[chain[0]];
        if head.is_bolt() {
            for task_idx in 0..head.parallelism {
                bolt_slots_of.entry(head.name.clone()).or_default().push(specs.len());
                specs.push(UnitSpec::Bolt { chain: chain.clone(), task_idx });
            }
        } else {
            for local_idx in 0..head.parallelism {
                spout_slots.push(specs.len());
                specs.push(UnitSpec::Spout { chain: chain.clone(), local_idx });
            }
        }
    }

    let sched = Arc::new(Sched::new(workers));

    // Ack progress re-activates dormant spouts immediately (and bumps
    // the run-wide notifier for the `Idle { seen }` re-check).
    let on_ack: Arc<dyn Fn() + Send + Sync> = {
        let note = core.ack_note.clone();
        let sched = sched.clone();
        let spout_slots = spout_slots.clone();
        Arc::new(move || {
            note.notify();
            for &s in &spout_slots {
                sched.schedule(s);
            }
        })
    };

    // --- Inboxes: one per bolt unit; a send invokes the slot's wake
    //     hook (schedule), not a thread unblock. One shared LinkStats
    //     gauge per component, as on the other scheduler. ---
    let mut senders: HashMap<String, Vec<Sender<Msg>>> = HashMap::new();
    let mut inboxes: HashMap<usize, InboxReceiver<Msg>> = HashMap::new();
    let mut link_stats: HashMap<String, crate::channel::LinkStats> = HashMap::new();
    for (slot, spec) in specs.iter().enumerate() {
        let UnitSpec::Bolt { chain, .. } = spec else { continue };
        let head = &core.decls[chain[0]];
        let stats = instrumented.then(|| {
            link_stats
                .entry(head.name.clone())
                .or_insert_with(|| core.metrics.register_link(&format!("{}.input", head.name)))
                .clone()
        });
        let wake: Arc<dyn Fn() + Send + Sync> = {
            let sched = sched.clone();
            Arc::new(move || sched.schedule(slot))
        };
        let (tx, rx) = inbox_channel(stats, wake);
        senders.entry(head.name.clone()).or_default().push(tx);
        inboxes.insert(slot, rx);
    }

    // Live rescaling: register every component's inbox with the
    // controller (a `Msg::Rescale` send schedules the parked slot via
    // the wake hook above) and publish the per-table `active` gauges.
    if let Some(ctl) = &core.config.rescale {
        ctl.bind(&core.metrics);
        for (name, txs) in &senders {
            ctl.register_senders(name, txs.clone());
        }
    }

    // --- Routing tables. A component fused into a chain has no inbox
    //     (no `senders` entry): its single input edge is delivered
    //     inline by the chain, so no route materializes for it. ---
    let mut routes: HashMap<String, Vec<Route>> = HashMap::new();
    for c in &core.decls {
        routes.entry(c.name.clone()).or_default();
    }
    // Columnar links require an unfused consumer: a bolt fused into a
    // chain is driven row-by-row by inline `execute` calls, so frames
    // would only be pivoted back. Singleton chain heads qualify.
    let singleton: std::collections::HashSet<&str> = chains
        .iter()
        .filter(|chain| chain.len() == 1 && core.decls[chain[0]].is_bolt())
        .map(|chain| core.decls[chain[0]].name.as_str())
        .collect();
    for c in &core.decls {
        for (upstream, grouping) in &c.inputs {
            if let Some(tx) = senders.get(&c.name) {
                routes.get_mut(upstream).unwrap().push(Route {
                    grouping: grouping.clone(),
                    senders: tx.clone(),
                    frames: singleton.contains(c.name.as_str())
                        && super::link_frames(&built, &c.name),
                    shard: core.config.rescale.as_ref().and_then(|ctl| ctl.table_of(&c.name)),
                });
            }
        }
    }

    // --- Build the slots. Seeds follow a mix64 chain in unit order,
    //     one draw per unit, as on the other scheduler. ---
    let mut task_seed = core.config.seed;
    let mut slots: Vec<Slot> = Vec::new();
    for (slot_idx, spec) in specs.iter().enumerate() {
        task_seed = sa_core::hash::mix64(task_seed);
        let kind = match spec {
            UnitSpec::Bolt { chain, task_idx } => {
                let head = &core.decls[chain[0]];
                let tail = &core.decls[*chain.last().unwrap()];
                let panic_prob = chain
                    .iter()
                    .map(|&i| core.config.faults.panic_prob_for(&core.decls[i].name))
                    .fold(0.0, f64::max);
                let ctx = WorkerCtx {
                    name: head.name.clone(),
                    emit_name: tail.name.clone(),
                    routes: routes[&tail.name].clone(),
                    acker: core.acker.clone(),
                    semantics: core.config.semantics,
                    metrics: core.metrics.clone(),
                    sink: core.sink.clone(),
                    drop_prob: core.drop_prob_for(&tail.name),
                    delay: core.config.faults.delay_for(&tail.name),
                    panic_prob,
                    restart: core.restart_for(head),
                    abort: core.abort.clone(),
                    failure: core.failure.clone(),
                    run_start: core.run_start,
                    seed: task_seed,
                    batch_size: core.config.batch_size,
                    batch_linger: core.config.batch_linger,
                    sample_every: core.config.latency_sample_every,
                    upstream_ids: core.upstream_ids[&head.name].clone(),
                    watermarks,
                    on_ack: on_ack.clone(),
                };
                let my_id = core.task_ids[&tail.name][if chain.len() == 1 { *task_idx } else { 0 }];
                let (bolt, factory) = if chain.len() == 1 {
                    let task = take_task(&mut built, &head.name);
                    (TaskBolt::Plain(task.bolt), task.factory)
                } else {
                    let names: Vec<String> =
                        chain.iter().map(|&i| core.decls[i].name.clone()).collect();
                    let tasks: Vec<BoltTask> =
                        names.iter().map(|n| take_task(&mut built, n)).collect();
                    let fc = FusedChain::build(
                        &names,
                        tasks,
                        &core.metrics,
                        core.sink.clone(),
                        watermarks,
                    );
                    (TaskBolt::Chain(fc), None)
                };
                let bc = BoltCore::new(0, *task_idx, my_id, bolt, factory, &ctx);
                let rx = inboxes.remove(&slot_idx).expect("bolt inbox");
                SlotKind::Bolt { unit: Box::new(Mutex::new((bc, ctx))), rx }
            }
            UnitSpec::Spout { chain, local_idx } => {
                let head = &core.decls[chain[0]];
                let tail = &core.decls[*chain.last().unwrap()];
                let fused = chain.len() > 1;
                // Emissions routed downstream are the tail's, so the
                // link chaos knobs (drop/delay) key on the tail; the
                // spout's own panic injection keys on the spout.
                let ctx = SpoutCtx {
                    task: spout_task[&(chain[0], *local_idx)],
                    name: head.name.clone(),
                    routes: routes[&tail.name].clone(),
                    acker: core.acker.clone(),
                    semantics: core.config.semantics,
                    metrics: core.metrics.clone(),
                    sink: core.sink.clone(),
                    drop_prob: core.drop_prob_for(&tail.name),
                    delay: core.config.faults.delay_for(&tail.name),
                    panic_prob: core.config.faults.panic_prob_for(&head.name),
                    restart: core.restart_for(head),
                    max_replays: core.config.max_replays,
                    abort: core.abort.clone(),
                    failure: core.failure.clone(),
                    run_start: core.run_start,
                    seed: task_seed,
                    batch_size: core.config.batch_size,
                    batch_linger: core.config.batch_linger,
                    sample_every: core.config.latency_sample_every,
                    ack_timeout: core.config.ack_timeout,
                    shutdown_timeout: core.config.shutdown_timeout,
                    unclean: core.unclean.clone(),
                    kill: core.config.kill.clone(),
                    wm_source: core.task_ids[&head.name][*local_idx],
                    watermarks: core.config.watermarks.clone(),
                    ack_note: core.ack_note.clone(),
                    on_ack: on_ack.clone(),
                };
                let spout_chain = fused.then(|| {
                    let names: Vec<String> =
                        chain[1..].iter().map(|&i| core.decls[i].name.clone()).collect();
                    let tasks: Vec<BoltTask> =
                        names.iter().map(|n| take_task(&mut built, n)).collect();
                    let fc = FusedChain::build(
                        &names,
                        tasks,
                        &core.metrics,
                        core.sink.clone(),
                        watermarks,
                    );
                    let panic_prob = chain[1..]
                        .iter()
                        .map(|&i| core.config.faults.panic_prob_for(&core.decls[i].name))
                        .fold(0.0, f64::max);
                    SpoutChain::new(
                        fc,
                        core.task_ids[&tail.name][0],
                        core.task_ids[&head.name][*local_idx],
                        core.restart_for(&core.decls[chain[1]]),
                        panic_prob,
                        task_seed,
                        &core.metrics,
                        core.config.latency_sample_every,
                    )
                });
                // Units are created in instance order, so the front of
                // the remaining list is always this unit's instance.
                let spout = spout_insts.get_mut(&head.name).expect("spout instances").remove(0);
                SlotKind::Spout(Box::new(Mutex::new(SpoutCore::new(spout, ctx, spout_chain))))
            }
        };
        slots.push(Slot {
            kind,
            scheduled: AtomicBool::new(false),
            finished: AtomicBool::new(false),
        });
    }
    if sched.slots.set(slots).is_err() {
        unreachable!("slots set exactly once");
    }

    // --- Start the pool, then light the spouts. ---
    let mut joins = Vec::new();
    for wi in 0..workers {
        let sched = sched.clone();
        let counters = core.metrics.register_sched_worker(wi);
        joins.push(std::thread::spawn(move || worker(sched, wi, counters)));
    }
    for &s in &spout_slots {
        sched.schedule(s);
    }

    // --- Shutdown protocol (identical to thread-per-task): spouts
    //     retire, then flush+terminate bolt units in topological order
    //     so upstream flush output reaches live downstream slots. ---
    sched.wait_finished(&spout_slots);
    let killed = core.config.kill.as_ref().is_some_and(|k| k.load(Ordering::Relaxed));
    if killed {
        core.unclean.store(true, Ordering::Relaxed);
    }
    for name in &core.order {
        let Some(tx_list) = senders.get(name) else {
            continue; // a spout, or a bolt fused into a chain
        };
        for tx in tx_list {
            if !killed {
                let _ = tx.send(Msg::Flush);
            }
            let _ = tx.send(Msg::Terminate);
        }
        sched.wait_finished(&bolt_slots_of[name]);
    }
    sched.shutdown.store(true, Ordering::Release);
    sched.injector.wake_all();
    for (wi, h) in joins.into_iter().enumerate() {
        h.join().map_err(|payload| {
            SaError::Platform(format!(
                "scheduler worker {wi} panicked outside supervision: {}",
                panic_message(&*payload)
            ))
        })?;
    }

    core.conclude()
}

/// Pull the next materialized task of `name` out of the build table.
/// Units are created in task order, so the front of the remaining list
/// is always the requesting unit's task.
fn take_task(built: &mut HashMap<String, Vec<BoltTask>>, name: &str) -> BoltTask {
    built.get_mut(name).expect("built bolt tasks").remove(0)
}
