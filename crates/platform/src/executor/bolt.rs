//! Re-entrant bolt core: message-at-a-time processing state for one
//! bolt task (or one fused bolt-headed chain), shared by both
//! schedulers. The thread-per-task runtime drives it from a dedicated
//! (or multiplexed) worker thread; the work-stealing runtime drives it
//! from whichever pool worker claimed the task's activation.

use super::emit::EmitCtx;
use super::fuse::FusedChain;
use super::{sink_slot, Msg, Route, Semantics, Sink, SinkSlot};
use crate::acker::Acker;
use crate::frame::Frame;
use crate::metrics::{CounterHandle, GaugeHandle, HistogramHandle, Metrics, Sampler};
use crate::supervise::{panic_message, RestartDecision, RestartPolicy, RestartTracker};
use crate::time::WatermarkMerger;
use crate::topology::{Bolt, BoltBuilder, OutputCollector};
use crate::tuple::Tuple;
use sa_core::rng::SplitMix64;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything a bolt task needs from the executor, scheduler-agnostic.
/// One per component (thread-per-task) or per schedulable unit
/// (work-stealing); `name` is the supervision identity (the chain head
/// for fused units) and `emit_name` the emission identity (the chain
/// tail — they coincide for plain bolts).
pub(crate) struct WorkerCtx {
    pub(crate) name: String,
    pub(crate) emit_name: String,
    pub(crate) routes: Vec<Route>,
    pub(crate) acker: Arc<Mutex<Acker>>,
    pub(crate) semantics: Semantics,
    pub(crate) metrics: Metrics,
    pub(crate) sink: Sink,
    pub(crate) drop_prob: f64,
    /// Chaos: link-delay injection for this component's sends.
    pub(crate) delay: Option<(f64, Duration)>,
    /// Chaos: probability that one `execute` call panics (fused units:
    /// max over the chain's stages).
    pub(crate) panic_prob: f64,
    /// Supervision policy for this component's tasks.
    pub(crate) restart: RestartPolicy,
    /// Escalation: topology-wide abort flag + first-failure slot.
    pub(crate) abort: Arc<AtomicBool>,
    pub(crate) failure: Arc<Mutex<Option<String>>>,
    /// Run epoch: the injectable clock for restart-window accounting.
    pub(crate) run_start: Instant,
    pub(crate) seed: u64,
    pub(crate) batch_size: usize,
    pub(crate) batch_linger: Duration,
    pub(crate) sample_every: u32,
    /// Every upstream task id (pre-seeds the watermark merger: an
    /// input never heard from blocks the merge).
    pub(crate) upstream_ids: Vec<u32>,
    /// Whether the event-time layer is on for this run.
    pub(crate) watermarks: bool,
    /// Bumped after this task applies acks/fails/releases, so idle
    /// spouts blocked on ack progress wake immediately.
    pub(crate) on_ack: Arc<dyn Fn() + Send + Sync>,
}

/// A batch's ack traffic, applied under one acker lock.
enum AckOp {
    /// `ack(root, input.id ⊕ new edges)`.
    Ack(u64, u64),
    /// Explicit failure of a root.
    Fail(u64),
}

/// What one activation executes: a single bolt, or a fused chain run
/// inline (intermediate hops by direct call, no channel).
pub(crate) enum TaskBolt {
    Plain(Box<dyn Bolt>),
    Chain(FusedChain),
}

/// Per-task processing state + supervision, driven by `handle_msg` /
/// `idle` from whichever scheduler owns the task.
pub(crate) struct BoltCore {
    /// Task index within the component (error messages, labels).
    idx: usize,
    bolt: TaskBolt,
    /// Rebuilds a plain bolt on supervised restart (factory-declared
    /// bolts recover from their checkpoint; `None` resumes in place).
    /// Chains carry their own per-stage factories.
    factory: Option<BoltBuilder>,
    /// Restart-budget accounting for this task.
    tracker: RestartTracker,
    /// Held acks: `(root, ack value)` per input whose effect is not
    /// yet durable (`OutputCollector::hold_ack`). Drained as acks on
    /// release, as fails on restart-from-checkpoint or escalation.
    held: Vec<(u64, u64)>,
    /// Escalated: drop everything until `Terminate` (the task must
    /// keep draining or bounded upstreams would deadlock).
    zombie: bool,
    /// Chaos RNG for injected panics.
    panic_rng: SplitMix64,
    panics: CounterHandle,
    restarts: CounterHandle,
    /// Restart duration (backoff sleep + rebuild), sampled runs only.
    restart_us: Option<HistogramHandle>,
    /// Whether data arrived since the last `on_idle` call.
    idle_dirty: bool,
    pub(crate) emit: EmitCtx,
    /// `None` for chains: each fused stage counts its own executes.
    executed: Option<CounterHandle>,
    /// Sampled `execute` latency (whole-chain latency for fused units).
    exec_us: Option<HistogramHandle>,
    sampler: Sampler,
    pub(crate) done: bool,
    /// This task's watermark-source id (stamped on forwarded markers;
    /// the LAST stage's id for fused units).
    my_id: u32,
    /// Min-across-inputs merge state (event-time runs only).
    merger: Option<WatermarkMerger>,
    /// Max event time seen in delivered data (watermark-lag gauge).
    max_et: u64,
    /// Tuples emitted from `on_watermark`; `None` for chains (counted
    /// per stage).
    fired: Option<CounterHandle>,
    /// Tuples diverted to the late side output (plain path; chains
    /// route late per stage).
    dropped_late: CounterHandle,
    /// Current merged watermark / its lag behind `max_et`.
    wm_gauge: Option<GaugeHandle>,
    lag_gauge: Option<GaugeHandle>,
    /// Pre-resolved terminal-sink slot for the late side output (the
    /// `"{component}.late"` key is interned once at spawn).
    late_slot: SinkSlot,
}

impl BoltCore {
    /// `i` is the task's position within its worker (seed phasing —
    /// matches the historical thread-per-task layout), `idx` its index
    /// within the component, `my_id` its global watermark-source id.
    pub(crate) fn new(
        i: usize,
        idx: usize,
        my_id: u32,
        mut bolt: TaskBolt,
        factory: Option<BoltBuilder>,
        ctx: &WorkerCtx,
    ) -> Self {
        let is_chain = matches!(bolt, TaskBolt::Chain(_));
        if let TaskBolt::Plain(b) = &mut bolt {
            // Chain stages register in FusedChain::build, per stage.
            b.register_metrics(&ctx.metrics, &ctx.name);
        }
        Self {
            idx,
            tracker: RestartTracker::new(ctx.restart.clone()),
            held: Vec::new(),
            zombie: false,
            panic_rng: SplitMix64::new(ctx.seed ^ 0xB017 ^ (idx as u64) << 32),
            panics: ctx.metrics.register(&format!("{}.panics", ctx.name)),
            restarts: ctx.metrics.register(&format!("{}.restarts", ctx.name)),
            restart_us: (ctx.sample_every > 0)
                .then(|| ctx.metrics.register_histogram(&format!("{}.restart_us", ctx.name))),
            idle_dirty: false,
            emit: EmitCtx::new(
                ctx.routes.clone(),
                ctx.emit_name.clone(),
                &ctx.metrics,
                ctx.sink.clone(),
                ctx.seed.wrapping_add(i as u64 * 0x9E37),
                ctx.drop_prob,
                ctx.delay,
                ctx.batch_size,
                ctx.batch_linger,
                ctx.sample_every,
            )
            // Unanchored deliveries + no drop injection: safe to share
            // one pivoted Frame across All-grouped fan-out targets.
            .share_broadcast(ctx.semantics == Semantics::AtMostOnce && ctx.drop_prob == 0.0),
            executed: (!is_chain).then(|| ctx.metrics.register(&format!("{}.executed", ctx.name))),
            exec_us: (ctx.sample_every > 0)
                .then(|| ctx.metrics.register_histogram(&format!("{}.execute_us", ctx.name))),
            // Phase-staggered per task: sibling tasks sample different
            // events, so hits on the shared sketch don't collide.
            sampler: Sampler::with_phase(ctx.sample_every, ctx.seed as u32 ^ i as u32),
            done: false,
            my_id,
            merger: ctx.watermarks.then(|| WatermarkMerger::new(ctx.upstream_ids.iter().copied())),
            max_et: 0,
            fired: (ctx.watermarks && !is_chain)
                .then(|| ctx.metrics.register(&format!("{}.fired", ctx.name))),
            dropped_late: ctx.metrics.register(&format!("{}.dropped_late", ctx.emit_name)),
            wm_gauge: ctx
                .watermarks
                .then(|| ctx.metrics.register_gauge(&format!("{}.watermark", ctx.emit_name))),
            lag_gauge: ctx
                .watermarks
                .then(|| ctx.metrics.register_gauge(&format!("{}.watermark_lag", ctx.emit_name))),
            late_slot: sink_slot(&ctx.sink, &format!("{}.late", ctx.emit_name)),
            bolt,
            factory,
        }
    }

    /// Whether no acks are parked waiting for a durable commit.
    pub(crate) fn held_empty(&self) -> bool {
        self.held.is_empty()
    }

    /// Process one delivered message. Sets `self.done` on `Terminate`.
    pub(crate) fn handle_msg(&mut self, msg: Msg, ctx: &WorkerCtx) {
        if self.zombie {
            // Escalated: drain and discard (upstreams may be blocked
            // on our bounded queue), only honouring Terminate.
            if matches!(msg, Msg::Terminate) {
                self.done = true;
            }
            return;
        }
        match msg {
            Msg::Data(batch) => {
                if let Some(executed) = &self.executed {
                    executed.add(batch.len() as u64);
                }
                self.idle_dirty = true;
                if self.merger.is_some() {
                    for t in &batch {
                        if let Some(et) = t.event_time {
                            self.max_et = self.max_et.max(et);
                        }
                    }
                }
                let mut acks: Vec<AckOp> = Vec::new();
                for t in &batch {
                    if self.zombie {
                        // Escalated mid-batch: the rest of the batch
                        // is dropped (trees fail via the timeout).
                        break;
                    }
                    // Chaos panics fire BEFORE `execute`, so the input
                    // was not applied and its replay is not a
                    // duplicate. A genuine mid-`execute` panic may
                    // leave an instance bolt half-updated — factory
                    // bolts discard that state on rebuild.
                    let injected = ctx.panic_prob > 0.0 && self.panic_rng.bernoulli(ctx.panic_prob);
                    let outcome = if injected {
                        Err("injected chaos panic (FaultPlan)".to_string())
                    } else {
                        let t0 = self.sampler.hit().then(Instant::now);
                        let bolt = &mut self.bolt;
                        let run = catch_unwind(AssertUnwindSafe(|| match bolt {
                            TaskBolt::Plain(b) => {
                                let mut out = OutputCollector::new();
                                b.execute(t, &mut out);
                                out
                            }
                            TaskBolt::Chain(c) => c.execute(t).into_collector(),
                        }));
                        match run {
                            Ok(out) => {
                                if let (Some(t0), Some(exec_us)) = (t0, &self.exec_us) {
                                    exec_us.record(t0.elapsed().as_secs_f64() * 1e6);
                                }
                                Ok(out)
                            }
                            Err(payload) => Err(panic_message(&*payload)),
                        }
                    };
                    match outcome {
                        Ok(out) => self.handle_emissions(t, out, ctx, &mut acks),
                        Err(why) => {
                            // Fail the input's tree (replayed by the
                            // spout), then supervise the task.
                            if ctx.semantics == Semantics::AtLeastOnce && t.root != 0 {
                                acks.push(AckOp::Fail(t.root));
                            }
                            self.supervise(ctx, &why);
                        }
                    }
                }
                if !acks.is_empty() {
                    // One lock acquisition settles the whole batch.
                    {
                        let mut acker = ctx.acker.lock().unwrap();
                        for op in acks {
                            match op {
                                AckOp::Ack(root, val) => {
                                    acker.ack(root, val);
                                }
                                AckOp::Fail(root) => acker.fail(root),
                            }
                        }
                    }
                    (ctx.on_ack)();
                }
                self.emit.flush_if_lingering();
            }
            Msg::Frame(frame) => {
                // The bulk path needs a plain, opted-in bolt and
                // per-row granularity nowhere else: chaos panic
                // injection fires per tuple, so chaos runs take the
                // row fallback (bit-identical semantics).
                let bulk = ctx.panic_prob == 0.0
                    && matches!(&self.bolt, TaskBolt::Plain(b) if b.wants_frames());
                if !bulk {
                    self.handle_msg(Msg::Data(frame.to_batch()), ctx);
                    return;
                }
                self.handle_frame(frame, ctx);
            }
            Msg::Watermark { source, wm, idle } => {
                let advanced = self.merger.as_mut().and_then(|m| m.update(source, wm, idle));
                if let Some(new_wm) = advanced {
                    if let Some(out) = self.guarded(ctx, |b, o| match b {
                        TaskBolt::Plain(bolt) => bolt.on_watermark(new_wm, o),
                        TaskBolt::Chain(c) => *o = c.on_watermark(new_wm).into_collector(),
                    }) {
                        if let Some(fired) = &self.fired {
                            fired.add(out.emitted.len() as u64);
                        }
                        // Watermark firings have no input to anchor
                        // to; they ride unanchored, like flush output.
                        self.handle_control_out(out, ctx);
                        if let Some(g) = &self.wm_gauge {
                            g.set(new_wm);
                        }
                        if let Some(g) = &self.lag_gauge {
                            g.set(self.max_et.saturating_sub(new_wm));
                        }
                    }
                    // Forward as our own marker (even when the
                    // callback panicked — watermarks are control
                    // flow) — flushing first so it stays behind
                    // everything we just emitted.
                    self.emit.broadcast_watermark(self.my_id, new_wm, false);
                }
            }
            Msg::Rescale => {
                // A shard-table phase change is in flight: drive the
                // idle hook unconditionally (no dirtiness gate) so a
                // sharded bolt observes the table — acknowledging a
                // quiesce or adopting the installed assignment — even
                // if it was parked with no pending input.
                if let Some(out) = self.guarded(ctx, |b, o| match b {
                    TaskBolt::Plain(bolt) => bolt.on_idle(o),
                    TaskBolt::Chain(c) => *o = c.on_idle().into_collector(),
                }) {
                    self.handle_control_out(out, ctx);
                }
                self.emit.flush_all();
            }
            Msg::Flush => {
                if let Some(out) = self.guarded(ctx, |b, o| match b {
                    TaskBolt::Plain(bolt) => bolt.flush(o),
                    TaskBolt::Chain(c) => *o = c.flush().into_collector(),
                }) {
                    self.handle_control_out(out, ctx);
                }
                self.emit.flush_all();
            }
            Msg::Terminate => {
                self.emit.flush_all();
                self.done = true;
            }
        }
    }

    /// The idle hook: when the task saw data since the last call (or
    /// still holds acks from a failed commit), let the bolt commit and
    /// release, then ship partial batches. Supervised like every other
    /// callback.
    pub(crate) fn idle(&mut self, ctx: &WorkerCtx) {
        if !self.zombie && (self.idle_dirty || !self.held.is_empty()) {
            self.idle_dirty = false;
            if let Some(out) = self.guarded(ctx, |b, o| match b {
                TaskBolt::Plain(bolt) => bolt.on_idle(o),
                TaskBolt::Chain(c) => *o = c.on_idle().into_collector(),
            }) {
                self.handle_control_out(out, ctx);
            }
        }
        self.emit.flush_all();
    }

    /// Run one bolt callback under `catch_unwind`; on panic, supervise
    /// (restart or escalate) and return `None`.
    fn guarded<F>(&mut self, ctx: &WorkerCtx, call: F) -> Option<OutputCollector>
    where
        F: FnOnce(&mut TaskBolt, &mut OutputCollector),
    {
        let mut out = OutputCollector::new();
        let bolt = &mut self.bolt;
        match catch_unwind(AssertUnwindSafe(|| call(bolt, &mut out))) {
            Ok(()) => Some(out),
            Err(payload) => {
                self.supervise(ctx, &panic_message(&*payload));
                None
            }
        }
    }

    /// Account one panic against the task's restart budget: back off and
    /// restart (rebuilding factory bolts from their checkpoint), or
    /// escalate to topology failure.
    fn supervise(&mut self, ctx: &WorkerCtx, why: &str) {
        self.panics.add(1);
        ctx.metrics.task_panic();
        match self.tracker.on_panic(ctx.run_start.elapsed()) {
            RestartDecision::Restart(backoff) => {
                // The restart clock includes the backoff sleep — it is
                // the user-visible recovery latency.
                let t0 = Instant::now();
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                match &mut self.bolt {
                    TaskBolt::Plain(slot) => {
                        if let Some(build) = self.factory.as_mut() {
                            match build() {
                                Ok(mut fresh) => {
                                    fresh.register_metrics(&ctx.metrics, &ctx.name);
                                    *slot = fresh;
                                    // Inputs the dead incarnation applied
                                    // but never persisted: fail them so
                                    // the spout replays (the recovered
                                    // checkpoint dedups whatever *was*
                                    // persisted).
                                    self.fail_held(ctx);
                                }
                                Err(e) => {
                                    self.escalate(ctx, &format!("restart rebuild failed: {e}"));
                                    return;
                                }
                            }
                        }
                    }
                    TaskBolt::Chain(chain) => match chain.rebuild() {
                        Ok(true) => self.fail_held(ctx),
                        Ok(false) => {} // instance stages resume in place
                        Err(e) => {
                            self.escalate(ctx, &format!("restart rebuild failed: {e}"));
                            return;
                        }
                    },
                }
                self.restarts.add(1);
                ctx.metrics.task_restart();
                if let Some(h) = &self.restart_us {
                    h.record(t0.elapsed().as_secs_f64() * 1e6);
                }
            }
            RestartDecision::Escalate => self.escalate(ctx, why),
        }
    }

    /// Budget exhausted: record the first failure, flip the abort flag,
    /// and turn this task into a draining zombie.
    fn escalate(&mut self, ctx: &WorkerCtx, why: &str) {
        ctx.metrics.escalated();
        {
            let mut slot = ctx.failure.lock().unwrap();
            if slot.is_none() {
                *slot = Some(format!(
                    "bolt '{}' task {} escalated: restart budget exhausted \
                     ({} restarts in the last {:?}): {why}",
                    ctx.name,
                    self.idx,
                    self.tracker.restarts_in_window(ctx.run_start.elapsed()),
                    self.tracker.policy().window,
                ));
            }
        }
        ctx.abort.store(true, Ordering::Relaxed);
        self.zombie = true;
        self.fail_held(ctx);
    }

    /// Fail every held ack (the inputs will be replayed).
    fn fail_held(&mut self, ctx: &WorkerCtx) {
        if self.held.is_empty() {
            return;
        }
        {
            let mut acker = ctx.acker.lock().unwrap();
            for (root, _) in self.held.drain(..) {
                acker.fail(root);
            }
        }
        (ctx.on_ack)();
    }

    /// Apply a control-path collector (`flush` / `on_watermark` /
    /// `on_idle`): emissions ride unanchored, late tuples divert to the
    /// side output, and a release drains the held acks.
    fn handle_control_out(&mut self, mut out: OutputCollector, ctx: &WorkerCtx) {
        self.route_late(std::mem::take(&mut out.late), ctx);
        for mut e in out.emitted {
            e.root = 0;
            self.emit.push(&e, false);
        }
        if out.abandon {
            // The bolt discarded uncommitted state (rescale quiesce):
            // replay the held inputs, exactly like a restart.
            self.fail_held(ctx);
        }
        if out.release && !self.held.is_empty() {
            {
                let mut acker = ctx.acker.lock().unwrap();
                for (root, val) in self.held.drain(..) {
                    acker.ack(root, val);
                }
            }
            (ctx.on_ack)();
        }
    }

    fn handle_emissions(
        &mut self,
        input: &Tuple,
        mut out: OutputCollector,
        ctx: &WorkerCtx,
        acks: &mut Vec<AckOp>,
    ) {
        self.route_late(std::mem::take(&mut out.late), ctx);
        let anchored = ctx.semantics == Semantics::AtLeastOnce && input.root != 0;
        if out.abandon {
            // Uncommitted state was discarded mid-stream (rescale
            // quiesce observed on the execute path): replay the held
            // inputs.
            for (root, _) in self.held.drain(..) {
                acks.push(AckOp::Fail(root));
            }
        }
        if out.release {
            // A durable commit covered every held input: ack them all.
            for (root, val) in self.held.drain(..) {
                acks.push(AckOp::Ack(root, val));
            }
        }
        if out.failed {
            if anchored {
                acks.push(AckOp::Fail(input.root));
            }
            return;
        }
        let mut xor_new = 0u64;
        for mut e in out.emitted {
            e.root = input.root;
            e.lineage = input.lineage;
            // Unstamped outputs inherit the input's event time. `None`
            // is the explicit "unset" marker — an epoch-0 stamp set by
            // the bolt is a real timestamp and survives untouched.
            if e.event_time.is_none() {
                e.event_time = input.event_time;
            }
            xor_new ^= self.emit.push(&e, anchored);
        }
        if anchored {
            if out.hold && !out.release {
                // Not yet durable: park the ack until the bolt releases
                // (or fails/restarts, which replays it).
                self.held.push((input.root, input.id ^ xor_new));
            } else {
                acks.push(AckOp::Ack(input.root, input.id ^ xor_new));
            }
        }
    }

    /// The columnar fast path: one `execute_frame` call processes the
    /// whole frame (per-column hashes amortised, bulk sketch updates).
    /// On panic every row's root fails — at-least-once replay then
    /// covers the frame, and the consumer's lineage dedup absorbs any
    /// rows that were already applied.
    fn handle_frame(&mut self, frame: Frame, ctx: &WorkerCtx) {
        if let Some(executed) = &self.executed {
            executed.add(frame.len() as u64);
        }
        self.idle_dirty = true;
        if self.merger.is_some() {
            for et in frame.event_times().iter().flatten() {
                self.max_et = self.max_et.max(*et);
            }
        }
        let t0 = self.sampler.hit().then(Instant::now);
        let bolt = &mut self.bolt;
        let run = catch_unwind(AssertUnwindSafe(|| {
            let mut out = OutputCollector::new();
            if let TaskBolt::Plain(b) = bolt {
                b.execute_frame(&frame, &mut out);
            }
            out
        }));
        match run {
            Ok(out) => {
                if let (Some(t0), Some(exec_us)) = (t0, &self.exec_us) {
                    exec_us.record(t0.elapsed().as_secs_f64() * 1e6);
                }
                self.handle_frame_emissions(&frame, out, ctx);
            }
            Err(payload) => {
                if ctx.semantics == Semantics::AtLeastOnce {
                    {
                        let mut acker = ctx.acker.lock().unwrap();
                        for &root in frame.roots() {
                            if root != 0 {
                                acker.fail(root);
                            }
                        }
                    }
                    (ctx.on_ack)();
                }
                self.supervise(ctx, &panic_message(&*payload));
            }
        }
        self.emit.flush_if_lingering();
    }

    /// Apply one frame-wide collector: `release` drains the held acks,
    /// `fail` fails every row's root, `hold` parks every row's ack.
    /// Emissions anchor to the frame's last anchored row — the row
    /// whose processing would have produced them on the row path.
    fn handle_frame_emissions(&mut self, frame: &Frame, mut out: OutputCollector, ctx: &WorkerCtx) {
        self.route_late(std::mem::take(&mut out.late), ctx);
        let alo = ctx.semantics == Semantics::AtLeastOnce;
        let mut acks: Vec<AckOp> = Vec::new();
        if out.abandon {
            for (root, _) in self.held.drain(..) {
                acks.push(AckOp::Fail(root));
            }
        }
        if out.release {
            for (root, val) in self.held.drain(..) {
                acks.push(AckOp::Ack(root, val));
            }
        }
        if out.failed {
            if alo {
                for &root in frame.roots() {
                    if root != 0 {
                        acks.push(AckOp::Fail(root));
                    }
                }
            }
        } else {
            let anchor =
                if alo { (0..frame.len()).rev().find(|&i| frame.roots()[i] != 0) } else { None };
            let mut xor_new = 0u64;
            let inherit = anchor.unwrap_or(frame.len() - 1);
            for mut e in out.emitted {
                e.root = if anchor.is_some() { frame.roots()[inherit] } else { 0 };
                e.lineage = frame.lineages()[inherit];
                if e.event_time.is_none() {
                    e.event_time = frame.event_times()[inherit];
                }
                xor_new ^= self.emit.push(&e, anchor.is_some());
            }
            if alo {
                for i in 0..frame.len() {
                    let root = frame.roots()[i];
                    if root == 0 {
                        continue;
                    }
                    let val = frame.ids()[i] ^ if Some(i) == anchor { xor_new } else { 0 };
                    if out.hold && !out.release {
                        self.held.push((root, val));
                    } else {
                        acks.push(AckOp::Ack(root, val));
                    }
                }
            }
        }
        if !acks.is_empty() {
            {
                let mut acker = ctx.acker.lock().unwrap();
                for op in acks {
                    match op {
                        AckOp::Ack(root, val) => {
                            acker.ack(root, val);
                        }
                        AckOp::Fail(root) => acker.fail(root),
                    }
                }
            }
            (ctx.on_ack)();
        }
    }

    /// Deliver late-side-output tuples to the run's `"{component}.late"`
    /// sink and count them. Late tuples are rare by construction, so
    /// this path takes the sink lock directly rather than batching.
    fn route_late(&self, late: Vec<Tuple>, _ctx: &WorkerCtx) {
        if late.is_empty() {
            return;
        }
        self.dropped_late.add(late.len() as u64);
        self.late_slot.lock().unwrap().extend(late);
    }
}
