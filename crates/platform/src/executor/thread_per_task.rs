//! The historical runtime: every task owns an OS thread for the whole
//! run ([`crate::Scheduling::ThreadPerTask`]). `ExecutorModel` picks
//! the thread/queue layout (Heron-style dedicated threads over bounded
//! queues vs Storm-style multiplexed workers over unbounded queues).
//!
//! Idle waiting is notifier-based throughout — no sleep-polling:
//!
//! * an exhausted spout parks on the run-wide ack notifier (bolts bump
//!   it after applying acks/fails), with a short timeout for ack-expiry
//!   sweeps and the shutdown clock;
//! * a dedicated bolt worker blocks on its channel, or — while holding
//!   acks that need a commit retry — parks on the component's send
//!   notifier with a 1 ms retry cadence;
//! * a multiplexed worker that found no work on any of its queues parks
//!   on the same send notifier instead of spinning over `try_recv`.

use super::bolt::{BoltCore, TaskBolt, WorkerCtx};
use super::spout::{SpoutCore, SpoutCtx, SpoutStep};
use super::{Msg, Route, RunCore, RunResult, Sender};
use crate::channel::{channel_noted, Notifier, Receiver, TryRecvError};
use crate::executor::ExecutorModel;
use crate::supervise::panic_message;
use sa_core::{Result, SaError};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

pub(crate) fn run(mut core: RunCore) -> Result<RunResult> {
    let instrumented = core.config.latency_sample_every > 0;

    // --- Build channels for every bolt task, with one send-notifier
    //     per component so its workers can park instead of polling. ---
    let mut receivers: HashMap<String, Vec<Receiver<Msg>>> = HashMap::new();
    let mut senders: HashMap<String, Vec<Sender<Msg>>> = HashMap::new();
    let mut notes: HashMap<String, Arc<Notifier>> = HashMap::new();
    for c in core.decls.iter().filter(|c| c.is_bolt()) {
        // One shared gauge per component: its tasks' queues aggregate
        // into a single depth/stall account.
        let stats = instrumented.then(|| core.metrics.register_link(&format!("{}.input", c.name)));
        let note = Arc::new(Notifier::new());
        let mut rx = Vec::new();
        let mut tx = Vec::new();
        for _ in 0..c.parallelism {
            let capacity = match core.config.model {
                ExecutorModel::ProcessPerTask => Some(core.config.channel_capacity),
                ExecutorModel::Multiplexed { .. } => None,
            };
            let (s, r) = channel_noted(capacity, stats.clone(), note.clone());
            tx.push(s);
            rx.push(r);
        }
        notes.insert(c.name.clone(), note);
        receivers.insert(c.name.clone(), rx);
        senders.insert(c.name.clone(), tx);
    }

    // Live rescaling: hand the controller every component's inbox so it
    // can broadcast `Msg::Rescale` during a resize, and publish the
    // per-table `active` gauges.
    if let Some(ctl) = &core.config.rescale {
        ctl.bind(&core.metrics);
        for (name, txs) in &senders {
            ctl.register_senders(name, txs.clone());
        }
    }

    // --- Routing tables: component → its downstream routes. ---
    let mut routes: HashMap<String, Vec<Route>> = HashMap::new();
    for c in &core.decls {
        routes.entry(c.name.clone()).or_default();
    }
    for c in &core.decls {
        for (upstream, grouping) in &c.inputs {
            routes.get_mut(upstream).unwrap().push(Route {
                grouping: grouping.clone(),
                senders: senders[&c.name].clone(),
                frames: super::link_frames(&core.built, &c.name),
                shard: core.config.rescale.as_ref().and_then(|ctl| ctl.table_of(&c.name)),
            });
        }
    }

    // Ack progress (bolt-side acks/fails, cross-spout requeues) bumps
    // the shared notifier; exhausted spouts park on it.
    let on_ack: Arc<dyn Fn() + Send + Sync> = {
        let note = core.ack_note.clone();
        Arc::new(move || note.notify())
    };

    // --- Spawn bolts. ---
    let mut bolt_handles: HashMap<String, Vec<(String, std::thread::JoinHandle<()>)>> =
        HashMap::new();
    let mut task_seed = core.config.seed;
    for decl in core.decls.iter().filter(|c| c.is_bolt()) {
        let name = decl.name.clone();
        let my_routes = routes[&name].clone();
        let rx_list = receivers.remove(&name).expect("bolt channel");
        let note = notes[&name].clone();
        let restart = core.restart_for(decl);
        let drop_prob = core.drop_prob_for(&name);
        let mut tasks: Vec<(usize, u32, super::BoltTask, Receiver<Msg>)> = core.task_ids[&name]
            .iter()
            .copied()
            .zip(core.built.remove(&name).expect("built bolt tasks").into_iter().zip(rx_list))
            .enumerate()
            .map(|(idx, (id, (task, rx)))| (idx, id, task, rx))
            .collect();

        let group_size = match core.config.model {
            ExecutorModel::ProcessPerTask => 1,
            ExecutorModel::Multiplexed { tasks_per_worker } => tasks_per_worker.max(1),
        };
        let mut handles = Vec::new();
        while !tasks.is_empty() {
            let chunk: Vec<(usize, u32, super::BoltTask, Receiver<Msg>)> =
                tasks.drain(..group_size.min(tasks.len())).collect();
            let label = match (chunk.first(), chunk.last()) {
                (Some(first), Some(last)) if first.0 == last.0 => format!("task {}", first.0),
                (Some(first), Some(last)) => format!("tasks {}..={}", first.0, last.0),
                _ => unreachable!("chunk is non-empty"),
            };
            task_seed = sa_core::hash::mix64(task_seed);
            let ctx = WorkerCtx {
                name: name.clone(),
                emit_name: name.clone(),
                routes: my_routes.clone(),
                acker: core.acker.clone(),
                semantics: core.config.semantics,
                metrics: core.metrics.clone(),
                sink: core.sink.clone(),
                drop_prob,
                delay: core.config.faults.delay_for(&name),
                panic_prob: core.config.faults.panic_prob_for(&name),
                restart: restart.clone(),
                abort: core.abort.clone(),
                failure: core.failure.clone(),
                run_start: core.run_start,
                seed: task_seed,
                batch_size: core.config.batch_size,
                batch_linger: core.config.batch_linger,
                sample_every: core.config.latency_sample_every,
                upstream_ids: core.upstream_ids[&name].clone(),
                watermarks: core.config.watermarks.is_some(),
                on_ack: on_ack.clone(),
            };
            let worker_note = note.clone();
            let handle = std::thread::spawn(move || {
                let cores: Vec<(BoltCore, Receiver<Msg>)> = chunk
                    .into_iter()
                    .enumerate()
                    .map(|(i, (idx, my_id, task, rx))| {
                        (
                            BoltCore::new(
                                i,
                                idx,
                                my_id,
                                TaskBolt::Plain(task.bolt),
                                task.factory,
                                &ctx,
                            ),
                            rx,
                        )
                    })
                    .collect();
                run_bolt_worker(cores, ctx, worker_note);
            });
            handles.push((label, handle));
        }
        bolt_handles.insert(name, handles);
    }

    // --- Spawn spouts. ---
    let mut spout_handles: Vec<(String, usize, std::thread::JoinHandle<()>)> = Vec::new();
    let mut spout_task_idx = 0usize;
    for decl in core.decls.iter().filter(|c| !c.is_bolt()) {
        let name = decl.name.clone();
        let my_routes = routes[&name].clone();
        let restart = core.restart_for(decl);
        let drop_prob = core.drop_prob_for(&name);
        let instances = core.spouts.remove(&name).expect("spout instances");
        for (local_idx, spout) in instances.into_iter().enumerate() {
            task_seed = sa_core::hash::mix64(task_seed);
            let ctx = SpoutCtx {
                task: spout_task_idx,
                name: name.clone(),
                routes: my_routes.clone(),
                acker: core.acker.clone(),
                semantics: core.config.semantics,
                metrics: core.metrics.clone(),
                sink: core.sink.clone(),
                drop_prob,
                delay: core.config.faults.delay_for(&name),
                panic_prob: core.config.faults.panic_prob_for(&name),
                restart: restart.clone(),
                max_replays: core.config.max_replays,
                abort: core.abort.clone(),
                failure: core.failure.clone(),
                run_start: core.run_start,
                seed: task_seed,
                batch_size: core.config.batch_size,
                batch_linger: core.config.batch_linger,
                sample_every: core.config.latency_sample_every,
                ack_timeout: core.config.ack_timeout,
                shutdown_timeout: core.config.shutdown_timeout,
                unclean: core.unclean.clone(),
                kill: core.config.kill.clone(),
                wm_source: core.task_ids[&name][local_idx],
                watermarks: core.config.watermarks.clone(),
                ack_note: core.ack_note.clone(),
                on_ack: on_ack.clone(),
            };
            spout_task_idx += 1;
            let handle = std::thread::spawn(move || {
                let mut sc = SpoutCore::new(spout, ctx, None);
                loop {
                    match sc.step() {
                        SpoutStep::Progress => {}
                        SpoutStep::Idle { seen } => {
                            // Park until ack progress lands anywhere (or
                            // the sweep cadence expires — the settle
                            // visit also expires stale trees).
                            sc.ctx.ack_note.wait_past(seen, Duration::from_millis(2));
                        }
                        SpoutStep::Done => break,
                    }
                }
            });
            spout_handles.push((name.clone(), local_idx, handle));
        }
    }

    // --- Shutdown protocol: join spouts, then flush+terminate bolts in
    //     topological order so upstream flush output reaches live
    //     downstream tasks. ---
    for (name, idx, h) in spout_handles {
        h.join().map_err(|payload| {
            SaError::Platform(format!(
                "spout '{name}' task {idx} panicked outside supervision: {}",
                panic_message(&*payload)
            ))
        })?;
    }
    // A killed run tears down without flushing: bolts never get their
    // final `flush()` call, as in a real crash — and is never clean,
    // even if the kill landed after the spouts drained.
    let killed = core.config.kill.as_ref().is_some_and(|k| k.load(Ordering::Relaxed));
    if killed {
        core.unclean.store(true, Ordering::Relaxed);
    }
    for name in &core.order {
        let Some(tx_list) = senders.get(name) else {
            continue; // spout
        };
        for tx in tx_list {
            if !killed {
                let _ = tx.send(Msg::Flush);
            }
            let _ = tx.send(Msg::Terminate);
        }
        if let Some(handles) = bolt_handles.remove(name) {
            for (label, h) in handles {
                h.join().map_err(|payload| {
                    SaError::Platform(format!(
                        "bolt '{name}' {label} panicked outside supervision: {}",
                        panic_message(&*payload)
                    ))
                })?;
            }
        }
    }

    core.conclude()
}

/// One worker thread driving its chunk of a component's tasks (one
/// task in ProcessPerTask, several in Multiplexed).
fn run_bolt_worker(mut cores: Vec<(BoltCore, Receiver<Msg>)>, ctx: WorkerCtx, note: Arc<Notifier>) {
    let single = cores.len() == 1;
    loop {
        // Snapshot before scanning: a send landing mid-scan bumps the
        // sequence, so the park below returns immediately.
        let seen = note.seq();
        let mut progressed = false;
        let mut all_done = true;
        for (core, rx) in cores.iter_mut() {
            if core.done {
                continue;
            }
            all_done = false;
            let msg = match rx.try_recv() {
                Ok(m) => Some(m),
                Err(TryRecvError::Empty) if single => {
                    // Dedicated worker about to park: give the bolt its
                    // idle hook (commit + release held acks), ship
                    // partial batches downstream, then block.
                    core.idle(&ctx);
                    if !core.held_empty() {
                        // A failed commit left acks held; the spout is
                        // waiting on those trees, so retry the commit at
                        // a 1 ms cadence instead of blocking (fresh data
                        // still wakes us immediately).
                        note.wait_past(seen, Duration::from_millis(1));
                        continue;
                    }
                    match rx.recv() {
                        Ok(m) => Some(m),
                        Err(_) => {
                            core.done = true;
                            continue;
                        }
                    }
                }
                Err(TryRecvError::Empty) => None,
                Err(TryRecvError::Disconnected) => {
                    core.done = true;
                    continue;
                }
            };
            let Some(msg) = msg else { continue };
            progressed = true;
            core.handle_msg(msg, &ctx);
        }
        if all_done {
            break;
        }
        if !progressed && !single {
            // Multiplexed worker found nothing on any queue: idle hooks,
            // then park on the component's send notifier instead of
            // spinning over `try_recv`.
            for (core, _) in cores.iter_mut() {
                if !core.done {
                    core.idle(&ctx);
                }
            }
            note.wait_past(seen, Duration::from_millis(1));
        }
    }
}
