//! Per-task emission state: routing, batching, linger, terminal sink.

use super::{fields_task, sink_slot, Msg, Route, Sink, SinkSlot};
use crate::channel::Sender;
use crate::frame::Frame;
use crate::metrics::{CounterHandle, HistogramHandle, Metrics, Sampler};
use crate::topology::Grouping;
use crate::tuple::{Batch, Tuple};
use sa_core::rng::SplitMix64;
use std::time::{Duration, Instant};

/// Per-task emission state: routes plus one pending batch per
/// downstream task. Tuples are routed (and edge ids assigned, drops
/// injected, counters bumped) at `push` time; the channel send happens
/// when the target's buffer reaches `batch_size` or on `flush_all`.
pub(crate) struct EmitCtx {
    routes: Vec<Route>,
    /// `buffers[route][target]` = batch under construction.
    buffers: Vec<Vec<Batch>>,
    shuffle_counters: Vec<usize>,
    rng: SplitMix64,
    drop_prob: f64,
    /// Chaos: `(probability, delay)` slept before a batch send.
    delay: Option<(f64, Duration)>,
    pub(crate) batch_size: usize,
    batch_linger: Duration,
    /// When the oldest currently-buffered tuple was pushed. `None`
    /// whenever nothing is buffered — stale timestamps here would make
    /// `flush_if_lingering` force-flush fresh partial batches forever.
    pub(crate) oldest: Option<Instant>,
    /// Tuples currently sitting in route buffers + `sink_buf`; `oldest`
    /// is cleared when this drains to zero.
    pub(crate) buffered: usize,
    emitted: CounterHandle,
    /// Occupancy of shipped batches (tuples per batch), recorded for
    /// sampled sends. `None` when instrumentation is off.
    batch_fill: Option<HistogramHandle>,
    /// Every-Nth gate for `batch_fill`, phase-staggered per task so
    /// sibling tasks don't contend on the shared sketch in lockstep.
    fill_sampler: Sampler,
    metrics: Metrics,
    /// Pre-resolved terminal-sink slot: the entry key was hashed and
    /// interned ONCE at construction, so a sink drain locks only this
    /// slot — no map lookup, no `String` clone per flush.
    sink_slot: SinkSlot,
    /// Pending terminal-sink appends (terminal components only).
    sink_buf: Vec<Tuple>,
    /// Broadcast sharing: on `All`-grouped frame links, buffer ONE copy
    /// per tuple, pivot once, and ship `Frame` clones (an `Arc` bump
    /// each) to every target — so fan-out consumers also share the
    /// once-per-batch column-hash cache. Only sound when deliveries
    /// are unanchored (edge ids unused) and drop injection is off, so
    /// the executor enables it for `AtMostOnce` chaos-free runs only.
    share_all: bool,
}

impl EmitCtx {
    #[allow(clippy::too_many_arguments)] // built once per executor, at spawn
    pub(crate) fn new(
        routes: Vec<Route>,
        component: String,
        metrics: &Metrics,
        sink: Sink,
        seed: u64,
        drop_prob: f64,
        delay: Option<(f64, Duration)>,
        batch_size: usize,
        batch_linger: Duration,
        sample_every: u32,
    ) -> Self {
        // Registration interns the name once; `format!` never runs on
        // the emit path again.
        let emitted = metrics.register(&format!("{component}.emitted"));
        let batch_fill = (sample_every > 0)
            .then(|| metrics.register_histogram(&format!("{component}.batch_fill")));
        let buffers = routes.iter().map(|r| vec![Vec::new(); r.senders.len()]).collect();
        Self {
            shuffle_counters: vec![0; routes.len()],
            buffers,
            routes,
            rng: SplitMix64::new(seed),
            drop_prob,
            delay,
            batch_size: batch_size.max(1),
            batch_linger,
            oldest: None,
            buffered: 0,
            emitted,
            batch_fill,
            fill_sampler: Sampler::with_phase(sample_every, seed as u32),
            metrics: metrics.clone(),
            sink_slot: sink_slot(&sink, &component),
            sink_buf: Vec::new(),
            share_all: false,
        }
    }

    /// Enable broadcast sharing (see the `share_all` field). The caller
    /// must guarantee every later `push` is unanchored (`track` false).
    pub(crate) fn share_broadcast(mut self, on: bool) -> Self {
        self.share_all = on;
        self
    }

    /// Whether route `ri` takes the shared-broadcast path.
    fn shares(&self, ri: usize) -> bool {
        self.share_all
            && self.routes[ri].frames
            && matches!(self.routes[ri].grouping, Grouping::All)
            && self.routes[ri].senders.len() > 1
    }

    /// Route one tuple into the per-target buffers, assigning fresh edge
    /// ids. Returns the XOR of all new edge ids (for ack bookkeeping).
    pub(crate) fn push(&mut self, tuple: &Tuple, track: bool) -> u64 {
        if self.routes.is_empty() {
            // Terminal component: collect into the sink, batched.
            self.sink_buf.push(tuple.clone());
            self.emitted.add(1);
            self.buffered += 1;
            if self.sink_buf.len() >= self.batch_size {
                self.flush_sink();
            } else {
                self.oldest.get_or_insert_with(Instant::now);
            }
            return 0;
        }
        let mut xor = 0u64;
        let mut dropped = 0u64;
        let mut pushed = 0u64;
        for ri in 0..self.routes.len() {
            let fanout = self.routes[ri].senders.len();
            if self.shares(ri) {
                debug_assert!(!track, "shared broadcast requires unanchored emissions");
                let mut msg = tuple.clone();
                msg.id = self.rng.next_u64() | 1;
                pushed += fanout as u64;
                let buf = &mut self.buffers[ri][0];
                buf.push(msg);
                self.buffered += 1;
                if buf.len() >= self.batch_size {
                    let batch = std::mem::take(buf);
                    self.buffered -= batch.len();
                    if self.fill_sampler.hit() {
                        if let Some(fill) = &self.batch_fill {
                            fill.record(batch.len() as f64);
                        }
                    }
                    maybe_delay(&mut self.rng, self.delay);
                    ship_shared(&self.routes[ri].senders, batch);
                    if self.buffered == 0 {
                        self.oldest = None;
                    }
                } else {
                    self.oldest.get_or_insert_with(Instant::now);
                }
                continue;
            }
            let (lo, hi) = match &self.routes[ri].grouping {
                Grouping::Shuffle => {
                    let i = self.shuffle_counters[ri] % fanout;
                    self.shuffle_counters[ri] += 1;
                    (i, i)
                }
                Grouping::Fields(fields) => {
                    // Rescalable downstream: consult the live shard
                    // table (group → current owner); static otherwise.
                    let i = match &self.routes[ri].shard {
                        Some(table) => {
                            table.task_of(crate::rescale::key_group(tuple, fields)).min(fanout - 1)
                        }
                        None => fields_task(tuple, fields, fanout),
                    };
                    (i, i)
                }
                Grouping::Global => (0, 0),
                Grouping::All => (0, fanout - 1),
            };
            for t in lo..=hi {
                let mut msg = tuple.clone();
                let edge = self.rng.next_u64() | 1;
                msg.id = edge;
                if track {
                    xor ^= edge;
                }
                pushed += 1;
                if self.drop_prob > 0.0 && self.rng.bernoulli(self.drop_prob) {
                    // Link failure: the message is lost in flight. Its
                    // edge id stays in the ack tree so the timeout will
                    // replay the root.
                    dropped += 1;
                    continue;
                }
                let buf = &mut self.buffers[ri][t];
                buf.push(msg);
                self.buffered += 1;
                if buf.len() >= self.batch_size {
                    let batch = std::mem::take(buf);
                    self.buffered -= batch.len();
                    if self.fill_sampler.hit() {
                        if let Some(fill) = &self.batch_fill {
                            fill.record(batch.len() as f64);
                        }
                    }
                    maybe_delay(&mut self.rng, self.delay);
                    // Blocking send = backpressure in bounded mode.
                    ship(&self.routes[ri].senders[t], self.routes[ri].frames, batch);
                    if self.buffered == 0 {
                        self.oldest = None;
                    }
                } else {
                    self.oldest.get_or_insert_with(Instant::now);
                }
            }
        }
        self.emitted.add(pushed);
        if dropped > 0 {
            self.metrics.links_dropped(dropped);
        }
        xor
    }

    /// Ship every non-empty buffer (called on idle, linger expiry, and
    /// before the task parks or exits).
    pub(crate) fn flush_all(&mut self) {
        for ri in 0..self.routes.len() {
            let shared = self.shares(ri);
            let targets = if shared { 1 } else { self.buffers[ri].len() };
            for t in 0..targets {
                if self.buffers[ri][t].is_empty() {
                    continue;
                }
                let batch = std::mem::take(&mut self.buffers[ri][t]);
                if self.fill_sampler.hit() {
                    if let Some(fill) = &self.batch_fill {
                        fill.record(batch.len() as f64);
                    }
                }
                maybe_delay(&mut self.rng, self.delay);
                if shared {
                    ship_shared(&self.routes[ri].senders, batch);
                } else {
                    ship(&self.routes[ri].senders[t], self.routes[ri].frames, batch);
                }
            }
        }
        if !self.sink_buf.is_empty() {
            self.flush_sink();
        }
        self.buffered = 0;
        self.oldest = None;
    }

    fn flush_sink(&mut self) {
        let drained = std::mem::take(&mut self.sink_buf);
        if drained.is_empty() {
            return;
        }
        self.buffered -= drained.len();
        if self.fill_sampler.hit() {
            if let Some(fill) = &self.batch_fill {
                fill.record(drained.len() as f64);
            }
        }
        if self.buffered == 0 {
            // Last pending buffer drained: reset the linger clock, or
            // every later `flush_if_lingering` would force-flush fresh
            // partial batches off this stale timestamp.
            self.oldest = None;
        }
        self.sink_slot.lock().unwrap().extend(drained);
    }

    /// Flush partial batches whose oldest tuple has out-waited the
    /// linger budget.
    pub(crate) fn flush_if_lingering(&mut self) {
        if self.oldest.is_some_and(|t| t.elapsed() >= self.batch_linger) {
            self.flush_all();
        }
    }

    /// Broadcast a watermark marker to every downstream task (markers
    /// are control messages: they go to ALL tasks regardless of
    /// grouping, and bypass drop injection). Buffered data is flushed
    /// first so the marker cannot overtake tuples it covers — FIFO
    /// channel order does the rest.
    pub(crate) fn broadcast_watermark(&mut self, source: u32, wm: u64, idle: bool) {
        self.flush_all();
        for route in &self.routes {
            for s in &route.senders {
                let _ = s.send(Msg::Watermark { source, wm, idle });
            }
        }
    }
}

/// Ship one full batch on a link: columnar when the consumer opted in
/// and the batch pivots cleanly (uniform schema), rows otherwise.
fn ship(sender: &Sender<Msg>, frames: bool, batch: Batch) {
    if frames {
        match Frame::from_batch(batch) {
            Ok(f) => {
                let _ = sender.send(Msg::Frame(f));
            }
            Err(rows) => {
                let _ = sender.send(Msg::Data(rows));
            }
        }
    } else {
        let _ = sender.send(Msg::Data(batch));
    }
}

/// Broadcast one full batch to every target of an `All`-grouped frame
/// link: pivot ONCE, then ship `Frame` clones — each an `Arc` bump
/// sharing columns, payloads, and the lazy column-hash cache across
/// all consumers. Row fallback (non-uniform schema) clones the batch
/// per target, which still only bumps payload refcounts.
fn ship_shared(senders: &[Sender<Msg>], batch: Batch) {
    match Frame::from_batch(batch) {
        Ok(f) => {
            for s in senders {
                let _ = s.send(Msg::Frame(f.clone()));
            }
        }
        Err(rows) => {
            for s in senders {
                let _ = s.send(Msg::Data(rows.clone()));
            }
        }
    }
}

/// Chaos: with probability `prob`, hold the caller back `delay` long
/// (injected network latency) before a channel send.
pub(crate) fn maybe_delay(rng: &mut SplitMix64, delay: Option<(f64, Duration)>) {
    if let Some((prob, d)) = delay {
        if prob > 0.0 && rng.bernoulli(prob) {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel;
    use crate::metrics::Metrics;
    use crate::tuple::tuple_of;
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    fn empty_sink() -> Sink {
        Arc::new(Mutex::new(HashMap::new()))
    }

    /// Regression (PR 3): a full terminal-sink batch must reset the
    /// linger clock. Pre-fix, `flush_sink` left `oldest` at the drained
    /// batch's timestamp, so every later `flush_if_lingering` call
    /// force-flushed fresh partial buffers for the rest of the run —
    /// silently defeating batching.
    #[test]
    fn sink_batch_flush_resets_linger_clock() {
        let metrics = Metrics::new();
        let sink = empty_sink();
        let linger = Duration::from_millis(40);
        let mut emit = EmitCtx::new(
            vec![],
            "sink".into(),
            &metrics,
            sink.clone(),
            1,
            0.0,
            None,
            4,
            linger,
            32,
        );
        for i in 0..4i64 {
            emit.push(&tuple_of([i]), false);
        }
        assert_eq!(sink.lock().unwrap()["sink"].lock().unwrap().len(), 4, "full batch must flush");
        assert!(emit.oldest.is_none(), "stale linger timestamp survived a full sink flush");
        // Wait out the *old* batch's linger budget, then buffer one
        // fresh tuple: it must NOT be force-flushed off the stale clock.
        std::thread::sleep(linger + Duration::from_millis(20));
        emit.push(&tuple_of([99i64]), false);
        emit.flush_if_lingering();
        assert_eq!(
            sink.lock().unwrap()["sink"].lock().unwrap().len(),
            4,
            "fresh partial batch was spuriously force-flushed"
        );
    }

    /// Same bug class on routed links: a full batch shipped from `push`
    /// must clear the clock once nothing remains buffered.
    #[test]
    fn full_batch_send_resets_linger_clock() {
        let metrics = Metrics::new();
        let (tx, rx) = channel::<Msg>(None);
        let route =
            Route { grouping: Grouping::Shuffle, senders: vec![tx], frames: false, shard: None };
        let mut emit = EmitCtx::new(
            vec![route],
            "b".into(),
            &metrics,
            empty_sink(),
            1,
            0.0,
            None,
            4,
            Duration::from_millis(40),
            0,
        );
        for i in 0..4i64 {
            emit.push(&tuple_of([i]), false);
        }
        assert!(emit.oldest.is_none(), "stale linger timestamp survived a full batch send");
        assert_eq!(emit.buffered, 0);
        assert!(matches!(rx.try_recv(), Ok(Msg::Data(b)) if b.len() == 4));
    }
}
