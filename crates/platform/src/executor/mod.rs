//! The runtime: maps a topology onto OS threads and channels.
//!
//! A "cluster" here is a set of OS threads (workers) connected by
//! channels (links); DESIGN.md §2 argues why the semantics under study
//! — groupings, acking, replay, backpressure — are preserved by this
//! substitution. Two *schedulers* map tasks onto threads
//! ([`crate::Scheduling`], see DESIGN.md §9):
//!
//! * [`Scheduling::ThreadPerTask`]: every task owns a thread for the
//!   whole run. Within it, [`ExecutorModel`] reproduces the Storm→Heron
//!   redesign the paper describes — `ProcessPerTask` (Heron: dedicated
//!   thread, **bounded** queue, natural backpressure) vs `Multiplexed`
//!   (Storm: several tasks share a worker over **unbounded** queues,
//!   exactly the "complex set of queues … making the performance worse"
//!   configuration that motivated Heron).
//! * [`Scheduling::WorkStealing`]: a fixed pool of N workers (Samza /
//!   Flink style) with per-worker Chase–Lev deques and a global
//!   injector; the schedulable unit is "run this operator task on its
//!   pending input". Idle workers spin → steal → park on a condvar.
//!   Degree-1 co-located chains additionally *fuse* into single
//!   activations ([`ExecutorConfig::fuse_chains`]) that call `execute`
//!   inline with no channel hop. Queues are unbounded inboxes, so
//!   `ExecutorModel` and `channel_capacity` are inert under this
//!   scheduler.
//!
//! # The fast path
//!
//! Links carry [`Batch`]es, not single tuples: emitters buffer per
//! downstream task and ship a full `Vec<Tuple>` when
//! [`ExecutorConfig::batch_size`] is reached, or when the linger/idle
//! policy flushes a partial batch. Routing still happens per tuple
//! (fields grouping hashes every tuple), but channel synchronisation,
//! terminal-sink locking, and acker locking are paid **once per
//! batch**. Metrics on this path are pre-registered
//! [`crate::metrics::CounterHandle`]s — the per-tuple cost is one relaxed atomic add;
//! no `format!`, no map lookup, no mutex (see `metrics.rs`).
//!
//! # Self-instrumentation
//!
//! The executor observes itself with the repo's own synopses
//! (`metrics.rs` module docs): per-component execute latency, spout
//! `next_tuple` latency, end-to-end ack latency, and acker settle time
//! flow into GK quantile histograms under **sampled recording** —
//! [`ExecutorConfig::latency_sample_every`] gates the clock reads so
//! the hot loop usually pays one branch. Batch occupancy
//! (`{component}.batch_fill`) is sampled the same way, once per Nth
//! shipped batch; samplers are phase-staggered across a component's
//! tasks so hits on the shared sketch never line up in lockstep. And
//! every bolt's input queues share a [`crate::channel::LinkStats`]
//! gauge (`{component}.input`): live depth, high-water mark, and
//! backpressure stalls (count + blocked nanoseconds in bounded
//! `send`). The work-stealing pool adds per-worker scheduler counters
//! (`sched.worker{i}.{runs,steals,parks}`). Set
//! `latency_sample_every = 0` to disable the latency layer and run
//! bare.

mod bolt;
mod emit;
mod fuse;
mod spout;
mod thread_per_task;
mod work_stealing;

use crate::acker::Acker;
use crate::channel::{Notifier, Sender};
use crate::metrics::Metrics;
use crate::supervise::{FaultPlan, RestartPolicy};
use crate::time::WatermarkConfig;
use crate::topology::{
    Bolt, BoltBuilder, BoltSource, ComponentDecl, ComponentKind, Grouping, Scheduling, Spout,
    TopologyBuilder,
};
use crate::tuple::{Batch, Tuple};
use sa_core::{Result, SaError, TopologyError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Delivery guarantee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Semantics {
    /// Fire-and-forget: no acking, lost tuples stay lost (S4-style).
    AtMostOnce,
    /// Storm's XOR-ack protocol: failed/timed-out trees are replayed by
    /// the spout. Exactly-once is built on top of this by bolts that
    /// deduplicate through [`crate::checkpoint::CheckpointStore`].
    AtLeastOnce,
}

/// How tasks map onto worker threads under
/// [`Scheduling::ThreadPerTask`] (inert under work-stealing, whose
/// inboxes are always unbounded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorModel {
    /// Heron: one thread per task, bounded queues (backpressure).
    ProcessPerTask,
    /// Storm: up to `tasks_per_worker` tasks of a component share a
    /// thread; unbounded queues (no backpressure).
    Multiplexed {
        /// Tasks sharing one worker thread.
        tasks_per_worker: usize,
    },
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// Thread/queue model (thread-per-task scheduler only).
    pub model: ExecutorModel,
    /// Task→thread scheduler: the historical thread-per-task runtime
    /// (default) or the fixed-pool work-stealing scheduler.
    pub scheduling: Scheduling,
    /// Under [`Scheduling::WorkStealing`], fuse degree-1 co-located
    /// chains (see [`crate::topology`]'s chain planner) into single
    /// activations that call `execute` inline — no channel hop, no
    /// re-batching. Defaults to `true`; no effect under
    /// thread-per-task.
    pub fuse_chains: bool,
    /// Delivery guarantee.
    pub semantics: Semantics,
    /// Queue capacity (in batches) in ProcessPerTask mode.
    pub channel_capacity: usize,
    /// Tuples per link batch. 1 = ship every tuple immediately (the
    /// pre-batching behaviour); larger values amortise channel and
    /// acker synchronisation across the batch.
    pub batch_size: usize,
    /// How long a partial batch may sit in an emit buffer before the
    /// producer force-flushes it, bounding latency under trickle input.
    /// (Producers also flush whenever they go idle, so this only
    /// matters for tasks that stay busy without filling a batch.)
    pub batch_linger: Duration,
    /// Probability that a link delivery is dropped (failure injection).
    pub link_drop_prob: f64,
    /// Wall-clock age after which a pending tuple tree is failed and
    /// replayed (Storm's message timeout).
    pub ack_timeout: Duration,
    /// How long a spout may sit idle **without progress** (no emission,
    /// no settled root) before the run is declared unclean. Progress of
    /// any kind — a new tuple, an ack, a fail — resets the clock, so
    /// slow trickle runs are not killed by wall-clock age alone.
    pub shutdown_timeout: Duration,
    /// Sampled-recording rate of the latency instrumentation: one in
    /// this many events gets a clock read + histogram insert. `0`
    /// disables latency histograms, batch-occupancy stats, and link
    /// gauges entirely (bare fast path). Default 32 — measured overhead
    /// is within a few percent (experiment T2.D).
    pub latency_sample_every: u32,
    /// Event-time watermark policy. `None` (the default) disables the
    /// event-time layer entirely: no markers flow, `Bolt::on_watermark`
    /// never fires, and the data path is unchanged. `Some` turns spouts
    /// into watermark generators and bolts into min-merging forwarders
    /// (see `time.rs` module docs).
    pub watermarks: Option<WatermarkConfig>,
    /// RNG seed (edge ids, drop injection).
    pub seed: u64,
    /// Crash injection: when this flag flips to `true`, spouts stop
    /// emitting immediately and shutdown skips the flush phase — bolts
    /// never see `flush()`, exactly as if the process died. Recovery
    /// tests flip it mid-stream and then restart the topology from
    /// checkpoints + log replay.
    pub kill: Option<Arc<AtomicBool>>,
    /// Default restart policy for every task; components override it
    /// with `SpoutHandle::restart` / `BoltHandle::restart`. The default
    /// grants a generous budget — [`RestartPolicy::none`] restores the
    /// pre-supervision "first panic fails the topology" behaviour.
    pub restart: RestartPolicy,
    /// Replays granted to one spout message before it is quarantined to
    /// the `"{spout}.dlq"` dead-letter output instead of being replayed
    /// again. `None` (default) replays forever.
    pub max_replays: Option<u32>,
    /// Chaos plan: injected panics, per-component link drops/delays.
    /// (Checkpoint-write faults arm separately via
    /// [`FaultPlan::arm_store`].) Empty by default.
    pub faults: FaultPlan,
    /// Live-rescaling controller. When set, `Fields` routes into
    /// components with a registered [`crate::rescale::ShardTable`]
    /// consult the table's live assignment (instead of the static
    /// ring→task map), and the executor registers every component's
    /// input senders with the controller so
    /// [`crate::rescale::RescaleController::resize`] can reach parked
    /// tasks. `None` (default): fully static routing, zero overhead.
    pub rescale: Option<crate::rescale::RescaleController>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            model: ExecutorModel::ProcessPerTask,
            scheduling: Scheduling::ThreadPerTask,
            fuse_chains: true,
            semantics: Semantics::AtLeastOnce,
            channel_capacity: 1024,
            batch_size: 64,
            batch_linger: Duration::from_millis(2),
            link_drop_prob: 0.0,
            ack_timeout: Duration::from_secs(5),
            shutdown_timeout: Duration::from_secs(10),
            latency_sample_every: 32,
            watermarks: None,
            seed: 0xD15C0,
            kill: None,
            restart: RestartPolicy::default(),
            max_replays: None,
            faults: FaultPlan::default(),
            rescale: None,
        }
    }
}

/// What a run returns.
#[derive(Debug)]
pub struct RunResult {
    /// Tuples emitted by *terminal* bolts (no downstream subscribers),
    /// keyed by component name.
    pub outputs: HashMap<String, Vec<Tuple>>,
    /// Runtime metrics (read with [`Metrics::snapshot`]).
    pub metrics: Metrics,
    /// False when the shutdown timeout expired with trees still pending.
    pub clean_shutdown: bool,
}

pub(crate) enum Msg {
    /// A run of tuples for one task.
    Data(Batch),
    /// A columnar batch for one task (links whose consumer opted in via
    /// [`Bolt::wants_frames`]; consumers that cannot take the bulk path
    /// fall back through [`crate::frame::Frame::to_batch`]).
    Frame(crate::frame::Frame),
    /// In-band watermark marker: the task identified by `source`
    /// promises no tuple with `event_time < wm` will follow on this
    /// link. `idle` declares the source dormant (excluded from
    /// downstream min-merges until it speaks again). Markers ride the
    /// same FIFO channels as data — senders flush their emit buffers
    /// first, so a marker can never overtake tuples it covers.
    Watermark {
        source: u32,
        wm: u64,
        idle: bool,
    },
    /// Rescale kick: a shard-table phase change is in flight for this
    /// component. Wakes parked tasks and drives the idle hook so
    /// sharded bolts observe the new table promptly (harmless no-op
    /// for everything else).
    Rescale,
    Flush,
    Terminate,
}

/// One downstream subscription of a component.
#[derive(Clone)]
pub(crate) struct Route {
    pub(crate) grouping: Grouping,
    pub(crate) senders: Vec<Sender<Msg>>,
    /// Ship full batches on this link as columnar [`Msg::Frame`]s
    /// (every downstream task opted in via [`Bolt::wants_frames`]).
    pub(crate) frames: bool,
    /// Live group→task assignment for `Fields` routes into a rescalable
    /// component; `None` routes through the static ring→task map.
    pub(crate) shard: Option<crate::rescale::ShardTable>,
}

/// One terminal-sink entry, pre-resolved at task spawn so the hot flush
/// path locks only its own slot — no map lookup, no key clone, and no
/// contention between components that share the run-wide sink.
pub(crate) type SinkSlot = Arc<Mutex<Vec<Tuple>>>;

pub(crate) type Sink = Arc<Mutex<HashMap<String, SinkSlot>>>;

/// Intern `key`'s slot in the run sink (build-time only).
pub(crate) fn sink_slot(sink: &Sink, key: &str) -> SinkSlot {
    sink.lock().unwrap().entry(key.to_string()).or_default().clone()
}

/// True when every task of `downstream` opted into columnar input via
/// [`Bolt::wants_frames`] — links into it then ship [`Msg::Frame`].
/// Components absent from `built` (spouts, or bolts already fused into
/// a chain and moved out) stay on the row path.
pub(crate) fn link_frames(built: &HashMap<String, Vec<BoltTask>>, downstream: &str) -> bool {
    built
        .get(downstream)
        .is_some_and(|tasks| !tasks.is_empty() && tasks.iter().all(|t| t.bolt.wants_frames()))
}

/// Combined hash of a tuple's grouped fields. Per-field hashes are
/// mix-combined, not raw-XORed, and the result passes through `mix64`
/// once more: a raw XOR cancels identical per-field hashes (duplicated
/// indices, repeated values), piling low-entropy keys onto one group.
/// Tuples missing every grouped field share one (well-defined) "null
/// key" hash, as fields grouping requires.
pub(crate) fn fields_hash(tuple: &Tuple, fields: &[usize]) -> u64 {
    let mut h = 0u64;
    for &f in fields {
        if let Some(v) = tuple.get(f) {
            h = sa_core::hash::mix64(h ^ v.hash64().rotate_left(f as u32));
        }
    }
    sa_core::hash::mix64(h)
}

/// Task index for a fields grouping. Routes through the key-group ring
/// (`hash → group → contiguous range of tasks`, see [`crate::rescale`])
/// rather than `hash % fanout` directly, so a key's placement is a
/// function of its *group* at every parallelism: keys sharing a group
/// always co-locate, and this static map agrees exactly with a
/// [`crate::rescale::ShardTable`] running at `active == fanout`.
pub(crate) fn fields_task(tuple: &Tuple, fields: &[usize], fanout: usize) -> usize {
    crate::rescale::task_of_group(crate::rescale::group_of_hash(fields_hash(tuple, fields)), fanout)
}

const ROOT_SHIFT: u32 = 48;

pub(crate) fn encode_root(spout_task: usize, local: u64) -> u64 {
    ((spout_task as u64 + 1) << ROOT_SHIFT) | (local & ((1 << ROOT_SHIFT) - 1))
}

pub(crate) fn decode_root(root: u64) -> (usize, u64) {
    (((root >> ROOT_SHIFT) - 1) as usize, root & ((1 << ROOT_SHIFT) - 1))
}

/// One bolt task as materialized before spawn: the live instance plus
/// the factory that rebuilds it on supervised restart (present only
/// for bolts declared via factories/builders).
pub(crate) struct BoltTask {
    pub(crate) bolt: Box<dyn Bolt>,
    pub(crate) factory: Option<BoltBuilder>,
}

/// Everything both schedulers need, prepared once: validated component
/// declarations (instances extracted), shared run state, task ids, and
/// the topological order the shutdown protocol walks.
pub(crate) struct RunCore {
    pub(crate) config: ExecutorConfig,
    pub(crate) metrics: Metrics,
    pub(crate) sink: Sink,
    pub(crate) acker: Arc<Mutex<Acker>>,
    pub(crate) unclean: Arc<AtomicBool>,
    /// Escalation: the first task to exhaust its restart budget records
    /// why in `failure` and flips `abort`; spouts then stop (like
    /// `kill`) and the run drains before the error surfaces.
    pub(crate) abort: Arc<AtomicBool>,
    pub(crate) failure: Arc<Mutex<Option<String>>>,
    pub(crate) run_start: Instant,
    /// Ack progress events: bolts notify after applying acks/fails so
    /// idle spouts wake to settle instead of sleep-polling.
    pub(crate) ack_note: Arc<Notifier>,
    /// Component declarations with their instances moved out into
    /// `built` / `spouts` (metadata — name, parallelism, inputs,
    /// restart, kind discriminant — remains).
    pub(crate) decls: Vec<ComponentDecl>,
    pub(crate) built: HashMap<String, Vec<BoltTask>>,
    pub(crate) spouts: HashMap<String, Vec<Box<dyn Spout>>>,
    pub(crate) task_ids: HashMap<String, Vec<u32>>,
    pub(crate) upstream_ids: HashMap<String, Vec<u32>>,
    pub(crate) order: Vec<String>,
}

impl RunCore {
    /// The restart policy governing `decl` (component override or the
    /// run default).
    pub(crate) fn restart_for(&self, decl: &ComponentDecl) -> RestartPolicy {
        decl.restart.clone().unwrap_or_else(|| self.config.restart.clone())
    }

    /// The link-drop probability for `name` (chaos override or the run
    /// default).
    pub(crate) fn drop_prob_for(&self, name: &str) -> f64 {
        self.config.faults.drop_for(name).unwrap_or(self.config.link_drop_prob)
    }

    /// Surface an escalated failure, or hand back the terminal sink.
    pub(crate) fn conclude(self) -> Result<RunResult> {
        if let Some(why) = self.failure.lock().unwrap().take() {
            return Err(SaError::Platform(why));
        }
        // Pre-resolved slots exist for every terminal/late/dlq key the
        // run *could* have used; only keys that saw tuples surface.
        let outputs = std::mem::take(&mut *self.sink.lock().unwrap())
            .into_iter()
            .map(|(k, slot)| (k, std::mem::take(&mut *slot.lock().unwrap())))
            .filter(|(_, v)| !v.is_empty())
            .collect();
        Ok(RunResult {
            outputs,
            metrics: self.metrics,
            clean_shutdown: !self.unclean.load(Ordering::Relaxed),
        })
    }
}

/// Run a topology to completion: spouts drain, trees settle (or the
/// shutdown timeout fires), bolts flush in topological order.
///
/// Validation runs first — wiring mistakes surface as
/// [`SaError::Topology`] before any thread spawns.
pub fn run_topology(builder: TopologyBuilder, config: ExecutorConfig) -> Result<RunResult> {
    run_topology_with(builder, config, Metrics::new())
}

/// [`run_topology`] against a caller-supplied [`Metrics`] registry, so
/// the run's counters land next to metrics registered *outside* the
/// topology (e.g. a [`crate::ServingView`]'s `query_us`/`epoch`
/// instruments share the snapshot with the executor's throughput
/// accounting — the compiled-query path in [`crate::query`] relies on
/// this).
pub fn run_topology_with(
    builder: TopologyBuilder,
    config: ExecutorConfig,
    metrics: Metrics,
) -> Result<RunResult> {
    builder.validate()?;
    let order = topo_order(&builder)?;

    // --- Event-time source ids: every task (spout or bolt) gets a
    //     global id so watermark markers identify their sender, and
    //     each bolt pre-seeds its merger with every upstream task id
    //     (an input it has never heard from must block the merge). ---
    let mut task_ids: HashMap<String, Vec<u32>> = HashMap::new();
    let mut next_task_id = 0u32;
    for c in &builder.components {
        let ids = (0..c.parallelism)
            .map(|_| {
                let id = next_task_id;
                next_task_id += 1;
                id
            })
            .collect();
        task_ids.insert(c.name.clone(), ids);
    }
    let mut upstream_ids: HashMap<String, Vec<u32>> = HashMap::new();
    for c in &builder.components {
        let mut ids: Vec<u32> =
            c.inputs.iter().flat_map(|(up, _)| task_ids[up].iter().copied()).collect();
        ids.sort_unstable();
        ids.dedup(); // double-subscribed upstreams must not double-block
        upstream_ids.insert(c.name.clone(), ids);
    }

    let mut decls: Vec<ComponentDecl> = builder.components;

    // --- Materialize bolt tasks (and extract spout instances) before
    //     spawning anything: a factory whose initial build fails aborts
    //     the run cleanly. ---
    let mut built: HashMap<String, Vec<BoltTask>> = HashMap::new();
    let mut spouts: HashMap<String, Vec<Box<dyn Spout>>> = HashMap::new();
    for decl in decls.iter_mut() {
        match decl.kind {
            ComponentKind::Spout(ref mut instances) => {
                spouts.insert(decl.name.clone(), std::mem::take(instances));
            }
            ComponentKind::Bolt(ref mut sources) => {
                let mut tasks = Vec::with_capacity(sources.len());
                for (i, src) in std::mem::take(sources).into_iter().enumerate() {
                    match src {
                        BoltSource::Instance(bolt) => tasks.push(BoltTask { bolt, factory: None }),
                        BoltSource::Factory(mut build) => {
                            let bolt = build().map_err(|e| {
                                SaError::Platform(format!(
                                    "bolt '{}' task {i} factory failed at startup: {e}",
                                    decl.name
                                ))
                            })?;
                            tasks.push(BoltTask { bolt, factory: Some(build) });
                        }
                    }
                }
                built.insert(decl.name.clone(), tasks);
            }
        }
    }

    let core = RunCore {
        metrics,
        sink: Arc::new(Mutex::new(HashMap::new())),
        acker: Arc::new(Mutex::new(Acker::new())),
        unclean: Arc::new(AtomicBool::new(false)),
        abort: Arc::new(AtomicBool::new(false)),
        failure: Arc::new(Mutex::new(None)),
        run_start: Instant::now(),
        ack_note: Arc::new(Notifier::new()),
        decls,
        built,
        spouts,
        task_ids,
        upstream_ids,
        order,
        config,
    };
    match core.config.scheduling {
        Scheduling::ThreadPerTask => thread_per_task::run(core),
        Scheduling::WorkStealing { .. } => work_stealing::run(core),
    }
}

fn topo_order(builder: &TopologyBuilder) -> Result<Vec<String>> {
    let mut indeg: HashMap<&str, usize> = HashMap::new();
    let mut down: HashMap<&str, Vec<&str>> = HashMap::new();
    for c in &builder.components {
        indeg.entry(c.name.as_str()).or_insert(0);
        for (up, _) in &c.inputs {
            *indeg.entry(c.name.as_str()).or_insert(0) += 1;
            down.entry(up.as_str()).or_default().push(c.name.as_str());
        }
    }
    let mut queue: Vec<&str> = indeg.iter().filter(|(_, &d)| d == 0).map(|(&n, _)| n).collect();
    queue.sort(); // determinism
    let mut order = Vec::new();
    while let Some(n) = queue.pop() {
        order.push(n.to_string());
        for &d in down.get(n).into_iter().flatten() {
            let e = indeg.get_mut(d).unwrap();
            *e -= 1;
            if *e == 0 {
                queue.push(d);
            }
        }
    }
    if order.len() != builder.components.len() {
        return Err(TopologyError::Cycle.into());
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::tuple_of;

    /// Regression (PR 3): fields grouping must spread sequential and
    /// low-entropy keys. Pre-fix the per-field hashes were raw-XORed —
    /// a duplicated field index cancelled to `h = 0` for every tuple,
    /// piling 100% of the stream onto task 0.
    #[test]
    fn fields_grouping_spreads_sequential_and_low_entropy_keys() {
        let fanout = 4;
        let n = 4000usize;
        let fair = n / fanout;
        for (label, fields) in [("single field", vec![0usize]), ("duplicated index", vec![0, 0])] {
            let mut counts = vec![0usize; fanout];
            for i in 0..n {
                counts[fields_task(&tuple_of([i as i64]), &fields, fanout)] += 1;
            }
            for &c in &counts {
                assert!(
                    c >= fair / 2 && c <= fair * 2,
                    "{label}: sequential integer keys skewed: {counts:?}"
                );
            }
        }
    }

    /// Missing-field tuples share one well-defined "null key" task —
    /// constant routing is required for grouping correctness, but the
    /// choice must be stable.
    #[test]
    fn fields_grouping_missing_fields_route_consistently() {
        let fanout = 4;
        let first = fields_task(&tuple_of([1i64]), &[7], fanout);
        for i in 2..100i64 {
            assert_eq!(fields_task(&tuple_of([i]), &[7], fanout), first);
        }
    }
}
