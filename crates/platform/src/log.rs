//! A durable partitioned log — the Kafka stand-in that gives this
//! workspace Samza's persistence/replay semantics and the Lambda
//! architecture's immutable master dataset (see DESIGN.md §2 for the
//! substitution argument: Samza's guarantees derive from log semantics
//! — append, offset, replay — which are reproduced here exactly).
//!
//! [`Log::durable`] backs every partition with CRC32-framed segment
//! files over a [`crate::storage::Storage`] backend ([`crate::storage`]
//! documents the framing). Appends and trims write through the
//! partition's write-ahead segments before touching memory, so
//! `LogSpout` replay and `frontier_offset` survive a real process kill:
//! recovery re-reads the segments, truncates a torn tail (crash
//! mid-append), and rejects any other CRC mismatch loudly. The
//! in-memory constructor ([`Log::new`]) is unchanged and remains the
//! default.

use crate::storage::{Storage, StorageStats, SyncPolicy, Wal};
use sa_core::codec::{ByteReader, ByteWriter};
use sa_core::{Result, SaError};
use std::sync::Arc;
use std::sync::RwLock;

/// Segment-record op: append `{key, value, event_time?}`.
const OP_APPEND: u8 = b'A';
/// Segment-record op: trim `{upto_offset}`.
const OP_TRIM: u8 = b'T';

/// One record in a partition.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Partition-local offset.
    pub offset: u64,
    /// Partitioning key.
    pub key: String,
    /// Payload.
    pub value: Vec<u8>,
    /// Event time of the record, when the producer stamped one
    /// ([`Log::append_at`]). Replayed tuples restore this stamp so
    /// they re-enter the same event-time windows after a crash.
    pub event_time: Option<u64>,
}

/// Retained suffix of one partition. Offsets are absolute and stable
/// across retention: record `offset` lives at index `offset - base`.
#[derive(Debug, Default)]
struct Partition {
    /// Offset of the oldest retained record (= number trimmed away).
    base: u64,
    records: Vec<Record>,
    /// Present iff the partition writes through durable segments.
    wal: Option<Wal>,
}

impl Partition {
    /// In-memory append (shared by the live path and segment replay).
    fn apply_append(&mut self, key: String, value: Vec<u8>, event_time: Option<u64>) -> u64 {
        let offset = self.base + self.records.len() as u64;
        self.records.push(Record { offset, key, value, event_time });
        offset
    }

    /// In-memory trim (shared by the live path and segment replay).
    fn apply_trim(&mut self, upto_offset: u64) -> usize {
        let end = self.base + self.records.len() as u64;
        let cut = upto_offset.min(end).saturating_sub(self.base) as usize;
        if cut == 0 {
            return 0;
        }
        self.records.drain(..cut);
        self.base += cut as u64;
        cut
    }

    /// Apply one recovered segment record.
    fn replay(&mut self, payload: &[u8]) -> Result<()> {
        let mut r = ByteReader::new(payload);
        match r.get_u8()? {
            OP_APPEND => {
                let key = r.get_str()?;
                let value = r.get_bytes()?.to_vec();
                let event_time = if r.get_bool()? { Some(r.get_u64()?) } else { None };
                self.apply_append(key, value, event_time);
            }
            OP_TRIM => {
                let upto = r.get_u64()?;
                self.apply_trim(upto);
            }
            op => return Err(SaError::corrupt(format!("unknown log segment op {op:#04x}"))),
        }
        Ok(())
    }
}

/// An append-only, partitioned, replayable log. Cloning shares the
/// underlying storage (it is the "cluster-wide" log).
#[derive(Clone, Debug)]
pub struct Log {
    partitions: Arc<Vec<RwLock<Partition>>>,
    stats: Option<Arc<StorageStats>>,
}

impl Log {
    /// A log with `partitions ≥ 1` partitions.
    pub fn new(partitions: usize) -> sa_core::Result<Self> {
        if partitions == 0 {
            return Err(sa_core::SaError::invalid("partitions", "must be positive"));
        }
        Ok(Self {
            partitions: Arc::new(
                (0..partitions).map(|_| RwLock::new(Partition::default())).collect(),
            ),
            stats: None,
        })
    }

    /// Open (or recover) a durable log under `{dir}` of `storage`:
    /// partition `p` lives in segments `{dir}/p{p}/seg-*.wal`. Recovery
    /// replays every intact record of every partition, truncating a
    /// torn tail (crash mid-append) and rejecting any other CRC
    /// mismatch with [`SaError::Corrupt`].
    pub fn durable(
        storage: Arc<dyn Storage>,
        dir: &str,
        partitions: usize,
        sync: SyncPolicy,
        segment_bytes: u64,
    ) -> Result<Self> {
        if partitions == 0 {
            return Err(SaError::invalid("partitions", "must be positive"));
        }
        let stats = Arc::new(StorageStats::default());
        let mut parts = Vec::with_capacity(partitions);
        for p in 0..partitions {
            let rec = Wal::open(
                storage.clone(),
                &format!("{dir}/p{p}"),
                "seg-",
                0,
                sync,
                segment_bytes,
                stats.clone(),
            )?;
            let mut part = Partition { wal: Some(rec.wal), ..Partition::default() };
            for payload in &rec.payloads {
                part.replay(payload).map_err(|e| match e {
                    SaError::Corrupt(msg) => SaError::Corrupt(format!("partition {p}: {msg}")),
                    other => other,
                })?;
            }
            parts.push(RwLock::new(part));
        }
        Ok(Self { partitions: Arc::new(parts), stats: Some(stats) })
    }

    /// The durable backend's I/O counters (`None` on in-memory logs).
    pub fn storage_stats(&self) -> Option<Arc<StorageStats>> {
        self.stats.clone()
    }

    /// Flush group-committed segment suffixes of every partition to
    /// media (no-op in-memory).
    pub fn sync(&self) -> Result<()> {
        for part in self.partitions.iter() {
            if let Some(wal) = part.write().unwrap().wal.as_mut() {
                wal.sync()?;
            }
        }
        Ok(())
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition a key routes to.
    pub fn partition_of(&self, key: &str) -> usize {
        (sa_core::hash::hash64(key, 0x10C) % self.partitions.len() as u64) as usize
    }

    /// Append by key; returns `(partition, offset)`.
    ///
    /// # Panics
    ///
    /// On a durable log, panics if the segment write fails; use
    /// [`Log::try_append`] where storage faults must be handled.
    pub fn append(&self, key: &str, value: Vec<u8>) -> (usize, u64) {
        self.try_append(key, value, None).expect("durable log append failed")
    }

    /// Append by key with an event-time stamp; returns
    /// `(partition, offset)`. Spouts replaying the log re-stamp tuples
    /// from this field, keeping windowed results deterministic across
    /// crashes.
    ///
    /// # Panics
    ///
    /// On a durable log, panics if the segment write fails; use
    /// [`Log::try_append`] where storage faults must be handled.
    pub fn append_at(&self, key: &str, value: Vec<u8>, event_time: u64) -> (usize, u64) {
        self.try_append(key, value, Some(event_time)).expect("durable log append failed")
    }

    /// Append with storage errors surfaced instead of panicking. On
    /// `Err` nothing was appended (the segment repairs its own torn
    /// tail), and a transient error is safe to retry.
    pub fn try_append(
        &self,
        key: &str,
        value: Vec<u8>,
        event_time: Option<u64>,
    ) -> Result<(usize, u64)> {
        let p = self.partition_of(key);
        let mut part = self.partitions[p].write().unwrap();
        if part.wal.is_some() {
            let mut w = ByteWriter::with_capacity(32 + key.len() + value.len());
            w.tag(OP_APPEND).put_str(key).put_bytes(&value);
            match event_time {
                Some(et) => w.put_bool(true).put_u64(et),
                None => w.put_bool(false),
            };
            let record = w.finish();
            part.wal.as_mut().unwrap().append(&record)?;
        }
        let offset = part.apply_append(key.to_string(), value, event_time);
        Ok((p, offset))
    }

    /// Read up to `max` records from a partition starting at `offset`.
    /// Reads below the retention point resume at the oldest retained
    /// record (Kafka's `auto.offset.reset = earliest`).
    pub fn read(&self, partition: usize, offset: u64, max: usize) -> Vec<Record> {
        let part = self.partitions[partition].read().unwrap();
        let skip = offset.saturating_sub(part.base) as usize;
        part.records.iter().skip(skip).take(max).cloned().collect()
    }

    /// End offset (next offset to be written) of a partition.
    pub fn end_offset(&self, partition: usize) -> u64 {
        let part = self.partitions[partition].read().unwrap();
        part.base + part.records.len() as u64
    }

    /// Oldest retained offset of a partition (0 until trimmed).
    pub fn start_offset(&self, partition: usize) -> u64 {
        self.partitions[partition].read().unwrap().base
    }

    /// Retention: discard records of `partition` with offsets below
    /// `upto_offset`. Offsets of surviving records are unchanged —
    /// consumers keep their positions. Returns the number removed.
    ///
    /// Safety rule (as with Kafka retention vs. committed offsets): only
    /// trim below every consumer's committed offset and below every
    /// checkpoint's replay point, or recovery will skip records.
    pub fn trim(&self, partition: usize, upto_offset: u64) -> usize {
        let mut part = self.partitions[partition].write().unwrap();
        if part.wal.is_some() {
            let mut w = ByteWriter::with_capacity(16);
            w.tag(OP_TRIM).put_u64(upto_offset);
            let record = w.finish();
            // Retention is an optimization: on a transient storage
            // error, skip the trim (replay just retains more) rather
            // than fail the caller.
            if part.wal.as_mut().unwrap().append(&record).is_err() {
                return 0;
            }
        }
        part.apply_trim(upto_offset)
    }

    /// Records currently retained in one partition.
    pub fn partition_len(&self, partition: usize) -> usize {
        self.partitions[partition].read().unwrap().records.len()
    }

    /// Total retained records across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.read().unwrap().records.len()).sum()
    }

    /// Whether the log retains no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A consumer with per-partition committed offsets (a one-member
/// "consumer group"): reads are repeatable until committed, which is
/// exactly the at-least-once contract Samza inherits from Kafka.
#[derive(Clone, Debug)]
pub struct Consumer {
    log: Log,
    offsets: Vec<u64>,
}

impl Consumer {
    /// A consumer starting at the log's beginning.
    pub fn new(log: &Log) -> Self {
        Self { log: log.clone(), offsets: vec![0; log.partitions()] }
    }

    /// Poll up to `max` records from one partition (does not advance the
    /// committed offset).
    pub fn poll(&self, partition: usize, max: usize) -> Vec<Record> {
        self.log.read(partition, self.offsets[partition], max)
    }

    /// Commit the offset after processing records up to `offset`
    /// exclusive.
    pub fn commit(&mut self, partition: usize, offset: u64) {
        self.offsets[partition] = offset;
    }

    /// Committed offset of a partition.
    pub fn committed(&self, partition: usize) -> u64 {
        self.offsets[partition]
    }

    /// Records remaining across all partitions.
    pub fn lag(&self) -> u64 {
        (0..self.log.partitions()).map(|p| self.log.end_offset(p) - self.offsets[p]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_read_round_trip() {
        let log = Log::new(4).unwrap();
        let (p, o) = log.append("user1", b"hello".to_vec());
        assert_eq!(o, 0);
        let recs = log.read(p, 0, 10);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].value, b"hello");
        assert_eq!(recs[0].key, "user1");
    }

    #[test]
    fn same_key_same_partition_ordered() {
        let log = Log::new(8).unwrap();
        for i in 0..100u32 {
            log.append("k", i.to_le_bytes().to_vec());
        }
        let p = log.partition_of("k");
        let recs = log.read(p, 0, 1000);
        assert_eq!(recs.len(), 100);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.offset, i as u64);
            assert_eq!(r.value, (i as u32).to_le_bytes().to_vec());
        }
    }

    #[test]
    fn keys_spread_over_partitions() {
        let log = Log::new(8).unwrap();
        for i in 0..1000u32 {
            log.append(&format!("k{i}"), vec![]);
        }
        let mut used = 0;
        for p in 0..8 {
            if log.end_offset(p) > 0 {
                used += 1;
            }
        }
        assert!(used >= 6, "only {used} partitions used");
    }

    #[test]
    fn consumer_replay_until_commit() {
        let log = Log::new(1).unwrap();
        for i in 0..5u8 {
            log.append("k", vec![i]);
        }
        let mut c = Consumer::new(&log);
        let batch1 = c.poll(0, 3);
        assert_eq!(batch1.len(), 3);
        // Crash before commit: poll again → same records (replay).
        let batch2 = c.poll(0, 3);
        assert_eq!(batch1, batch2);
        c.commit(0, 3);
        let batch3 = c.poll(0, 3);
        assert_eq!(batch3.len(), 2);
        assert_eq!(batch3[0].value, vec![3]);
        assert_eq!(c.lag(), 2);
    }

    #[test]
    fn trim_preserves_offsets_of_survivors() {
        let log = Log::new(1).unwrap();
        for i in 0..10u8 {
            log.append("k", vec![i]);
        }
        assert_eq!(log.trim(0, 4), 4);
        assert_eq!(log.partition_len(0), 6);
        assert_eq!(log.start_offset(0), 4);
        assert_eq!(log.end_offset(0), 10);
        // Surviving records keep their absolute offsets.
        let recs = log.read(0, 6, 100);
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].offset, 6);
        assert_eq!(recs[0].value, vec![6]);
        // A read below the retention point resumes at the oldest record.
        assert_eq!(log.read(0, 0, 100)[0].offset, 4);
        // Appends continue from the same offset sequence.
        let (_, o) = log.append("k", vec![99]);
        assert_eq!(o, 10);
        // Trimming past the end clears the partition but keeps offsets.
        assert_eq!(log.trim(0, 1_000), 7);
        assert_eq!(log.partition_len(0), 0);
        assert_eq!(log.end_offset(0), 11);
        assert_eq!(log.trim(0, 5), 0, "watermark never lowers");
    }

    #[test]
    fn append_at_preserves_event_time_across_replay() {
        let log = Log::new(1).unwrap();
        log.append("k", vec![0]);
        log.append_at("k", vec![1], 0); // epoch 0 is a valid stamp
        log.append_at("k", vec![2], 1_000);
        let recs = log.read(0, 0, 10);
        assert_eq!(recs[0].event_time, None);
        assert_eq!(recs[1].event_time, Some(0));
        assert_eq!(recs[2].event_time, Some(1_000));
        // A second read (replay) sees the same stamps.
        assert_eq!(log.read(0, 0, 10), recs);
    }

    #[test]
    fn clones_share_storage() {
        let log = Log::new(2).unwrap();
        let log2 = log.clone();
        log.append("a", vec![1]);
        assert_eq!(log2.len(), 1);
    }

    #[test]
    fn invalid_partitions() {
        assert!(Log::new(0).is_err());
    }

    // -- durability --

    use crate::storage::MemStorage;

    fn mem() -> Arc<dyn Storage> {
        Arc::new(MemStorage::new())
    }

    /// Records, offsets, event-time stamps, and retention state all
    /// survive a reopen against the same storage.
    #[test]
    fn durable_log_recovers_records_offsets_and_trim() {
        let storage = mem();
        {
            let log = Log::durable(storage.clone(), "log", 2, SyncPolicy::Always, 1 << 16).unwrap();
            for i in 0..20u8 {
                log.append(&format!("k{}", i % 5), vec![i]);
            }
            log.append_at("k0", vec![99], 1_234);
            let p = log.partition_of("k0");
            log.trim(p, 2);
        }
        let log = Log::durable(storage, "log", 2, SyncPolicy::Always, 1 << 16).unwrap();
        assert_eq!(log.len(), 21 - 2);
        let p = log.partition_of("k0");
        assert_eq!(log.start_offset(p), 2, "retention point survives");
        let recs = log.read(p, 0, 100);
        assert_eq!(recs[0].offset, 2, "absolute offsets survive");
        let last = recs.last().unwrap();
        assert_eq!((last.value.clone(), last.event_time), (vec![99], Some(1_234)));
        // Appends continue the same offset sequence.
        let (_, o) = log.append("k0", vec![100]);
        assert_eq!(o, log.end_offset(p) - 1);
    }

    /// A torn tail in one partition's final segment is truncated; every
    /// fully-framed record before it replays.
    #[test]
    fn durable_log_truncates_torn_tail() {
        let storage = mem();
        {
            let log = Log::durable(storage.clone(), "l", 1, SyncPolicy::Always, 1 << 16).unwrap();
            log.append("a", vec![1]);
            log.append("b", vec![2]);
        }
        storage.append("l/p0/seg-000000.wal", &[50, 0, 0, 0, 1, 2, 3]).unwrap();
        let log = Log::durable(storage, "l", 1, SyncPolicy::Always, 1 << 16).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.storage_stats().unwrap().totals().2, 1, "repair counted");
    }

    /// Mid-stream corruption is rejected loudly, naming the partition.
    #[test]
    fn durable_log_rejects_corruption() {
        let storage = mem();
        {
            let log = Log::durable(storage.clone(), "l", 1, SyncPolicy::Always, 1 << 16).unwrap();
            log.append("a", vec![1]);
            log.append("b", vec![2]);
        }
        let mut bytes = storage.read("l/p0/seg-000000.wal").unwrap();
        bytes[10] ^= 0x04;
        storage.write("l/p0/seg-000000.wal", &bytes).unwrap();
        let err = Log::durable(storage, "l", 1, SyncPolicy::Always, 1 << 16).unwrap_err();
        assert!(matches!(err, sa_core::SaError::Corrupt(_)), "got {err}");
    }

    /// Group commit batches fsyncs across appends to the same partition.
    #[test]
    fn durable_log_group_commit() {
        let storage = mem();
        let log = Log::durable(storage, "g", 1, SyncPolicy::EveryN(8), 1 << 20).unwrap();
        for i in 0..32u8 {
            log.append("k", vec![i]);
        }
        assert_eq!(log.storage_stats().unwrap().totals().0, 4);
        log.sync().unwrap();
        assert_eq!(log.storage_stats().unwrap().totals().0, 4, "nothing unsynced after 32/8");
    }
}
