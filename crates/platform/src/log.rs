//! A durable partitioned log — the Kafka stand-in that gives this
//! workspace Samza's persistence/replay semantics and the Lambda
//! architecture's immutable master dataset (see DESIGN.md §2 for the
//! substitution argument: Samza's guarantees derive from log semantics
//! — append, offset, replay — which are reproduced here exactly).

use std::sync::Arc;
use std::sync::RwLock;

/// One record in a partition.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Partition-local offset.
    pub offset: u64,
    /// Partitioning key.
    pub key: String,
    /// Payload.
    pub value: Vec<u8>,
    /// Event time of the record, when the producer stamped one
    /// ([`Log::append_at`]). Replayed tuples restore this stamp so
    /// they re-enter the same event-time windows after a crash.
    pub event_time: Option<u64>,
}

/// Retained suffix of one partition. Offsets are absolute and stable
/// across retention: record `offset` lives at index `offset - base`.
#[derive(Debug, Default)]
struct Partition {
    /// Offset of the oldest retained record (= number trimmed away).
    base: u64,
    records: Vec<Record>,
}

/// An append-only, partitioned, replayable log. Cloning shares the
/// underlying storage (it is the "cluster-wide" log).
#[derive(Clone, Debug)]
pub struct Log {
    partitions: Arc<Vec<RwLock<Partition>>>,
}

impl Log {
    /// A log with `partitions ≥ 1` partitions.
    pub fn new(partitions: usize) -> sa_core::Result<Self> {
        if partitions == 0 {
            return Err(sa_core::SaError::invalid("partitions", "must be positive"));
        }
        Ok(Self {
            partitions: Arc::new(
                (0..partitions).map(|_| RwLock::new(Partition::default())).collect(),
            ),
        })
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition a key routes to.
    pub fn partition_of(&self, key: &str) -> usize {
        (sa_core::hash::hash64(key, 0x10C) % self.partitions.len() as u64) as usize
    }

    /// Append by key; returns `(partition, offset)`.
    pub fn append(&self, key: &str, value: Vec<u8>) -> (usize, u64) {
        self.append_record(key, value, None)
    }

    /// Append by key with an event-time stamp; returns
    /// `(partition, offset)`. Spouts replaying the log re-stamp tuples
    /// from this field, keeping windowed results deterministic across
    /// crashes.
    pub fn append_at(&self, key: &str, value: Vec<u8>, event_time: u64) -> (usize, u64) {
        self.append_record(key, value, Some(event_time))
    }

    fn append_record(&self, key: &str, value: Vec<u8>, event_time: Option<u64>) -> (usize, u64) {
        let p = self.partition_of(key);
        let mut part = self.partitions[p].write().unwrap();
        let offset = part.base + part.records.len() as u64;
        part.records.push(Record { offset, key: key.to_string(), value, event_time });
        (p, offset)
    }

    /// Read up to `max` records from a partition starting at `offset`.
    /// Reads below the retention point resume at the oldest retained
    /// record (Kafka's `auto.offset.reset = earliest`).
    pub fn read(&self, partition: usize, offset: u64, max: usize) -> Vec<Record> {
        let part = self.partitions[partition].read().unwrap();
        let skip = offset.saturating_sub(part.base) as usize;
        part.records.iter().skip(skip).take(max).cloned().collect()
    }

    /// End offset (next offset to be written) of a partition.
    pub fn end_offset(&self, partition: usize) -> u64 {
        let part = self.partitions[partition].read().unwrap();
        part.base + part.records.len() as u64
    }

    /// Oldest retained offset of a partition (0 until trimmed).
    pub fn start_offset(&self, partition: usize) -> u64 {
        self.partitions[partition].read().unwrap().base
    }

    /// Retention: discard records of `partition` with offsets below
    /// `upto_offset`. Offsets of surviving records are unchanged —
    /// consumers keep their positions. Returns the number removed.
    ///
    /// Safety rule (as with Kafka retention vs. committed offsets): only
    /// trim below every consumer's committed offset and below every
    /// checkpoint's replay point, or recovery will skip records.
    pub fn trim(&self, partition: usize, upto_offset: u64) -> usize {
        let mut part = self.partitions[partition].write().unwrap();
        let end = part.base + part.records.len() as u64;
        let cut = upto_offset.min(end).saturating_sub(part.base) as usize;
        if cut == 0 {
            return 0;
        }
        part.records.drain(..cut);
        part.base += cut as u64;
        cut
    }

    /// Records currently retained in one partition.
    pub fn partition_len(&self, partition: usize) -> usize {
        self.partitions[partition].read().unwrap().records.len()
    }

    /// Total retained records across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.read().unwrap().records.len()).sum()
    }

    /// Whether the log retains no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A consumer with per-partition committed offsets (a one-member
/// "consumer group"): reads are repeatable until committed, which is
/// exactly the at-least-once contract Samza inherits from Kafka.
#[derive(Clone, Debug)]
pub struct Consumer {
    log: Log,
    offsets: Vec<u64>,
}

impl Consumer {
    /// A consumer starting at the log's beginning.
    pub fn new(log: &Log) -> Self {
        Self { log: log.clone(), offsets: vec![0; log.partitions()] }
    }

    /// Poll up to `max` records from one partition (does not advance the
    /// committed offset).
    pub fn poll(&self, partition: usize, max: usize) -> Vec<Record> {
        self.log.read(partition, self.offsets[partition], max)
    }

    /// Commit the offset after processing records up to `offset`
    /// exclusive.
    pub fn commit(&mut self, partition: usize, offset: u64) {
        self.offsets[partition] = offset;
    }

    /// Committed offset of a partition.
    pub fn committed(&self, partition: usize) -> u64 {
        self.offsets[partition]
    }

    /// Records remaining across all partitions.
    pub fn lag(&self) -> u64 {
        (0..self.log.partitions()).map(|p| self.log.end_offset(p) - self.offsets[p]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_read_round_trip() {
        let log = Log::new(4).unwrap();
        let (p, o) = log.append("user1", b"hello".to_vec());
        assert_eq!(o, 0);
        let recs = log.read(p, 0, 10);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].value, b"hello");
        assert_eq!(recs[0].key, "user1");
    }

    #[test]
    fn same_key_same_partition_ordered() {
        let log = Log::new(8).unwrap();
        for i in 0..100u32 {
            log.append("k", i.to_le_bytes().to_vec());
        }
        let p = log.partition_of("k");
        let recs = log.read(p, 0, 1000);
        assert_eq!(recs.len(), 100);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.offset, i as u64);
            assert_eq!(r.value, (i as u32).to_le_bytes().to_vec());
        }
    }

    #[test]
    fn keys_spread_over_partitions() {
        let log = Log::new(8).unwrap();
        for i in 0..1000u32 {
            log.append(&format!("k{i}"), vec![]);
        }
        let mut used = 0;
        for p in 0..8 {
            if log.end_offset(p) > 0 {
                used += 1;
            }
        }
        assert!(used >= 6, "only {used} partitions used");
    }

    #[test]
    fn consumer_replay_until_commit() {
        let log = Log::new(1).unwrap();
        for i in 0..5u8 {
            log.append("k", vec![i]);
        }
        let mut c = Consumer::new(&log);
        let batch1 = c.poll(0, 3);
        assert_eq!(batch1.len(), 3);
        // Crash before commit: poll again → same records (replay).
        let batch2 = c.poll(0, 3);
        assert_eq!(batch1, batch2);
        c.commit(0, 3);
        let batch3 = c.poll(0, 3);
        assert_eq!(batch3.len(), 2);
        assert_eq!(batch3[0].value, vec![3]);
        assert_eq!(c.lag(), 2);
    }

    #[test]
    fn trim_preserves_offsets_of_survivors() {
        let log = Log::new(1).unwrap();
        for i in 0..10u8 {
            log.append("k", vec![i]);
        }
        assert_eq!(log.trim(0, 4), 4);
        assert_eq!(log.partition_len(0), 6);
        assert_eq!(log.start_offset(0), 4);
        assert_eq!(log.end_offset(0), 10);
        // Surviving records keep their absolute offsets.
        let recs = log.read(0, 6, 100);
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].offset, 6);
        assert_eq!(recs[0].value, vec![6]);
        // A read below the retention point resumes at the oldest record.
        assert_eq!(log.read(0, 0, 100)[0].offset, 4);
        // Appends continue from the same offset sequence.
        let (_, o) = log.append("k", vec![99]);
        assert_eq!(o, 10);
        // Trimming past the end clears the partition but keeps offsets.
        assert_eq!(log.trim(0, 1_000), 7);
        assert_eq!(log.partition_len(0), 0);
        assert_eq!(log.end_offset(0), 11);
        assert_eq!(log.trim(0, 5), 0, "watermark never lowers");
    }

    #[test]
    fn append_at_preserves_event_time_across_replay() {
        let log = Log::new(1).unwrap();
        log.append("k", vec![0]);
        log.append_at("k", vec![1], 0); // epoch 0 is a valid stamp
        log.append_at("k", vec![2], 1_000);
        let recs = log.read(0, 0, 10);
        assert_eq!(recs[0].event_time, None);
        assert_eq!(recs[1].event_time, Some(0));
        assert_eq!(recs[2].event_time, Some(1_000));
        // A second read (replay) sees the same stamps.
        assert_eq!(log.read(0, 0, 10), recs);
    }

    #[test]
    fn clones_share_storage() {
        let log = Log::new(2).unwrap();
        let log2 = log.clone();
        log.append("a", vec![1]);
        assert_eq!(log2.len(), 1);
    }

    #[test]
    fn invalid_partitions() {
        assert!(Log::new(0).is_err());
    }
}
