//! A durable partitioned log — the Kafka stand-in that gives this
//! workspace Samza's persistence/replay semantics and the Lambda
//! architecture's immutable master dataset (see DESIGN.md §2 for the
//! substitution argument: Samza's guarantees derive from log semantics
//! — append, offset, replay — which are reproduced here exactly).

use std::sync::Arc;
use std::sync::RwLock;

/// One record in a partition.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Partition-local offset.
    pub offset: u64,
    /// Partitioning key.
    pub key: String,
    /// Payload.
    pub value: Vec<u8>,
}

/// An append-only, partitioned, replayable log. Cloning shares the
/// underlying storage (it is the "cluster-wide" log).
#[derive(Clone, Debug)]
pub struct Log {
    partitions: Arc<Vec<RwLock<Vec<Record>>>>,
}

impl Log {
    /// A log with `partitions ≥ 1` partitions.
    pub fn new(partitions: usize) -> sa_core::Result<Self> {
        if partitions == 0 {
            return Err(sa_core::SaError::invalid("partitions", "must be positive"));
        }
        Ok(Self {
            partitions: Arc::new((0..partitions).map(|_| RwLock::new(Vec::new())).collect()),
        })
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition a key routes to.
    pub fn partition_of(&self, key: &str) -> usize {
        (sa_core::hash::hash64(key, 0x10C) % self.partitions.len() as u64) as usize
    }

    /// Append by key; returns `(partition, offset)`.
    pub fn append(&self, key: &str, value: Vec<u8>) -> (usize, u64) {
        let p = self.partition_of(key);
        let mut part = self.partitions[p].write().unwrap();
        let offset = part.len() as u64;
        part.push(Record { offset, key: key.to_string(), value });
        (p, offset)
    }

    /// Read up to `max` records from a partition starting at `offset`.
    pub fn read(&self, partition: usize, offset: u64, max: usize) -> Vec<Record> {
        let part = self.partitions[partition].read().unwrap();
        part.iter().skip(offset as usize).take(max).cloned().collect()
    }

    /// End offset (next offset to be written) of a partition.
    pub fn end_offset(&self, partition: usize) -> u64 {
        self.partitions[partition].read().unwrap().len() as u64
    }

    /// Total records across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.read().unwrap().len()).sum()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A consumer with per-partition committed offsets (a one-member
/// "consumer group"): reads are repeatable until committed, which is
/// exactly the at-least-once contract Samza inherits from Kafka.
#[derive(Clone, Debug)]
pub struct Consumer {
    log: Log,
    offsets: Vec<u64>,
}

impl Consumer {
    /// A consumer starting at the log's beginning.
    pub fn new(log: &Log) -> Self {
        Self { log: log.clone(), offsets: vec![0; log.partitions()] }
    }

    /// Poll up to `max` records from one partition (does not advance the
    /// committed offset).
    pub fn poll(&self, partition: usize, max: usize) -> Vec<Record> {
        self.log.read(partition, self.offsets[partition], max)
    }

    /// Commit the offset after processing records up to `offset`
    /// exclusive.
    pub fn commit(&mut self, partition: usize, offset: u64) {
        self.offsets[partition] = offset;
    }

    /// Committed offset of a partition.
    pub fn committed(&self, partition: usize) -> u64 {
        self.offsets[partition]
    }

    /// Records remaining across all partitions.
    pub fn lag(&self) -> u64 {
        (0..self.log.partitions()).map(|p| self.log.end_offset(p) - self.offsets[p]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_read_round_trip() {
        let log = Log::new(4).unwrap();
        let (p, o) = log.append("user1", b"hello".to_vec());
        assert_eq!(o, 0);
        let recs = log.read(p, 0, 10);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].value, b"hello");
        assert_eq!(recs[0].key, "user1");
    }

    #[test]
    fn same_key_same_partition_ordered() {
        let log = Log::new(8).unwrap();
        for i in 0..100u32 {
            log.append("k", i.to_le_bytes().to_vec());
        }
        let p = log.partition_of("k");
        let recs = log.read(p, 0, 1000);
        assert_eq!(recs.len(), 100);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.offset, i as u64);
            assert_eq!(r.value, (i as u32).to_le_bytes().to_vec());
        }
    }

    #[test]
    fn keys_spread_over_partitions() {
        let log = Log::new(8).unwrap();
        for i in 0..1000u32 {
            log.append(&format!("k{i}"), vec![]);
        }
        let mut used = 0;
        for p in 0..8 {
            if log.end_offset(p) > 0 {
                used += 1;
            }
        }
        assert!(used >= 6, "only {used} partitions used");
    }

    #[test]
    fn consumer_replay_until_commit() {
        let log = Log::new(1).unwrap();
        for i in 0..5u8 {
            log.append("k", vec![i]);
        }
        let mut c = Consumer::new(&log);
        let batch1 = c.poll(0, 3);
        assert_eq!(batch1.len(), 3);
        // Crash before commit: poll again → same records (replay).
        let batch2 = c.poll(0, 3);
        assert_eq!(batch1, batch2);
        c.commit(0, 3);
        let batch3 = c.poll(0, 3);
        assert_eq!(batch3.len(), 2);
        assert_eq!(batch3[0].value, vec![3]);
        assert_eq!(c.lag(), 2);
    }

    #[test]
    fn clones_share_storage() {
        let log = Log::new(2).unwrap();
        let log2 = log.clone();
        log.append("a", vec![1]);
        assert_eq!(log2.len(), 1);
    }

    #[test]
    fn invalid_partitions() {
        assert!(Log::new(0).is_err());
    }
}
