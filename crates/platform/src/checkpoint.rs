//! MillWheel-style checkpointed state — the BigTable stand-in.
//!
//! MillWheel's exactly-once recipe: per-key state updates are committed
//! atomically *together with* the id of the record that produced them;
//! on replay, an already-seen id is a duplicate and is dropped. Both
//! halves are properties of the store interface (atomic commit, dedup
//! token set), reproduced here in-process (DESIGN.md §2).

use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::sync::Mutex;

/// Versioned per-key state with dedup tokens. Clones share storage.
#[derive(Clone, Debug, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<Inner>>,
}

/// Injected write-failure policy (chaos harness).
#[derive(Debug)]
struct CommitFaults {
    prob: f64,
    rng: SplitMix64,
}

#[derive(Debug, Default)]
struct Inner {
    /// key → (version, value bytes).
    state: HashMap<String, (u64, Vec<u8>)>,
    /// key → processed record ids at or above the key's watermark.
    seen: HashMap<String, HashSet<u64>>,
    /// key → low watermark: every id below it is known-processed, so the
    /// `seen` set only has to hold ids at or above it (MillWheel garbage-
    /// collects its dedup tokens the same way, by low watermark).
    watermarks: HashMap<String, u64>,
    commits: u64,
    duplicates: u64,
    faults: Option<CommitFaults>,
    failed_commits: u64,
}

impl Inner {
    fn is_duplicate(&self, key: &str, record_id: u64) -> bool {
        record_id < self.watermarks.get(key).copied().unwrap_or(0)
            || self.seen.get(key).is_some_and(|s| s.contains(&record_id))
    }
}

impl CheckpointStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a key's current `(version, value)`.
    pub fn get(&self, key: &str) -> Option<(u64, Vec<u8>)> {
        self.inner.lock().unwrap().state.get(key).cloned()
    }

    /// Atomically: if `record_id` was already committed for `key`,
    /// return `false` (duplicate — state unchanged); otherwise apply
    /// `update` to the current value, bump the version, remember the id,
    /// and return `true`.
    ///
    /// This is the MillWheel "strong production" primitive: state
    /// mutation and dedup-token insertion are one atomic step, so a
    /// crash between them is impossible.
    pub fn commit<F>(&self, key: &str, record_id: u64, update: F) -> bool
    where
        F: FnOnce(Option<&[u8]>) -> Vec<u8>,
    {
        let mut inner = self.inner.lock().unwrap();
        if inner.is_duplicate(key, record_id) {
            inner.duplicates += 1;
            return false;
        }
        inner.seen.entry(key.to_string()).or_default().insert(record_id);
        let current = inner.state.get(key).map(|(_, v)| v.clone());
        let new = update(current.as_deref());
        let version = inner.state.get(key).map_or(0, |(v, _)| *v) + 1;
        inner.state.insert(key.to_string(), (version, new));
        inner.commits += 1;
        true
    }

    /// Atomically commit a *batch* of record ids together with a full
    /// replacement `value` for `key`. Ids already seen are counted as
    /// duplicates; if at least one id is fresh, all fresh ids enter the
    /// dedup set and the value is installed in the same critical
    /// section. Returns the number of fresh ids applied (0 means the
    /// whole batch was a replay and the state is untouched).
    ///
    /// This is the operator layer's checkpoint primitive: a synopsis
    /// snapshot and the ids of every tuple folded into it land
    /// atomically, so a crash can never separate them.
    ///
    /// # Errors
    ///
    /// Fails only when [`CheckpointStore::inject_commit_failures`] is
    /// armed (the chaos harness's stand-in for a storage-backend write
    /// error). On `Err` nothing was mutated: no id entered the dedup
    /// set, the stored value and version are untouched — callers must
    /// keep their pending state and retry a later commit.
    pub fn commit_batch(&self, key: &str, record_ids: &[u64], value: Vec<u8>) -> Result<usize> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(f) = inner.faults.as_mut() {
            if f.prob > 0.0 && f.rng.bernoulli(f.prob) {
                inner.failed_commits += 1;
                return Err(SaError::Platform(format!(
                    "injected checkpoint write failure for key '{key}'"
                )));
            }
        }
        let fresh: Vec<u64> =
            record_ids.iter().copied().filter(|&id| !inner.is_duplicate(key, id)).collect();
        inner.duplicates += (record_ids.len() - fresh.len()) as u64;
        if fresh.is_empty() {
            return Ok(0);
        }
        let applied = fresh.len();
        inner.seen.entry(key.to_string()).or_default().extend(fresh);
        let version = inner.state.get(key).map_or(0, |(v, _)| *v) + 1;
        inner.state.insert(key.to_string(), (version, value));
        inner.commits += 1;
        Ok(applied)
    }

    /// Arm injected write failures: every later
    /// [`CheckpointStore::commit_batch`] call fails with probability
    /// `prob` (deterministically under `seed`). `prob <= 0` disarms.
    pub fn inject_commit_failures(&self, prob: f64, seed: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.faults = (prob > 0.0).then(|| CommitFaults { prob, rng: SplitMix64::new(seed) });
    }

    /// Commits rejected by injected write failures.
    pub fn failed_commits(&self) -> u64 {
        self.inner.lock().unwrap().failed_commits
    }

    /// Whether `record_id` has already been committed for `key` (either
    /// below the watermark or in the dedup set).
    pub fn is_seen(&self, key: &str, record_id: u64) -> bool {
        self.inner.lock().unwrap().is_duplicate(key, record_id)
    }

    /// Garbage-collect dedup tokens: raise `key`'s low watermark to
    /// `min_record_id` (never lowering it) and drop every stored token
    /// below it. Returns the number of tokens freed. Callers must only
    /// raise the watermark past ids that can no longer be replayed.
    pub fn gc(&self, key: &str, min_record_id: u64) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let wm = inner.watermarks.entry(key.to_string()).or_insert(0);
        if min_record_id <= *wm {
            return 0;
        }
        *wm = min_record_id;
        let Some(seen) = inner.seen.get_mut(key) else { return 0 };
        let before = seen.len();
        seen.retain(|&id| id >= min_record_id);
        before - seen.len()
    }

    /// Number of dedup tokens currently held for `key` (GC diagnostic).
    pub fn seen_tokens(&self, key: &str) -> usize {
        self.inner.lock().unwrap().seen.get(key).map_or(0, HashSet::len)
    }

    /// Unconditional (non-deduped) write, used by batch layers.
    pub fn put(&self, key: &str, value: Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        let version = inner.state.get(key).map_or(0, |(v, _)| *v) + 1;
        inner.state.insert(key.to_string(), (version, value));
        inner.commits += 1;
    }

    /// Snapshot of all keys (for serving-layer style scans).
    pub fn scan(&self) -> Vec<(String, Vec<u8>)> {
        self.inner.lock().unwrap().state.iter().map(|(k, (_, v))| (k.clone(), v.clone())).collect()
    }

    /// (commits, duplicates-dropped) counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.commits, inner.duplicates)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().state.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Helper: little-endian i64 counters stored in the value bytes.
pub fn counter_add(current: Option<&[u8]>, delta: i64) -> Vec<u8> {
    let cur = current.and_then(|b| b.try_into().ok()).map_or(0, i64::from_le_bytes);
    (cur + delta).to_le_bytes().to_vec()
}

/// Helper: read an i64 counter value.
pub fn counter_value(bytes: &[u8]) -> i64 {
    bytes.try_into().map_or(0, i64::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_applies_once_per_record_id() {
        let store = CheckpointStore::new();
        assert!(store.commit("k", 1, |c| counter_add(c, 5)));
        assert!(store.commit("k", 2, |c| counter_add(c, 3)));
        // Replay of record 1: dropped.
        assert!(!store.commit("k", 1, |c| counter_add(c, 5)));
        let (version, value) = store.get("k").unwrap();
        assert_eq!(version, 2);
        assert_eq!(counter_value(&value), 8);
        assert_eq!(store.stats(), (2, 1));
    }

    #[test]
    fn dedup_is_per_key() {
        let store = CheckpointStore::new();
        assert!(store.commit("a", 1, |c| counter_add(c, 1)));
        // Same record id on a different key is a different commit.
        assert!(store.commit("b", 1, |c| counter_add(c, 1)));
    }

    #[test]
    fn concurrent_commits_are_atomic() {
        let store = CheckpointStore::new();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    // Half the ids collide across threads → dedup.
                    let id = t * 1_000 + i;
                    s.commit("ctr", id / 2 + (t % 2) * 1_000_000, |c| counter_add(c, 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (_, value) = store.get("ctr").unwrap();
        let (commits, dups) = store.stats();
        assert_eq!(counter_value(&value) as u64, commits);
        assert_eq!(commits + dups, 8_000);
    }

    #[test]
    fn put_and_scan() {
        let store = CheckpointStore::new();
        store.put("x", vec![1]);
        store.put("y", vec![2]);
        store.put("x", vec![3]);
        assert_eq!(store.get("x").unwrap(), (2, vec![3]));
        let mut scan = store.scan();
        scan.sort();
        assert_eq!(scan.len(), 2);
    }

    #[test]
    fn commit_batch_is_atomic_and_dedups() {
        let store = CheckpointStore::new();
        assert_eq!(store.commit_batch("k", &[1, 2, 3], vec![10]).unwrap(), 3);
        // Overlapping replay: only the fresh id applies, value replaced.
        assert_eq!(store.commit_batch("k", &[2, 3, 4], vec![20]).unwrap(), 1);
        let (version, value) = store.get("k").unwrap();
        assert_eq!((version, value), (2, vec![20]));
        // Full replay: state untouched, no version bump.
        assert_eq!(store.commit_batch("k", &[1, 4], vec![99]).unwrap(), 0);
        assert_eq!(store.get("k").unwrap(), (2, vec![20]));
        let (commits, dups) = store.stats();
        assert_eq!((commits, dups), (2, 4));
    }

    /// A failed commit must mutate nothing: no dedup token, no value,
    /// no version bump — the atomicity half of the MillWheel contract
    /// under storage faults.
    #[test]
    fn injected_commit_failure_leaves_store_untouched() {
        let store = CheckpointStore::new();
        store.commit_batch("k", &[1, 2], vec![10]).unwrap();
        store.inject_commit_failures(1.0, 42);
        let err = store.commit_batch("k", &[3, 4], vec![20]).unwrap_err();
        assert!(format!("{err}").contains("checkpoint write failure"), "got: {err}");
        assert_eq!(store.failed_commits(), 1);
        assert_eq!(store.get("k").unwrap(), (1, vec![10]), "failed commit mutated state");
        assert!(!store.is_seen("k", 3), "failed commit leaked a dedup token");
        // Disarm: the retry commits everything, including the ids the
        // failed attempt carried.
        store.inject_commit_failures(0.0, 42);
        assert_eq!(store.commit_batch("k", &[3, 4], vec![20]).unwrap(), 2);
        assert_eq!(store.get("k").unwrap(), (2, vec![20]));
        assert_eq!(store.failed_commits(), 1, "disarmed store fails nothing");
    }

    #[test]
    fn gc_raises_watermark_and_frees_tokens() {
        let store = CheckpointStore::new();
        let ids: Vec<u64> = (0..100).collect();
        store.commit_batch("k", &ids, vec![1]).unwrap();
        assert_eq!(store.seen_tokens("k"), 100);
        assert_eq!(store.gc("k", 60), 60);
        assert_eq!(store.seen_tokens("k"), 40);
        // Ids below the watermark still count as duplicates...
        assert!(store.is_seen("k", 5));
        assert!(!store.commit("k", 5, |_| vec![2]));
        assert_eq!(store.commit_batch("k", &[10, 200], vec![3]).unwrap(), 1);
        // ...and the watermark never moves backwards.
        assert_eq!(store.gc("k", 30), 0);
        assert!(store.is_seen("k", 45));
        assert!(!store.is_seen("k", 150));
    }

    #[test]
    fn counter_helpers() {
        assert_eq!(counter_value(&counter_add(None, 7)), 7);
        let b = counter_add(Some(&5i64.to_le_bytes()), -2);
        assert_eq!(counter_value(&b), 3);
        assert_eq!(counter_value(&[1, 2]), 0, "malformed bytes read as 0");
    }
}
