//! MillWheel-style checkpointed state — the BigTable stand-in.
//!
//! MillWheel's exactly-once recipe: per-key state updates are committed
//! atomically *together with* the id of the record that produced them;
//! on replay, an already-seen id is a duplicate and is dropped. Both
//! halves are properties of the store interface (atomic commit, dedup
//! token set), reproduced here in-process (DESIGN.md §2).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::sync::Mutex;

/// Versioned per-key state with dedup tokens. Clones share storage.
#[derive(Clone, Debug, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    /// key → (version, value bytes).
    state: HashMap<String, (u64, Vec<u8>)>,
    /// key → processed record ids.
    seen: HashMap<String, HashSet<u64>>,
    commits: u64,
    duplicates: u64,
}

impl CheckpointStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a key's current `(version, value)`.
    pub fn get(&self, key: &str) -> Option<(u64, Vec<u8>)> {
        self.inner.lock().unwrap().state.get(key).cloned()
    }

    /// Atomically: if `record_id` was already committed for `key`,
    /// return `false` (duplicate — state unchanged); otherwise apply
    /// `update` to the current value, bump the version, remember the id,
    /// and return `true`.
    ///
    /// This is the MillWheel "strong production" primitive: state
    /// mutation and dedup-token insertion are one atomic step, so a
    /// crash between them is impossible.
    pub fn commit<F>(&self, key: &str, record_id: u64, update: F) -> bool
    where
        F: FnOnce(Option<&[u8]>) -> Vec<u8>,
    {
        let mut inner = self.inner.lock().unwrap();
        let seen = inner.seen.entry(key.to_string()).or_default();
        if !seen.insert(record_id) {
            inner.duplicates += 1;
            return false;
        }
        let current = inner.state.get(key).map(|(_, v)| v.clone());
        let new = update(current.as_deref());
        let version = inner.state.get(key).map_or(0, |(v, _)| *v) + 1;
        inner.state.insert(key.to_string(), (version, new));
        inner.commits += 1;
        true
    }

    /// Unconditional (non-deduped) write, used by batch layers.
    pub fn put(&self, key: &str, value: Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        let version = inner.state.get(key).map_or(0, |(v, _)| *v) + 1;
        inner.state.insert(key.to_string(), (version, value));
        inner.commits += 1;
    }

    /// Snapshot of all keys (for serving-layer style scans).
    pub fn scan(&self) -> Vec<(String, Vec<u8>)> {
        self.inner.lock().unwrap().state.iter().map(|(k, (_, v))| (k.clone(), v.clone())).collect()
    }

    /// (commits, duplicates-dropped) counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.commits, inner.duplicates)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().state.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Helper: little-endian i64 counters stored in the value bytes.
pub fn counter_add(current: Option<&[u8]>, delta: i64) -> Vec<u8> {
    let cur = current.and_then(|b| b.try_into().ok()).map_or(0, i64::from_le_bytes);
    (cur + delta).to_le_bytes().to_vec()
}

/// Helper: read an i64 counter value.
pub fn counter_value(bytes: &[u8]) -> i64 {
    bytes.try_into().map_or(0, i64::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_applies_once_per_record_id() {
        let store = CheckpointStore::new();
        assert!(store.commit("k", 1, |c| counter_add(c, 5)));
        assert!(store.commit("k", 2, |c| counter_add(c, 3)));
        // Replay of record 1: dropped.
        assert!(!store.commit("k", 1, |c| counter_add(c, 5)));
        let (version, value) = store.get("k").unwrap();
        assert_eq!(version, 2);
        assert_eq!(counter_value(&value), 8);
        assert_eq!(store.stats(), (2, 1));
    }

    #[test]
    fn dedup_is_per_key() {
        let store = CheckpointStore::new();
        assert!(store.commit("a", 1, |c| counter_add(c, 1)));
        // Same record id on a different key is a different commit.
        assert!(store.commit("b", 1, |c| counter_add(c, 1)));
    }

    #[test]
    fn concurrent_commits_are_atomic() {
        let store = CheckpointStore::new();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    // Half the ids collide across threads → dedup.
                    let id = t * 1_000 + i;
                    s.commit("ctr", id / 2 + (t % 2) * 1_000_000, |c| counter_add(c, 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (_, value) = store.get("ctr").unwrap();
        let (commits, dups) = store.stats();
        assert_eq!(counter_value(&value) as u64, commits);
        assert_eq!(commits + dups, 8_000);
    }

    #[test]
    fn put_and_scan() {
        let store = CheckpointStore::new();
        store.put("x", vec![1]);
        store.put("y", vec![2]);
        store.put("x", vec![3]);
        assert_eq!(store.get("x").unwrap(), (2, vec![3]));
        let mut scan = store.scan();
        scan.sort();
        assert_eq!(scan.len(), 2);
    }

    #[test]
    fn counter_helpers() {
        assert_eq!(counter_value(&counter_add(None, 7)), 7);
        let b = counter_add(Some(&5i64.to_le_bytes()), -2);
        assert_eq!(counter_value(&b), 3);
        assert_eq!(counter_value(&[1, 2]), 0, "malformed bytes read as 0");
    }
}
