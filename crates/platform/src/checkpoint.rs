//! MillWheel-style checkpointed state — the BigTable stand-in.
//!
//! MillWheel's exactly-once recipe: per-key state updates are committed
//! atomically *together with* the id of the record that produced them;
//! on replay, an already-seen id is a duplicate and is dropped. Both
//! halves are properties of the store interface (atomic commit, dedup
//! token set), reproduced here in-process (DESIGN.md §2).
//!
//! ## Durability
//!
//! [`CheckpointStore::durable`] backs the store with a CRC32-framed,
//! group-committed write-ahead log over any [`crate::storage::Storage`]
//! backend, plus atomic tmp-file + rename snapshot compaction. Every
//! mutation appends its WAL record *under the store's mutex, before it
//! touches memory* — so the WAL totally orders all state, and **any
//! prefix of it is a consistent store**. That is the prefix-consistency
//! argument that makes group commit safe: a crash may lose an un-synced
//! WAL suffix, but what recovers is exactly the store as of some earlier
//! committed point — the lost commits lost their dedup tokens *with*
//! their state, so upstream replay re-applies them cleanly. Recovery
//! loads the newest intact snapshot, then replays every surviving WAL
//! record onto it; a torn tail (crash mid-append) is truncated, and any
//! other CRC mismatch is a loud [`SaError::Corrupt`] — the store never
//! silently serves wrong state. The in-memory default
//! ([`CheckpointStore::new`]) is unchanged.

use crate::storage::{decode_frames, encode_frame, Storage, StorageStats, SyncPolicy, Wal};
use sa_core::codec::{ByteReader, ByteWriter};
use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::sync::Mutex;

/// WAL op: batch commit `{key, ids, value}`.
const OP_COMMIT: u8 = b'C';
/// WAL op: unconditional put `{key, value}`.
const OP_PUT: u8 = b'P';
/// WAL op: dedup-token GC `{key, min_record_id}`.
const OP_GC: u8 = b'G';
/// Snapshot payload tag.
const SNAP_TAG: u8 = b'S';

/// Versioned per-key state with dedup tokens. Clones share storage.
#[derive(Clone, Debug, Default)]
pub struct CheckpointStore {
    inner: Arc<Mutex<Inner>>,
}

/// Injected write-failure policy (chaos harness).
#[derive(Debug)]
struct CommitFaults {
    prob: f64,
    rng: SplitMix64,
}

/// Tuning for a durable store: fsync discipline, segment size, and how
/// often the WAL is compacted into a snapshot.
#[derive(Clone, Copy, Debug)]
pub struct DurableConfig {
    /// When appends reach media (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Roll the WAL to a new segment past this many bytes.
    pub segment_bytes: u64,
    /// Write a snapshot and drop covered segments every this many
    /// applied WAL records.
    pub snapshot_every: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        Self { sync: SyncPolicy::EveryN(32), segment_bytes: 4 << 20, snapshot_every: 8192 }
    }
}

/// Durability attachment: the WAL plus snapshot bookkeeping.
#[derive(Debug)]
struct Durable {
    wal: Wal,
    storage: Arc<dyn Storage>,
    dir: String,
    cfg: DurableConfig,
    stats: Arc<StorageStats>,
    /// Sequence number the next snapshot file will take.
    snap_seq: u64,
    /// Applied WAL records since the last snapshot.
    records_since_snap: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// key → (version, value bytes).
    state: HashMap<String, (u64, Vec<u8>)>,
    /// key → processed record ids at or above the key's watermark.
    seen: HashMap<String, HashSet<u64>>,
    /// key → low watermark: every id below it is known-processed, so the
    /// `seen` set only has to hold ids at or above it (MillWheel garbage-
    /// collects its dedup tokens the same way, by low watermark).
    watermarks: HashMap<String, u64>,
    commits: u64,
    duplicates: u64,
    faults: Option<CommitFaults>,
    failed_commits: u64,
    /// Present iff the store writes through a WAL.
    durable: Option<Durable>,
}

impl Inner {
    fn is_duplicate(&self, key: &str, record_id: u64) -> bool {
        record_id < self.watermarks.get(key).copied().unwrap_or(0)
            || self.seen.get(key).is_some_and(|s| s.contains(&record_id))
    }

    // -- pure in-memory mutations, shared by the live path and WAL
    // replay (replay MUST apply exactly what the live path applied) --

    fn apply_commit_batch(&mut self, key: &str, record_ids: &[u64], value: Vec<u8>) -> usize {
        let fresh: Vec<u64> =
            record_ids.iter().copied().filter(|&id| !self.is_duplicate(key, id)).collect();
        self.duplicates += (record_ids.len() - fresh.len()) as u64;
        if fresh.is_empty() {
            return 0;
        }
        let applied = fresh.len();
        self.seen.entry(key.to_string()).or_default().extend(fresh);
        let version = self.state.get(key).map_or(0, |(v, _)| *v) + 1;
        self.state.insert(key.to_string(), (version, value));
        self.commits += 1;
        applied
    }

    fn apply_put(&mut self, key: &str, value: Vec<u8>) {
        let version = self.state.get(key).map_or(0, |(v, _)| *v) + 1;
        self.state.insert(key.to_string(), (version, value));
        self.commits += 1;
    }

    fn apply_gc(&mut self, key: &str, min_record_id: u64) -> usize {
        let wm = self.watermarks.entry(key.to_string()).or_insert(0);
        if min_record_id <= *wm {
            return 0;
        }
        *wm = min_record_id;
        let Some(seen) = self.seen.get_mut(key) else { return 0 };
        let before = seen.len();
        seen.retain(|&id| id >= min_record_id);
        before - seen.len()
    }

    /// Apply one recovered WAL record.
    fn replay(&mut self, payload: &[u8]) -> Result<()> {
        let mut r = ByteReader::new(payload);
        match r.get_u8()? {
            OP_COMMIT => {
                let key = r.get_str()?;
                let n = r.get_len(8)?;
                let ids: Vec<u64> = (0..n).map(|_| r.get_u64()).collect::<Result<_>>()?;
                let value = r.get_bytes()?.to_vec();
                self.apply_commit_batch(&key, &ids, value);
            }
            OP_PUT => {
                let key = r.get_str()?;
                let value = r.get_bytes()?.to_vec();
                self.apply_put(&key, value);
            }
            OP_GC => {
                let key = r.get_str()?;
                let min = r.get_u64()?;
                self.apply_gc(&key, min);
            }
            op => {
                return Err(SaError::corrupt(format!("unknown checkpoint WAL op {op:#04x}")));
            }
        }
        Ok(())
    }

    /// Append a WAL record (durable stores only), counting it toward the
    /// next snapshot. Errors propagate with nothing applied to memory.
    fn wal_append(&mut self, record: &[u8]) -> Result<()> {
        if let Some(d) = self.durable.as_mut() {
            d.wal.append(record)?;
            d.records_since_snap += 1;
        }
        Ok(())
    }

    /// Compact when due. Compaction failure is swallowed: the threshold
    /// stays exceeded, so the very next record retries it — state and
    /// WAL remain correct either way (recovery deletes stale artifacts).
    fn maybe_compact(&mut self) {
        let due = self
            .durable
            .as_ref()
            .is_some_and(|d| d.records_since_snap >= d.cfg.snapshot_every.max(1));
        if due {
            let _ = self.compact();
        }
    }

    /// Write a snapshot of the full state, atomically publish it
    /// (tmp-file + rename), then drop the WAL segments it covers.
    fn compact(&mut self) -> Result<()> {
        let Inner { state, seen, watermarks, commits, duplicates, failed_commits, durable, .. } =
            self;
        let Some(d) = durable.as_mut() else { return Ok(()) };
        // Everything applied so far lives in segments ≤ the active one;
        // after the snapshot they are all covered.
        let covered_seq = d.wal.active_seq();
        let mut w = ByteWriter::with_capacity(1024);
        w.tag(SNAP_TAG);
        w.put_u64(covered_seq + 1); // min live WAL segment after this snapshot
        w.put_u64(*commits).put_u64(*duplicates).put_u64(*failed_commits);
        w.put_u64(state.len() as u64);
        for (k, (ver, val)) in state.iter() {
            w.put_str(k).put_u64(*ver).put_bytes(val);
        }
        w.put_u64(seen.len() as u64);
        for (k, ids) in seen.iter() {
            w.put_str(k).put_u64(ids.len() as u64);
            for &id in ids.iter() {
                w.put_u64(id);
            }
        }
        w.put_u64(watermarks.len() as u64);
        for (k, wm) in watermarks.iter() {
            w.put_str(k).put_u64(*wm);
        }
        let framed = encode_frame(&w.finish());
        let seq = d.snap_seq;
        let tmp = format!("{}/ckpt-{seq:06}.tmp", d.dir);
        let snap = format!("{}/ckpt-{seq:06}.snap", d.dir);
        d.stats.bytes_written.fetch_add(framed.len() as u64, std::sync::atomic::Ordering::Relaxed);
        d.storage.write(&tmp, &framed)?;
        d.storage.sync(&tmp)?;
        d.stats.fsyncs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        d.storage.rename(&tmp, &snap)?;
        // The snapshot is the recovery root now: older snapshots and
        // covered segments are garbage (best-effort — recovery also
        // skips them if a crash lands here).
        d.snap_seq += 1;
        d.records_since_snap = 0;
        for name in d.storage.list(&format!("{}/ckpt-", d.dir))? {
            if let Some(s) = snap_file_seq(&name, &d.dir) {
                if s < seq {
                    d.storage.remove(&name)?;
                }
            }
        }
        d.wal.reset_through(covered_seq)?;
        Ok(())
    }
}

/// Parse `{dir}/ckpt-{seq:06}.snap` → seq.
fn snap_file_seq(name: &str, dir: &str) -> Option<u64> {
    name.strip_prefix(dir)?.strip_prefix("/ckpt-")?.strip_suffix(".snap")?.parse().ok()
}

/// Decode a snapshot payload into `inner`, returning the minimum live
/// WAL segment sequence it records.
fn decode_snapshot(payload: &[u8], inner: &mut Inner) -> Result<u64> {
    let mut r = ByteReader::new(payload);
    r.expect_tag(SNAP_TAG, "checkpoint snapshot")?;
    let min_seq = r.get_u64()?;
    inner.commits = r.get_u64()?;
    inner.duplicates = r.get_u64()?;
    inner.failed_commits = r.get_u64()?;
    let n = r.get_len(1)?;
    for _ in 0..n {
        let key = r.get_str()?;
        let ver = r.get_u64()?;
        let val = r.get_bytes()?.to_vec();
        inner.state.insert(key, (ver, val));
    }
    let n = r.get_len(1)?;
    for _ in 0..n {
        let key = r.get_str()?;
        let m = r.get_len(8)?;
        let ids: HashSet<u64> = (0..m).map(|_| r.get_u64()).collect::<Result<_>>()?;
        inner.seen.insert(key, ids);
    }
    let n = r.get_len(1)?;
    for _ in 0..n {
        let key = r.get_str()?;
        let wm = r.get_u64()?;
        inner.watermarks.insert(key, wm);
    }
    r.finish()?;
    Ok(min_seq)
}

impl CheckpointStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open (or recover) a durable store under `{dir}` of `storage`.
    ///
    /// Recovery: load the newest intact snapshot (CRC-verified; a
    /// mismatch is a loud [`SaError::Corrupt`]), delete stale artifacts
    /// a crash mid-compaction may have left (`.tmp` files, covered
    /// segments, older snapshots), then replay every surviving WAL
    /// record onto it — truncating a torn tail of the final segment.
    pub fn durable(storage: Arc<dyn Storage>, dir: &str, cfg: DurableConfig) -> Result<Self> {
        let stats = Arc::new(StorageStats::default());
        let mut inner = Inner::default();
        let mut min_seq = 0u64;
        let mut snap_seq = 0u64;
        let mut newest: Option<(u64, String)> = None;
        for name in storage.list(&format!("{dir}/ckpt-"))? {
            if name.ends_with(".tmp") {
                storage.remove(&name)?; // crash between write and rename
            } else if let Some(seq) = snap_file_seq(&name, dir) {
                if newest.as_ref().is_none_or(|(s, _)| seq > *s) {
                    newest = Some((seq, name));
                }
            }
        }
        if let Some((seq, name)) = newest {
            let bytes = storage.read(&name)?;
            let scan = decode_frames(&bytes, false)
                .map_err(|e| SaError::corrupt(format!("snapshot {name}: {e}")))?;
            let [payload] = scan.payloads.as_slice() else {
                return Err(SaError::corrupt(format!(
                    "snapshot {name}: expected 1 frame, found {}",
                    scan.payloads.len()
                )));
            };
            min_seq = decode_snapshot(payload, &mut inner)
                .map_err(|e| SaError::corrupt(format!("snapshot {name}: {e}")))?;
            snap_seq = seq + 1;
        }
        let rec = Wal::open(
            storage.clone(),
            dir,
            "wal-",
            min_seq,
            cfg.sync,
            cfg.segment_bytes,
            stats.clone(),
        )?;
        for payload in &rec.payloads {
            inner.replay(payload)?;
        }
        inner.durable = Some(Durable {
            wal: rec.wal,
            storage,
            dir: dir.to_string(),
            cfg,
            stats,
            snap_seq,
            records_since_snap: 0,
        });
        Ok(Self { inner: Arc::new(Mutex::new(inner)) })
    }

    /// The durable backend's I/O counters (`None` on in-memory stores).
    pub fn storage_stats(&self) -> Option<Arc<StorageStats>> {
        self.inner.lock().unwrap().durable.as_ref().map(|d| Arc::clone(&d.stats))
    }

    /// Flush any group-committed WAL suffix to media (no-op in-memory).
    pub fn sync(&self) -> Result<()> {
        match self.inner.lock().unwrap().durable.as_mut() {
            Some(d) => d.wal.sync(),
            None => Ok(()),
        }
    }

    /// Force snapshot compaction now (no-op in-memory).
    pub fn compact(&self) -> Result<()> {
        self.inner.lock().unwrap().compact()
    }

    /// Read a key's current `(version, value)`.
    pub fn get(&self, key: &str) -> Option<(u64, Vec<u8>)> {
        self.inner.lock().unwrap().state.get(key).cloned()
    }

    /// Atomically: if `record_id` was already committed for `key`,
    /// return `false` (duplicate — state unchanged); otherwise apply
    /// `update` to the current value, bump the version, remember the id,
    /// and return `true`.
    ///
    /// This is the MillWheel "strong production" primitive: state
    /// mutation and dedup-token insertion are one atomic step, so a
    /// crash between them is impossible.
    pub fn commit<F>(&self, key: &str, record_id: u64, update: F) -> bool
    where
        F: FnOnce(Option<&[u8]>) -> Vec<u8>,
    {
        self.try_commit(key, record_id, update).expect("durable checkpoint commit failed")
    }

    /// [`CheckpointStore::commit`] with storage errors surfaced instead
    /// of panicking — the form durable callers should use. On `Err`
    /// nothing was mutated (the WAL append repairs its own torn tail),
    /// and a transient error is safe to retry.
    pub fn try_commit<F>(&self, key: &str, record_id: u64, update: F) -> Result<bool>
    where
        F: FnOnce(Option<&[u8]>) -> Vec<u8>,
    {
        let mut inner = self.inner.lock().unwrap();
        if inner.is_duplicate(key, record_id) {
            inner.duplicates += 1;
            return Ok(false);
        }
        let current = inner.state.get(key).map(|(_, v)| v.clone());
        let new = update(current.as_deref());
        if inner.durable.is_some() {
            let mut w = ByteWriter::with_capacity(32 + key.len() + new.len());
            w.tag(OP_COMMIT).put_str(key).put_u64(1).put_u64(record_id).put_bytes(&new);
            inner.wal_append(&w.finish())?;
        }
        inner.apply_commit_batch(key, &[record_id], new);
        inner.maybe_compact();
        Ok(true)
    }

    /// Atomically commit a *batch* of record ids together with a full
    /// replacement `value` for `key`. Ids already seen are counted as
    /// duplicates; if at least one id is fresh, all fresh ids enter the
    /// dedup set and the value is installed in the same critical
    /// section. Returns the number of fresh ids applied (0 means the
    /// whole batch was a replay and the state is untouched).
    ///
    /// This is the operator layer's checkpoint primitive: a synopsis
    /// snapshot and the ids of every tuple folded into it land
    /// atomically, so a crash can never separate them.
    ///
    /// # Errors
    ///
    /// Fails on a storage-backend write error (durable stores — a
    /// transient [`SaError::Io`] is safe to retry) or when
    /// [`CheckpointStore::inject_commit_failures`] is armed (the chaos
    /// harness's in-memory stand-in for one). On `Err` nothing was
    /// mutated: no id entered the dedup set, the stored value and
    /// version are untouched — callers must keep their pending state
    /// and retry a later commit.
    pub fn commit_batch(&self, key: &str, record_ids: &[u64], value: Vec<u8>) -> Result<usize> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(f) = inner.faults.as_mut() {
            if f.prob > 0.0 && f.rng.bernoulli(f.prob) {
                inner.failed_commits += 1;
                return Err(SaError::io_transient(format!(
                    "injected checkpoint write failure for key '{key}'"
                )));
            }
        }
        // A pure replay touches no state, so it writes no WAL record.
        let any_fresh = record_ids.iter().any(|&id| !inner.is_duplicate(key, id));
        if any_fresh && inner.durable.is_some() {
            let mut w = ByteWriter::with_capacity(32 + key.len() + value.len());
            w.tag(OP_COMMIT).put_str(key).put_u64(record_ids.len() as u64);
            for &id in record_ids {
                w.put_u64(id);
            }
            w.put_bytes(&value);
            if let Err(e) = inner.wal_append(&w.finish()) {
                inner.failed_commits += 1;
                return Err(e);
            }
        }
        let applied = inner.apply_commit_batch(key, record_ids, value);
        if applied > 0 {
            inner.maybe_compact();
        }
        Ok(applied)
    }

    /// Arm injected write failures: every later
    /// [`CheckpointStore::commit_batch`] call fails with probability
    /// `prob` (deterministically under `seed`). `prob <= 0` disarms.
    pub fn inject_commit_failures(&self, prob: f64, seed: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.faults = (prob > 0.0).then(|| CommitFaults { prob, rng: SplitMix64::new(seed) });
    }

    /// Commits rejected by injected write failures.
    pub fn failed_commits(&self) -> u64 {
        self.inner.lock().unwrap().failed_commits
    }

    /// Whether `record_id` has already been committed for `key` (either
    /// below the watermark or in the dedup set).
    pub fn is_seen(&self, key: &str, record_id: u64) -> bool {
        self.inner.lock().unwrap().is_duplicate(key, record_id)
    }

    /// Garbage-collect dedup tokens: raise `key`'s low watermark to
    /// `min_record_id` (never lowering it) and drop every stored token
    /// below it. Returns the number of tokens freed. Callers must only
    /// raise the watermark past ids that can no longer be replayed.
    pub fn gc(&self, key: &str, min_record_id: u64) -> usize {
        let mut inner = self.inner.lock().unwrap();
        if min_record_id <= inner.watermarks.get(key).copied().unwrap_or(0) {
            return 0;
        }
        if inner.durable.is_some() {
            let mut w = ByteWriter::with_capacity(24 + key.len());
            w.tag(OP_GC).put_str(key).put_u64(min_record_id);
            // GC is an optimization: on a transient storage error, skip
            // it (dedup stays correct, just larger) rather than fail.
            if inner.wal_append(&w.finish()).is_err() {
                return 0;
            }
        }
        let freed = inner.apply_gc(key, min_record_id);
        inner.maybe_compact();
        freed
    }

    /// Number of dedup tokens currently held for `key` (GC diagnostic).
    pub fn seen_tokens(&self, key: &str) -> usize {
        self.inner.lock().unwrap().seen.get(key).map_or(0, HashSet::len)
    }

    /// Unconditional (non-deduped) write, used by batch layers.
    pub fn put(&self, key: &str, value: Vec<u8>) {
        self.try_put(key, value).expect("durable checkpoint put failed")
    }

    /// [`CheckpointStore::put`] with storage errors surfaced instead of
    /// panicking.
    pub fn try_put(&self, key: &str, value: Vec<u8>) -> Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.durable.is_some() {
            let mut w = ByteWriter::with_capacity(24 + key.len() + value.len());
            w.tag(OP_PUT).put_str(key).put_bytes(&value);
            inner.wal_append(&w.finish())?;
        }
        inner.apply_put(key, value);
        inner.maybe_compact();
        Ok(())
    }

    /// Snapshot of all keys (for serving-layer style scans).
    pub fn scan(&self) -> Vec<(String, Vec<u8>)> {
        self.inner.lock().unwrap().state.iter().map(|(k, (_, v))| (k.clone(), v.clone())).collect()
    }

    /// (commits, duplicates-dropped) counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.commits, inner.duplicates)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().state.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Helper: little-endian i64 counters stored in the value bytes.
pub fn counter_add(current: Option<&[u8]>, delta: i64) -> Vec<u8> {
    let cur = current.and_then(|b| b.try_into().ok()).map_or(0, i64::from_le_bytes);
    (cur + delta).to_le_bytes().to_vec()
}

/// Helper: read an i64 counter value.
pub fn counter_value(bytes: &[u8]) -> i64 {
    bytes.try_into().map_or(0, i64::from_le_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_applies_once_per_record_id() {
        let store = CheckpointStore::new();
        assert!(store.commit("k", 1, |c| counter_add(c, 5)));
        assert!(store.commit("k", 2, |c| counter_add(c, 3)));
        // Replay of record 1: dropped.
        assert!(!store.commit("k", 1, |c| counter_add(c, 5)));
        let (version, value) = store.get("k").unwrap();
        assert_eq!(version, 2);
        assert_eq!(counter_value(&value), 8);
        assert_eq!(store.stats(), (2, 1));
    }

    #[test]
    fn dedup_is_per_key() {
        let store = CheckpointStore::new();
        assert!(store.commit("a", 1, |c| counter_add(c, 1)));
        // Same record id on a different key is a different commit.
        assert!(store.commit("b", 1, |c| counter_add(c, 1)));
    }

    #[test]
    fn concurrent_commits_are_atomic() {
        let store = CheckpointStore::new();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    // Half the ids collide across threads → dedup.
                    let id = t * 1_000 + i;
                    s.commit("ctr", id / 2 + (t % 2) * 1_000_000, |c| counter_add(c, 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (_, value) = store.get("ctr").unwrap();
        let (commits, dups) = store.stats();
        assert_eq!(counter_value(&value) as u64, commits);
        assert_eq!(commits + dups, 8_000);
    }

    #[test]
    fn put_and_scan() {
        let store = CheckpointStore::new();
        store.put("x", vec![1]);
        store.put("y", vec![2]);
        store.put("x", vec![3]);
        assert_eq!(store.get("x").unwrap(), (2, vec![3]));
        let mut scan = store.scan();
        scan.sort();
        assert_eq!(scan.len(), 2);
    }

    #[test]
    fn commit_batch_is_atomic_and_dedups() {
        let store = CheckpointStore::new();
        assert_eq!(store.commit_batch("k", &[1, 2, 3], vec![10]).unwrap(), 3);
        // Overlapping replay: only the fresh id applies, value replaced.
        assert_eq!(store.commit_batch("k", &[2, 3, 4], vec![20]).unwrap(), 1);
        let (version, value) = store.get("k").unwrap();
        assert_eq!((version, value), (2, vec![20]));
        // Full replay: state untouched, no version bump.
        assert_eq!(store.commit_batch("k", &[1, 4], vec![99]).unwrap(), 0);
        assert_eq!(store.get("k").unwrap(), (2, vec![20]));
        let (commits, dups) = store.stats();
        assert_eq!((commits, dups), (2, 4));
    }

    /// A failed commit must mutate nothing: no dedup token, no value,
    /// no version bump — the atomicity half of the MillWheel contract
    /// under storage faults.
    #[test]
    fn injected_commit_failure_leaves_store_untouched() {
        let store = CheckpointStore::new();
        store.commit_batch("k", &[1, 2], vec![10]).unwrap();
        store.inject_commit_failures(1.0, 42);
        let err = store.commit_batch("k", &[3, 4], vec![20]).unwrap_err();
        assert!(format!("{err}").contains("checkpoint write failure"), "got: {err}");
        assert_eq!(store.failed_commits(), 1);
        assert_eq!(store.get("k").unwrap(), (1, vec![10]), "failed commit mutated state");
        assert!(!store.is_seen("k", 3), "failed commit leaked a dedup token");
        // Disarm: the retry commits everything, including the ids the
        // failed attempt carried.
        store.inject_commit_failures(0.0, 42);
        assert_eq!(store.commit_batch("k", &[3, 4], vec![20]).unwrap(), 2);
        assert_eq!(store.get("k").unwrap(), (2, vec![20]));
        assert_eq!(store.failed_commits(), 1, "disarmed store fails nothing");
    }

    #[test]
    fn gc_raises_watermark_and_frees_tokens() {
        let store = CheckpointStore::new();
        let ids: Vec<u64> = (0..100).collect();
        store.commit_batch("k", &ids, vec![1]).unwrap();
        assert_eq!(store.seen_tokens("k"), 100);
        assert_eq!(store.gc("k", 60), 60);
        assert_eq!(store.seen_tokens("k"), 40);
        // Ids below the watermark still count as duplicates...
        assert!(store.is_seen("k", 5));
        assert!(!store.commit("k", 5, |_| vec![2]));
        assert_eq!(store.commit_batch("k", &[10, 200], vec![3]).unwrap(), 1);
        // ...and the watermark never moves backwards.
        assert_eq!(store.gc("k", 30), 0);
        assert!(store.is_seen("k", 45));
        assert!(!store.is_seen("k", 150));
    }

    #[test]
    fn counter_helpers() {
        assert_eq!(counter_value(&counter_add(None, 7)), 7);
        let b = counter_add(Some(&5i64.to_le_bytes()), -2);
        assert_eq!(counter_value(&b), 3);
        assert_eq!(counter_value(&[1, 2]), 0, "malformed bytes read as 0");
    }

    // -- durability --

    use crate::storage::{FaultyStorage, MemStorage, Storage, StorageFaults};

    fn mem() -> Arc<dyn Storage> {
        Arc::new(MemStorage::new())
    }

    fn fast_cfg() -> DurableConfig {
        DurableConfig { sync: SyncPolicy::Always, segment_bytes: 1 << 16, snapshot_every: u64::MAX }
    }

    /// Full state — commits, dedup tokens, watermarks, puts — survives
    /// a reopen against the same storage.
    #[test]
    fn durable_store_recovers_full_state() {
        let storage = mem();
        {
            let store = CheckpointStore::durable(storage.clone(), "ckpt", fast_cfg()).unwrap();
            store.commit_batch("a", &[1, 2, 3], vec![10]).unwrap();
            store.commit_batch("a", &[2, 4], vec![20]).unwrap();
            assert!(store.commit("b", 7, |c| counter_add(c, 5)));
            store.put("c", vec![30]);
            store.gc("a", 3);
        }
        let store = CheckpointStore::durable(storage, "ckpt", fast_cfg()).unwrap();
        assert_eq!(store.get("a").unwrap(), (2, vec![20]));
        assert_eq!(counter_value(&store.get("b").unwrap().1), 5);
        assert_eq!(store.get("c").unwrap(), (1, vec![30]));
        // Dedup state survives: replayed ids are still duplicates...
        assert_eq!(store.commit_batch("a", &[1, 2, 3, 4], vec![99]).unwrap(), 0);
        assert!(!store.commit("b", 7, |c| counter_add(c, 5)));
        // ...including below the recovered GC watermark.
        assert!(store.is_seen("a", 0));
        assert_eq!(store.seen_tokens("a"), 2, "tokens below watermark 3 stay dropped");
    }

    /// Compaction (snapshot + segment GC) preserves state and dedup, and
    /// actually removes covered WAL segments.
    #[test]
    fn durable_store_compacts_and_recovers_from_snapshot() {
        let storage = mem();
        let cfg = DurableConfig {
            sync: SyncPolicy::EveryN(4),
            segment_bytes: 256, // force frequent rolls
            snapshot_every: 10,
        };
        {
            let store = CheckpointStore::durable(storage.clone(), "d", cfg).unwrap();
            for i in 0..100u64 {
                store.commit_batch(&format!("k{}", i % 7), &[i], vec![i as u8]).unwrap();
            }
            store.sync().unwrap();
        }
        let snaps: Vec<String> =
            storage.list("d/ckpt-").unwrap().into_iter().filter(|n| n.ends_with(".snap")).collect();
        assert_eq!(snaps.len(), 1, "exactly one live snapshot: {snaps:?}");
        let store = CheckpointStore::durable(storage.clone(), "d", cfg).unwrap();
        for i in 0..100u64 {
            assert!(store.is_seen(&format!("k{}", i % 7), i), "id {i} lost");
        }
        let (commits, _) = store.stats();
        assert_eq!(commits, 100);
        // Forced compaction drops all live segments.
        store.compact().unwrap();
        let wals = storage.list("d/wal-").unwrap();
        assert!(wals.is_empty(), "covered segments must be deleted: {wals:?}");
        drop(store);
        let store = CheckpointStore::durable(storage, "d", cfg).unwrap();
        assert!(store.is_seen("k3", 3));
    }

    /// A torn WAL tail (crash mid-append) is truncated at recovery; the
    /// store comes back as the consistent prefix.
    #[test]
    fn durable_store_truncates_torn_tail() {
        let storage = mem();
        {
            let store = CheckpointStore::durable(storage.clone(), "t", fast_cfg()).unwrap();
            store.commit_batch("k", &[1], vec![1]).unwrap();
            store.commit_batch("k", &[2], vec![2]).unwrap();
        }
        // Simulate the crash: garbage half-frame at the tail.
        storage.append("t/wal-000000.wal", &[200, 1, 0, 0, 9, 9]).unwrap();
        let store = CheckpointStore::durable(storage, "t", fast_cfg()).unwrap();
        assert_eq!(store.get("k").unwrap(), (2, vec![2]));
        assert_eq!(store.storage_stats().unwrap().totals().2, 1, "repair counted");
    }

    /// Mid-stream corruption (bit rot, not a torn tail) is a loud typed
    /// error — never a silently wrong store.
    #[test]
    fn durable_store_rejects_corrupt_wal_and_snapshot() {
        let storage = mem();
        {
            let store = CheckpointStore::durable(storage.clone(), "c", fast_cfg()).unwrap();
            store.commit_batch("k", &[1], vec![1]).unwrap();
            store.commit_batch("k", &[2], vec![2]).unwrap();
        }
        let mut bytes = storage.read("c/wal-000000.wal").unwrap();
        let mid = bytes.len() / 4;
        bytes[mid] ^= 0x40;
        storage.write("c/wal-000000.wal", &bytes).unwrap();
        let err = CheckpointStore::durable(storage.clone(), "c", fast_cfg()).unwrap_err();
        assert!(matches!(err, SaError::Corrupt(_)), "got {err}");
        // Same discipline for snapshots.
        let storage2 = mem();
        {
            let store = CheckpointStore::durable(storage2.clone(), "s", fast_cfg()).unwrap();
            store.put("k", vec![1]);
            store.compact().unwrap();
        }
        let snap = storage2.list("s/ckpt-").unwrap().pop().unwrap();
        let mut bytes = storage2.read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        storage2.write(&snap, &bytes).unwrap();
        let err = CheckpointStore::durable(storage2, "s", fast_cfg()).unwrap_err();
        assert!(matches!(err, SaError::Corrupt(_)), "got {err}");
    }

    /// A torn append through `FaultyStorage` fails the commit cleanly:
    /// nothing applied, tail repaired, and the retry both succeeds and
    /// recovers.
    #[test]
    fn durable_store_survives_torn_appends_with_retry() {
        let inner_storage = mem();
        let faulty = Arc::new(FaultyStorage::new(
            inner_storage.clone(),
            StorageFaults::new(77).torn_appends(0.5),
        ));
        let store = CheckpointStore::durable(faulty, "f", fast_cfg()).unwrap();
        let mut failures = 0u32;
        for i in 0..50u64 {
            // Bounded retry: transient torn appends eventually land.
            let mut tries = 0;
            loop {
                match store.commit_batch("k", &[i], vec![i as u8]) {
                    Ok(n) => {
                        assert_eq!(n, 1, "id {i}: failed attempt must not leak a dedup token");
                        break;
                    }
                    Err(e) if e.is_transient() && tries < 64 => {
                        tries += 1;
                        failures += 1;
                    }
                    Err(e) => panic!("id {i}: {e}"),
                }
            }
        }
        assert!(failures > 0, "the fault plan must have fired");
        drop(store);
        // Recovery over the healthy inner storage sees all 50 commits.
        let store = CheckpointStore::durable(inner_storage, "f", fast_cfg()).unwrap();
        for i in 0..50u64 {
            assert!(store.is_seen("k", i), "id {i} lost after torn-append retries");
        }
        let (commits, _) = store.stats();
        assert_eq!(commits, 50);
    }

    /// Group commit (`EveryN`) fsyncs far less than `Always` for the
    /// same workload — the durability dial T2.K quantifies.
    #[test]
    fn group_commit_reduces_fsyncs() {
        let run = |sync: SyncPolicy| {
            let storage = mem();
            let cfg = DurableConfig { sync, segment_bytes: 1 << 20, snapshot_every: u64::MAX };
            let store = CheckpointStore::durable(storage, "g", cfg).unwrap();
            for i in 0..64u64 {
                store.commit_batch("k", &[i], vec![0]).unwrap();
            }
            store.sync().unwrap();
            store.storage_stats().unwrap().totals().0
        };
        assert_eq!(run(SyncPolicy::Always), 64);
        assert_eq!(run(SyncPolicy::EveryN(16)), 4);
    }
}
