//! Columnar batches: the zero-copy data plane's struct-of-arrays
//! carrier (DESIGN.md §10).
//!
//! A [`Frame`] is a run of tuples pivoted into one vector per field
//! position (struct-of-arrays), with the per-tuple routing metadata
//! (`id`, `root`, `lineage`, `event_time`) kept in parallel arrays.
//! The executor builds one at batch-ship time on links whose consumer
//! opted in (`Bolt::wants_frames`), which buys the consumer:
//!
//! * **per-column hashing, once per batch** — [`Frame::column_hashes`]
//!   computes the [`Value::hash64`]-identical hash of every row in a
//!   column in one pass over a reusable hasher (no per-item buffer
//!   allocation, unlike per-`Value` hashing) and caches the result, so
//!   a sketch fed by `insert_hashes` never re-hashes;
//! * **branch-light bulk updates** — sketches iterate a typed column
//!   slice instead of matching a `Value` enum per row;
//! * **no row materialisation** — the frame is consumed in place; rows
//!   are only rebuilt ([`Frame::to_batch`]) when the consumer falls
//!   back to the row path.
//!
//! Frames are internally reference-counted: cloning one shares the
//! columns.
//!
//! # Uniformity
//!
//! A frame requires a uniform schema: every tuple the same arity,
//! every column a single [`Value`] discriminant, arity ≥ 1.
//! [`Frame::from_batch`] rejects anything else and hands the batch
//! back, so mixed-schema links silently stay on the row path —
//! opting in is a pure optimisation, never a constraint.

use crate::tuple::{Batch, Tuple, Value};
use sa_core::hash::{mix64, XxHasher};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// One column of a [`Frame`]: all rows' values at one field position.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// 64-bit signed integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Interned strings (shared with the source tuples).
    Str(Vec<Arc<str>>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Interned byte payloads (shared with the source tuples).
    Bytes(Vec<Arc<[u8]>>),
}

impl ColumnData {
    fn with_capacity(template: &Value, n: usize) -> Self {
        match template {
            Value::Int(_) => ColumnData::Int(Vec::with_capacity(n)),
            Value::Float(_) => ColumnData::Float(Vec::with_capacity(n)),
            Value::Str(_) => ColumnData::Str(Vec::with_capacity(n)),
            Value::Bool(_) => ColumnData::Bool(Vec::with_capacity(n)),
            Value::Bytes(_) => ColumnData::Bytes(Vec::with_capacity(n)),
        }
    }

    /// Append one value; the caller has already checked the discriminant.
    fn push(&mut self, v: &Value) {
        match (self, v) {
            (ColumnData::Int(c), Value::Int(x)) => c.push(*x),
            (ColumnData::Float(c), Value::Float(x)) => c.push(*x),
            (ColumnData::Str(c), Value::Str(x)) => c.push(x.clone()),
            (ColumnData::Bool(c), Value::Bool(x)) => c.push(*x),
            (ColumnData::Bytes(c), Value::Bytes(x)) => c.push(x.clone()),
            _ => unreachable!("from_batch validated column discriminants"),
        }
    }

    /// The value at `row`, as a [`Value`] (payload shared, not copied).
    pub fn value(&self, row: usize) -> Value {
        match self {
            ColumnData::Int(c) => Value::Int(c[row]),
            ColumnData::Float(c) => Value::Float(c[row]),
            ColumnData::Str(c) => Value::Str(c[row].clone()),
            ColumnData::Bool(c) => Value::Bool(c[row]),
            ColumnData::Bytes(c) => Value::Bytes(c[row].clone()),
        }
    }

    /// [`Value::hash64`] of every row, computed with one reusable
    /// hasher (no per-item allocation).
    fn hashes(&self) -> Vec<u64> {
        match self {
            ColumnData::Int(c) => c.iter().map(|&x| mix64(x as u64 ^ 0x11)).collect(),
            ColumnData::Float(c) => c.iter().map(|x| mix64(x.to_bits() ^ 0x22)).collect(),
            ColumnData::Bool(c) => c.iter().map(|&b| mix64(u64::from(b) ^ 0x44)).collect(),
            ColumnData::Str(c) => {
                let mut h = XxHasher::with_seed(0x33);
                c.iter()
                    .map(|s| {
                        h.reset(0x33);
                        (**s).hash(&mut h);
                        h.finish()
                    })
                    .collect()
            }
            ColumnData::Bytes(c) => {
                let mut h = XxHasher::with_seed(0x55);
                c.iter()
                    .map(|b| {
                        h.reset(0x55);
                        (**b).hash(&mut h);
                        h.finish()
                    })
                    .collect()
            }
        }
    }

    /// Typed view of a string column (`None` for other types).
    pub fn as_strs(&self) -> Option<&[Arc<str>]> {
        match self {
            ColumnData::Str(c) => Some(c),
            _ => None,
        }
    }

    /// Typed view of an integer column (`None` for other types).
    pub fn as_ints(&self) -> Option<&[i64]> {
        match self {
            ColumnData::Int(c) => Some(c),
            _ => None,
        }
    }

    /// Typed view of a float column (`None` for other types).
    pub fn as_floats(&self) -> Option<&[f64]> {
        match self {
            ColumnData::Float(c) => Some(c),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct FrameInner {
    columns: Vec<ColumnData>,
    event_times: Vec<Option<u64>>,
    ids: Vec<u64>,
    roots: Vec<u64>,
    lineages: Vec<u64>,
    /// Lazily computed, cached per-column `Value::hash64` runs.
    hashes: Vec<OnceLock<Vec<u64>>>,
    len: usize,
}

/// A columnar batch (see the module docs). Clone-cheap: clones share
/// the columns and metadata.
#[derive(Clone, Debug)]
pub struct Frame {
    inner: Arc<FrameInner>,
}

impl Frame {
    /// Pivot a row batch into a frame. Fails — handing the batch back
    /// untouched — when the batch is empty, tuples disagree on arity,
    /// or a column mixes [`Value`] discriminants.
    pub fn from_batch(batch: Batch) -> Result<Frame, Batch> {
        let Some(first) = batch.first() else { return Err(batch) };
        let arity = first.values.len();
        if arity == 0 {
            return Err(batch);
        }
        let uniform = batch.iter().skip(1).all(|t| {
            t.values.len() == arity
                && t.values
                    .iter()
                    .zip(first.values.iter())
                    .all(|(a, b)| std::mem::discriminant(a) == std::mem::discriminant(b))
        });
        if !uniform {
            return Err(batch);
        }
        let n = batch.len();
        let mut columns: Vec<ColumnData> =
            first.values.iter().map(|v| ColumnData::with_capacity(v, n)).collect();
        let mut event_times = Vec::with_capacity(n);
        let mut ids = Vec::with_capacity(n);
        let mut roots = Vec::with_capacity(n);
        let mut lineages = Vec::with_capacity(n);
        for t in &batch {
            for (c, v) in columns.iter_mut().zip(t.values.iter()) {
                c.push(v);
            }
            event_times.push(t.event_time);
            ids.push(t.id);
            roots.push(t.root);
            lineages.push(t.lineage);
        }
        let hashes = (0..arity).map(|_| OnceLock::new()).collect();
        Ok(Frame {
            inner: Arc::new(FrameInner {
                columns,
                event_times,
                ids,
                roots,
                lineages,
                hashes,
                len: n,
            }),
        })
    }

    /// Rows in the frame.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Whether the frame has no rows (never true for frames built by
    /// [`Frame::from_batch`]).
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Fields per row.
    pub fn arity(&self) -> usize {
        self.inner.columns.len()
    }

    /// The column at field position `c`.
    pub fn column(&self, c: usize) -> &ColumnData {
        &self.inner.columns[c]
    }

    /// Per-row ack-tree edge ids (fresh per delivery).
    pub fn ids(&self) -> &[u64] {
        &self.inner.ids
    }

    /// Per-row ack-tree roots.
    pub fn roots(&self) -> &[u64] {
        &self.inner.roots
    }

    /// Per-row stable record ids (the exactly-once dedup tokens).
    pub fn lineages(&self) -> &[u64] {
        &self.inner.lineages
    }

    /// Per-row event times.
    pub fn event_times(&self) -> &[Option<u64>] {
        &self.inner.event_times
    }

    /// [`Value::hash64`] of every row in column `c`, computed once per
    /// frame and cached. This is the batch-amortised form of the hash
    /// the row path pays per value: feed it straight to the sketches'
    /// `insert_hashes` / `add_hashes` bulk APIs.
    pub fn column_hashes(&self, c: usize) -> &[u64] {
        self.inner.hashes[c].get_or_init(|| self.inner.columns[c].hashes())
    }

    /// Materialise row `i` back into a [`Tuple`] (allocates the row's
    /// field slice; payloads stay shared).
    pub fn row(&self, i: usize) -> Tuple {
        let values: Vec<Value> = self.inner.columns.iter().map(|c| c.value(i)).collect();
        Tuple {
            values: values.into(),
            event_time: self.inner.event_times[i],
            id: self.inner.ids[i],
            root: self.inner.roots[i],
            lineage: self.inner.lineages[i],
        }
    }

    /// Materialise the whole frame back into a row batch — the
    /// executor's fallback when a frame reaches a consumer that cannot
    /// take the bulk path.
    pub fn to_batch(&self) -> Batch {
        (0..self.inner.len).map(|i| self.row(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::tuple_of;

    fn stamped(mut t: Tuple, id: u64, root: u64, lineage: u64) -> Tuple {
        t.id = id;
        t.root = root;
        t.lineage = lineage;
        t
    }

    #[test]
    fn round_trips_uniform_batches() {
        let batch: Batch = (0..5)
            .map(|i| {
                stamped(
                    tuple_of([Value::from(format!("k{i}")), Value::Int(i)]).at(i as u64),
                    i as u64 + 10,
                    i as u64 + 20,
                    i as u64 + 30,
                )
            })
            .collect();
        let frame = Frame::from_batch(batch.clone()).expect("uniform batch");
        assert_eq!(frame.len(), 5);
        assert_eq!(frame.arity(), 2);
        assert_eq!(frame.to_batch(), batch, "round trip must be lossless");
    }

    #[test]
    fn rejects_empty_mixed_arity_and_mixed_types() {
        assert!(Frame::from_batch(vec![]).is_err());
        assert!(Frame::from_batch(vec![Tuple::new(Vec::<Value>::new())]).is_err(), "zero arity");
        let mixed_arity = vec![tuple_of([1i64]), tuple_of([1i64, 2i64])];
        assert!(Frame::from_batch(mixed_arity.clone()).is_err());
        let mixed_types = vec![tuple_of([1i64]), tuple_of(["x"])];
        let Err(back) = Frame::from_batch(mixed_types) else { panic!("must reject") };
        assert_eq!(back.len(), 2, "rejected batch is handed back intact");
        let _ = mixed_arity;
    }

    #[test]
    fn column_hashes_match_value_hash64() {
        let batch: Batch = vec![
            tuple_of([Value::from("alpha"), Value::Int(1), Value::Float(0.5)]),
            tuple_of([Value::from("beta"), Value::Int(2), Value::Float(1.5)]),
            tuple_of([Value::from("gamma"), Value::Int(3), Value::Float(2.5)]),
        ];
        let frame = Frame::from_batch(batch.clone()).unwrap();
        for c in 0..frame.arity() {
            let hashes = frame.column_hashes(c);
            for (i, t) in batch.iter().enumerate() {
                assert_eq!(hashes[i], t.values[c].hash64(), "col {c} row {i}");
            }
        }
        // Cached: the second call returns the same slice.
        assert_eq!(frame.column_hashes(0).as_ptr(), frame.column_hashes(0).as_ptr());
    }

    #[test]
    fn bool_and_bytes_columns_hash_and_round_trip() {
        let batch: Batch = vec![
            tuple_of([Value::Bool(true), Value::from(vec![1u8, 2])]),
            tuple_of([Value::Bool(false), Value::from(vec![3u8])]),
        ];
        let frame = Frame::from_batch(batch.clone()).unwrap();
        assert_eq!(frame.to_batch(), batch);
        for c in 0..2 {
            for (i, t) in batch.iter().enumerate() {
                assert_eq!(frame.column_hashes(c)[i], t.values[c].hash64());
            }
        }
    }

    #[test]
    fn clones_share_columns() {
        let frame = Frame::from_batch(vec![tuple_of(["x"]), tuple_of(["y"])]).unwrap();
        let c = frame.clone();
        assert!(Arc::ptr_eq(&frame.inner, &c.inner));
    }

    #[test]
    fn typed_column_views() {
        let frame =
            Frame::from_batch(vec![tuple_of([Value::from("k"), Value::Int(7), Value::Float(1.0)])])
                .unwrap();
        assert_eq!(&*frame.column(0).as_strs().unwrap()[0], "k");
        assert_eq!(frame.column(1).as_ints().unwrap(), &[7]);
        assert_eq!(frame.column(2).as_floats().unwrap(), &[1.0]);
        assert!(frame.column(0).as_ints().is_none());
    }
}
