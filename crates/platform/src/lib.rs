//! # sa-platform
//!
//! A miniature distributed stream-processing engine reproducing the
//! design space of the paper's Table 2 and the Lambda Architecture of
//! its Figure 1, on a single machine: worker threads stand in for
//! cluster nodes and batched channels for network links (DESIGN.md §2
//! documents why this preserves the semantics under study).
//!
//! What maps to what:
//!
//! * **Storm** — [`topology`]'s spout/bolt DAG with stream groupings,
//!   and [`acker`]'s XOR-ack protocol giving at-least-once delivery
//!   with replay.
//! * **Heron** — [`executor::ExecutorModel::ProcessPerTask`]: one task
//!   per worker, vs. Storm's multiplexed workers
//!   ([`executor::ExecutorModel::Multiplexed`]) — the debuggability/
//!   isolation redesign the paper describes, benchmarked in t18.
//! * **MillWheel** — [`checkpoint`]'s versioned store with atomic
//!   per-key commits and dedup tokens: exactly-once state updates.
//! * **Samza / Kafka** — [`log`]'s durable partitioned log with offsets,
//!   retention ([`log::Log::trim`]) and replayable consumers.
//! * **The operator layer** — [`operator`]: [`operator::SynopsisBolt`]
//!   runs any `sa_core::Synopsis` with checkpointed exactly-once state,
//!   [`operator::LogSpout`] replays the log after a crash, and
//!   [`operator::MergeBolt`] merges partition-local sketches into a
//!   global view.
//! * **Figure 1 (Lambda)** — [`lambda`]: immutable master dataset,
//!   batch views, serving-layer index, speed layer, merged queries.
//!
//! §3's platform requirements are exercised by tests: resilience to
//! out-of-order/missing data (event-time windows + watermarks via
//! `sa-windows`), predictable outcomes (exactly-once test), availability
//! under failures (failure-injection tests), and incremental scale-out
//! (parallelism sweeps in t18).

pub mod acker;
pub mod alloc_stats;
pub mod channel;
pub mod checkpoint;
pub mod executor;
pub mod frame;
pub mod lambda;
pub mod log;
pub mod metrics;
pub mod operator;
pub mod query;
pub mod rescale;
pub mod serving;
pub mod storage;
pub mod supervise;
pub mod time;
pub mod topology;
pub mod tuple;
pub mod window;

pub use channel::LinkStats;
pub use checkpoint::{CheckpointStore, DurableConfig};
pub use executor::{
    run_topology, run_topology_with, ExecutorConfig, ExecutorModel, RunResult, Semantics,
};
pub use frame::{ColumnData, Frame};
pub use log::{Consumer, Log, Record};
pub use metrics::{
    CounterHandle, GaugeHandle, HistogramHandle, HistogramSummary, LinkSnapshot, Metrics,
    MetricsSnapshot, Sampler, SchedCounters,
};
pub use operator::{
    decode_checkpoint, frontier_offset, replay_offset, LogSpout, MergeBolt, OperatorConfig,
    SynopsisBolt,
};
pub use query::{
    session, sliding, tumbling, CompiledQuery, ContinuousQuery, Parallelism, Query, ViewEntry,
    ViewHandle,
};
pub use rescale::{
    group_key, group_of_hash, key_group, task_of_group, AutoPolicy, AutoTick, Autoscaler,
    KeyGroupBolt, RescaleController, ShardTable, KEY_GROUPS,
};
pub use serving::{EpochData, Layer, QueryHandle, QueryResult, ServingView, Staleness, ViewRead};
pub use storage::{
    DiskStorage, FaultyStorage, MemStorage, Storage, StorageFaults, StorageStats, SyncPolicy,
};
pub use supervise::{panic_message, FaultPlan, RestartDecision, RestartPolicy, RestartTracker};
pub use time::{TimerService, WatermarkConfig, WatermarkGen, WatermarkMerger};
pub use topology::{
    vec_spout, Bolt, BoltBuilder, BoltFactory, BoltHandle, Grouping, IntoBoltFactory,
    OutputCollector, Scheduling, Spout, SpoutHandle, TopologyBuilder, VecSpout,
};
pub use tuple::{tuple_of, Batch, Tuple, Value};
pub use window::{WindowBolt, WindowConfig, WindowSpec};
