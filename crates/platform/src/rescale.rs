//! Live rescaling: key-group sharding, state migration, autoscaling.
//!
//! Heron and Samza scale a stateful operator by partitioning its
//! keyspace into a **fixed ring of key-groups** and assigning each task
//! a contiguous range of groups — never individual keys. State is
//! checkpointed *per key-group*, so changing the parallelism is a remap
//! of whole groups: the new owner restores each migrated group from the
//! shared [`CheckpointStore`], and a scale-down merges groups with the
//! synopsis's own [`sa_core::Merge`] — state is never split. This
//! module brings that design to the topology runtime (DESIGN.md §12):
//!
//! * [`key_group`] / [`task_of_group`] — the ring. `Fields` routing
//!   everywhere goes *through* the ring (`hash → group → task`), so a
//!   key's group is parallelism-independent and co-grouped keys always
//!   travel together.
//! * [`ShardTable`] — one component's live group→task assignment:
//!   lock-free reads on the routing hot path, epoch-versioned installs.
//! * [`RescaleController`] — the migration protocol. `resize` quiesces
//!   the component (every task drops uncommitted state, abandons its
//!   held acks for replay, and acknowledges the quiesce generation),
//!   installs the new assignment, and resumes: replayed tuples route to
//!   the new owners, which restore the migrated groups from the store.
//!   Exactly-once is preserved because uncommitted effects are replayed
//!   and committed effects are deduplicated per group key.
//! * [`KeyGroupBolt`] — wraps any per-key checkpointed bolt factory
//!   ([`crate::operator::SynopsisBolt`], [`crate::window::WindowBolt`])
//!   into a sharded task that lazily materialises one inner bolt per
//!   owned group under the task-agnostic key `"{base}@g{group}"`.
//! * [`Autoscaler`] — a policy loop over [`crate::MetricsSnapshot`]
//!   signals (input-queue depth, backpressure stall ns, `execute_us`
//!   p99) that widens a component under load and drains it after,
//!   surfaced through `Query::parallelism(Parallelism::Auto { .. })`.
//!
//! Live rescaling requires [`crate::Semantics::AtLeastOnce`]: the
//! quiesce window rejects in-flight tuples and relies on replay to
//! redeliver them to the new owners.

use crate::channel::Sender;
use crate::checkpoint::CheckpointStore;
use crate::executor::Msg;
use crate::metrics::{GaugeHandle, Metrics, MetricsSnapshot};
use crate::topology::{Bolt, OutputCollector};
use crate::tuple::Tuple;
use sa_core::{Result, SaError};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Size of the key-group ring. Every `Fields`-grouped key hashes to one
/// of these groups for the lifetime of the topology; parallelism only
/// changes how the groups are *assigned*, never which group a key is
/// in. 128 bounds useful parallelism (tasks beyond 128 would own no
/// groups) while keeping per-group checkpoint overhead small.
pub const KEY_GROUPS: usize = 128;

/// The key-group of a combined field hash.
#[inline]
pub fn group_of_hash(h: u64) -> usize {
    (h % KEY_GROUPS as u64) as usize
}

/// The task owning `group` at parallelism `active`: contiguous ranges
/// (`⌊group·active/KEY_GROUPS⌋`), so neighbouring groups co-locate and
/// a rescale moves whole range boundaries, not scattered groups.
#[inline]
pub fn task_of_group(group: usize, active: usize) -> usize {
    debug_assert!(group < KEY_GROUPS);
    (group * active.max(1)) / KEY_GROUPS
}

/// The key-group of a tuple under a fields grouping — the same
/// mix-combined hash the routing layer uses, so a [`KeyGroupBolt`] and
/// the emitter that routed to it always agree on the group.
#[inline]
pub fn key_group(tuple: &Tuple, fields: &[usize]) -> usize {
    group_of_hash(crate::executor::fields_hash(tuple, fields))
}

/// The checkpoint key of `base`'s state for one key-group. Deliberately
/// task-agnostic: any task that comes to own the group restores it from
/// the same key, which is the whole migration mechanism.
pub fn group_key(base: &str, group: usize) -> String {
    format!("{base}@g{group}")
}

#[derive(Debug)]
struct TableInner {
    slots: usize,
    active: AtomicUsize,
    /// Version of the installed assignment; bumped by every install.
    epoch: AtomicU64,
    /// Non-zero while a quiesce is in flight: the generation tasks must
    /// acknowledge. Readers treat any non-zero value as "reject input".
    quiesce: AtomicU64,
    /// Monotonic generation source (never reused, even across aborted
    /// rescales — a task that acked an aborted generation must still
    /// see the next one as new).
    gen: AtomicU64,
    /// Task indices that acknowledged the current quiesce generation.
    /// Table-side on purpose: a panic-rebuilt bolt loses its local
    /// "already acked" memory, and a bolt-side flag would let it ack
    /// twice and release the install barrier early.
    acked: Mutex<HashSet<usize>>,
    /// Lifetime counters (surfaced as metrics when bound).
    rescales: AtomicU64,
    migrations: AtomicU64,
}

/// One component's live group→task assignment. Cheap to clone (shared
/// `Arc`); reads on the routing hot path are two relaxed atomic loads.
#[derive(Clone, Debug)]
pub struct ShardTable {
    inner: Arc<TableInner>,
}

impl ShardTable {
    /// A table over `slots` task slots, initially `active` of them live.
    pub fn new(slots: usize, active: usize) -> Self {
        let slots = slots.max(1);
        let active = active.clamp(1, slots);
        Self {
            inner: Arc::new(TableInner {
                slots,
                active: AtomicUsize::new(active),
                epoch: AtomicU64::new(0),
                quiesce: AtomicU64::new(0),
                gen: AtomicU64::new(0),
                acked: Mutex::new(HashSet::new()),
                rescales: AtomicU64::new(0),
                migrations: AtomicU64::new(0),
            }),
        }
    }

    /// Total task slots (the compiled parallelism ceiling).
    pub fn slots(&self) -> usize {
        self.inner.slots
    }

    /// Currently active tasks.
    pub fn active(&self) -> usize {
        self.inner.active.load(Ordering::SeqCst)
    }

    /// Version of the installed assignment.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }

    /// The in-flight quiesce generation (0 = stable).
    pub fn quiesce_gen(&self) -> u64 {
        self.inner.quiesce.load(Ordering::SeqCst)
    }

    /// The task owning `group` under the current assignment.
    pub fn task_of(&self, group: usize) -> usize {
        task_of_group(group, self.active())
    }

    /// Whether `task` owns `group` under the current assignment.
    pub fn owns(&self, group: usize, task: usize) -> bool {
        self.task_of(group) == task
    }

    /// Groups moved across all completed rescales.
    pub fn migrated_groups(&self) -> u64 {
        self.inner.migrations.load(Ordering::SeqCst)
    }

    /// Completed rescales.
    pub fn rescales(&self) -> u64 {
        self.inner.rescales.load(Ordering::SeqCst)
    }

    /// Open a new quiesce generation and return it.
    fn begin_quiesce(&self) -> u64 {
        let gen = self.inner.gen.fetch_add(1, Ordering::SeqCst) + 1;
        self.inner.acked.lock().unwrap().clear();
        self.inner.quiesce.store(gen, Ordering::SeqCst);
        gen
    }

    /// Record `task`'s acknowledgement of quiesce generation `gen`.
    /// Idempotent per (task, generation) — restarts cannot double-ack.
    fn ack_quiesce(&self, task: usize, gen: u64) {
        if self.quiesce_gen() == gen {
            self.inner.acked.lock().unwrap().insert(task);
        }
    }

    fn acks(&self) -> usize {
        self.inner.acked.lock().unwrap().len()
    }

    /// Publish a new active count under `gen` and lift the quiesce.
    fn install(&self, active: usize, gen: u64) {
        let old = self.active();
        let moved =
            (0..KEY_GROUPS).filter(|&g| task_of_group(g, old) != task_of_group(g, active)).count();
        self.inner.migrations.fetch_add(moved as u64, Ordering::SeqCst);
        self.inner.rescales.fetch_add(1, Ordering::SeqCst);
        self.inner.active.store(active, Ordering::SeqCst);
        self.inner.epoch.store(gen, Ordering::SeqCst);
        self.inner.quiesce.store(0, Ordering::SeqCst);
        self.inner.acked.lock().unwrap().clear();
    }

    /// Abandon an in-flight quiesce without installing (timeout path).
    /// Tasks that already dropped their uncommitted state are in the
    /// same state as after a crash: replay re-drives them.
    fn abort_quiesce(&self) {
        self.inner.quiesce.store(0, Ordering::SeqCst);
        self.inner.acked.lock().unwrap().clear();
    }
}

#[derive(Default)]
struct ControllerInner {
    tables: Mutex<HashMap<String, ShardTable>>,
    senders: Mutex<HashMap<String, Vec<Sender<Msg>>>>,
    gauges: Mutex<HashMap<String, GaugeHandle>>,
    /// Serializes `resize` calls: one migration at a time, per
    /// controller, keeps the quiesce barrier unambiguous.
    resize_lock: Mutex<()>,
}

/// The migration protocol driver. Clone-cheap handle; create it before
/// building the topology, register per-component [`ShardTable`]s with
/// [`RescaleController::table`], hand the clone to
/// [`crate::ExecutorConfig::rescale`], and call
/// [`RescaleController::resize`] (directly or via an [`Autoscaler`])
/// while the topology runs.
#[derive(Clone, Default)]
pub struct RescaleController {
    inner: Arc<ControllerInner>,
    /// How long `resize` waits for every task to acknowledge the
    /// quiesce before aborting it.
    quiesce_timeout: Duration,
}

impl std::fmt::Debug for RescaleController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RescaleController")
            .field("components", &self.inner.tables.lock().unwrap().keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl RescaleController {
    /// A controller with the default 5 s quiesce timeout.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(ControllerInner::default()),
            quiesce_timeout: Duration::from_secs(5),
        }
    }

    /// Override the quiesce-acknowledgement timeout.
    pub fn with_quiesce_timeout(mut self, timeout: Duration) -> Self {
        self.quiesce_timeout = timeout;
        self
    }

    /// Register (or fetch) the shard table for `component`, compiled
    /// with `slots` task slots and `active` initially live.
    pub fn table(&self, component: &str, slots: usize, active: usize) -> ShardTable {
        self.inner
            .tables
            .lock()
            .unwrap()
            .entry(component.to_string())
            .or_insert_with(|| ShardTable::new(slots, active))
            .clone()
    }

    /// The shard table registered for `component`, if any.
    pub fn table_of(&self, component: &str) -> Option<ShardTable> {
        self.inner.tables.lock().unwrap().get(component).cloned()
    }

    /// Current active parallelism of `component`.
    pub fn active(&self, component: &str) -> Option<usize> {
        self.table_of(component).map(|t| t.active())
    }

    /// Executor hook: remember every task's input sender so `resize`
    /// can kick parked tasks into observing the quiesce.
    pub(crate) fn register_senders(&self, component: &str, senders: Vec<Sender<Msg>>) {
        self.inner.senders.lock().unwrap().insert(component.to_string(), senders);
    }

    /// Executor hook: surface each sharded component's live parallelism
    /// as a `rescale.{component}.active` gauge.
    pub(crate) fn bind(&self, metrics: &Metrics) {
        let tables = self.inner.tables.lock().unwrap();
        let mut gauges = self.inner.gauges.lock().unwrap();
        for (name, table) in tables.iter() {
            let g = metrics.register_gauge(&format!("rescale.{name}.active"));
            g.set(table.active() as u64);
            gauges.insert(name.clone(), g);
        }
    }

    /// Rescale `component` to `active` tasks (clamped to `1..=slots`).
    ///
    /// Protocol: open a quiesce generation; kick every task
    /// (`Msg::Rescale` rides the normal input channels, so parked
    /// tasks wake); each task drops its uncommitted group state,
    /// abandons its held acks (failing them for replay), and
    /// acknowledges; once every live task has acknowledged, the new
    /// assignment is installed and replay re-drives the rejected
    /// in-flight tuples to their new owners, which restore migrated
    /// groups from the checkpoint store. If acknowledgements do not
    /// arrive within the quiesce timeout (component not running, or
    /// shutting down), the quiesce is aborted and an error returned.
    ///
    /// Returns the new active count (which may equal the old one).
    pub fn resize(&self, component: &str, active: usize) -> Result<usize> {
        let _serial = self.inner.resize_lock.lock().unwrap();
        let table = self.table_of(component).ok_or_else(|| {
            SaError::Platform(format!("rescale: no shard table registered for '{component}'"))
        })?;
        let active = active.clamp(1, table.slots());
        if active == table.active() {
            return Ok(active);
        }
        let gen = table.begin_quiesce();
        let senders: Vec<Sender<Msg>> =
            self.inner.senders.lock().unwrap().get(component).cloned().unwrap_or_default();
        let mut expected = 0usize;
        for s in &senders {
            if s.send(Msg::Rescale).is_ok() {
                expected += 1;
            }
        }
        let deadline = Instant::now() + self.quiesce_timeout;
        while table.acks() < expected {
            if Instant::now() > deadline {
                table.abort_quiesce();
                return Err(SaError::Platform(format!(
                    "rescale '{component}': quiesce timed out with {}/{} acks",
                    table.acks(),
                    expected
                )));
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        table.install(active, gen);
        if let Some(g) = self.inner.gauges.lock().unwrap().get(component) {
            g.set(active as u64);
        }
        Ok(active)
    }
}

/// Factory for one key-group's inner bolt, handed its checkpoint key.
pub type GroupBoltFactory = Box<dyn FnMut(&str) -> Result<Box<dyn Bolt>> + Send>;

/// A sharded stateful task: routes each input to its key-group's inner
/// bolt, materialised lazily under the task-agnostic checkpoint key
/// [`group_key`], and speaks the migration protocol against a
/// [`ShardTable`].
///
/// The inner bolts own the exactly-once machinery (dedup, held acks,
/// commit cadence — see [`crate::operator::SynopsisBolt`]); this
/// wrapper translates their per-group ack flags to task-level flags:
/// a group's `release` becomes a task-level release only once *no*
/// group has uncommitted state (held acks of already-durable inputs are
/// merely delayed, never lost), and during a quiesce or for unowned
/// groups the input is failed so replay re-routes it.
pub struct KeyGroupBolt {
    base: String,
    fields: Vec<usize>,
    table: ShardTable,
    task: usize,
    store: CheckpointStore,
    make: GroupBoltFactory,
    groups: BTreeMap<usize, Box<dyn Bolt>>,
    /// Groups with uncommitted (held) state.
    dirty: BTreeSet<usize>,
    seen_epoch: u64,
    acked_gen: u64,
    rerouted: u64,
}

impl KeyGroupBolt {
    /// Shard `base`'s state by the key-group of `fields`, as `task` of
    /// the component governed by `table`. `make` builds (or restores —
    /// it is called with the group's checkpoint key) one inner bolt per
    /// owned group; `store` is only probed at flush time to find
    /// migrated groups that saw no post-rescale traffic.
    pub fn new<F>(
        base: &str,
        fields: Vec<usize>,
        table: ShardTable,
        task: usize,
        store: &CheckpointStore,
        make: F,
    ) -> Self
    where
        F: FnMut(&str) -> Result<Box<dyn Bolt>> + Send + 'static,
    {
        let seen_epoch = table.epoch();
        Self {
            base: base.to_string(),
            fields,
            table,
            task,
            store: store.clone(),
            make: Box::new(make),
            groups: BTreeMap::new(),
            dirty: BTreeSet::new(),
            seen_epoch,
            acked_gen: 0,
            rerouted: 0,
        }
    }

    /// Inputs failed because they arrived during a quiesce or for a
    /// group this task no longer owns (diagnostic).
    pub fn rerouted(&self) -> u64 {
        self.rerouted
    }

    /// Live (materialised) groups on this task.
    pub fn live_groups(&self) -> usize {
        self.groups.len()
    }

    /// Observe the shard table: acknowledge a new quiesce generation by
    /// dropping every in-memory group (uncommitted effects are replayed
    /// — identical to the supervision rebuild path) and abandoning held
    /// acks; adopt a new epoch by discarding groups this task no longer
    /// owns. Runs at the top of every callback.
    fn sync(&mut self, out: &mut OutputCollector) {
        let gen = self.table.quiesce_gen();
        if gen != 0 && self.acked_gen < gen {
            self.acked_gen = gen;
            self.groups.clear();
            self.dirty.clear();
            out.abandon_held();
            self.table.ack_quiesce(self.task, gen);
        }
        let epoch = self.table.epoch();
        if epoch != self.seen_epoch {
            self.seen_epoch = epoch;
            let disowned: Vec<usize> =
                self.groups.keys().copied().filter(|&g| !self.table.owns(g, self.task)).collect();
            if !disowned.is_empty() {
                for g in disowned {
                    self.groups.remove(&g);
                    self.dirty.remove(&g);
                }
                // Conservative: replay everything uncommitted. Inner
                // dedup absorbs replays of still-owned groups.
                out.abandon_held();
            }
        }
    }

    fn quiescing(&self) -> bool {
        self.table.quiesce_gen() != 0
    }

    /// Materialise the inner bolt for `group` (restoring from its
    /// checkpoint). A factory failure panics: supervision restarts the
    /// task with backoff, which retries the restore.
    fn ensure_group(&mut self, group: usize) -> &mut Box<dyn Bolt> {
        if !self.groups.contains_key(&group) {
            let key = group_key(&self.base, group);
            let bolt = (self.make)(&key)
                .unwrap_or_else(|e| panic!("key-group {group} ({key}) restore failed: {e}"));
            self.groups.insert(group, bolt);
        }
        self.groups.get_mut(&group).unwrap()
    }

    /// Translate one inner collector into the task-level collector.
    fn apply(&mut self, group: usize, scratch: OutputCollector, out: &mut OutputCollector) {
        for t in scratch.emitted {
            out.emit(t);
        }
        for t in scratch.late {
            out.emit_late(t);
        }
        if scratch.failed {
            out.fail();
            return;
        }
        if scratch.release {
            self.dirty.remove(&group);
        }
        if scratch.hold {
            self.dirty.insert(group);
        }
        if scratch.release && self.dirty.is_empty() {
            // Every group is durable: release the whole task's ledger.
            out.release_acks();
        } else if scratch.release || scratch.hold {
            // This input is (or just became) durable but another group
            // still holds uncommitted state — keep its ack parked; the
            // idle hook releases once the stragglers commit.
            out.hold_ack();
        }
        // Neither flag (durable duplicate): plain ack, pass through.
    }

    /// Run `call` against `group`'s inner bolt and fold the result.
    fn drive<F>(&mut self, group: usize, out: &mut OutputCollector, call: F)
    where
        F: FnOnce(&mut Box<dyn Bolt>, &mut OutputCollector),
    {
        let mut scratch = OutputCollector::new();
        call(self.ensure_group(group), &mut scratch);
        self.apply(group, scratch, out);
    }
}

impl Bolt for KeyGroupBolt {
    fn execute(&mut self, input: &Tuple, out: &mut OutputCollector) {
        self.sync(out);
        if self.quiescing() {
            // Mid-migration: reject so replay re-routes after install.
            self.rerouted += 1;
            out.fail();
            return;
        }
        let group = key_group(input, &self.fields);
        if !self.table.owns(group, self.task) {
            // Routed under an assignment we no longer serve.
            self.rerouted += 1;
            out.fail();
            return;
        }
        self.drive(group, out, |b, o| b.execute(input, o));
    }

    fn on_idle(&mut self, out: &mut OutputCollector) {
        self.sync(out);
        if self.quiescing() || self.dirty.is_empty() {
            return;
        }
        for group in self.dirty.clone() {
            self.drive(group, out, |b, o| b.on_idle(o));
        }
    }

    fn on_watermark(&mut self, wm: u64, out: &mut OutputCollector) {
        self.sync(out);
        if self.quiescing() {
            return;
        }
        for group in self.groups.keys().copied().collect::<Vec<_>>() {
            self.drive(group, out, |b, o| b.on_watermark(wm, o));
        }
    }

    fn flush(&mut self, out: &mut OutputCollector) {
        self.sync(out);
        // Flush every owned group — including migrated groups that saw
        // no traffic since the rescale (their old owner dropped them at
        // the quiesce, so this task must emit their final state).
        for group in 0..KEY_GROUPS {
            if !self.table.owns(group, self.task) {
                continue;
            }
            let present = self.groups.contains_key(&group)
                || self.store.get(&group_key(&self.base, group)).is_some();
            if !present {
                continue;
            }
            self.drive(group, out, |b, o| b.flush(o));
        }
    }
}

/// Scaling policy for an [`Autoscaler`]: bounds, the signals that
/// trigger widening, and the patience required before draining.
#[derive(Clone, Debug)]
pub struct AutoPolicy {
    /// Parallelism floor.
    pub min: usize,
    /// Parallelism ceiling (the compiled slot count).
    pub max: usize,
    /// Sampling cadence of [`Autoscaler::run_until`].
    pub interval: Duration,
    /// Scale up when the component's input-queue depth (batches)
    /// reaches this.
    pub up_depth: u64,
    /// Scale up when backpressure stalls accumulate more than this many
    /// blocked nanoseconds between two ticks.
    pub up_stall_ns: u64,
    /// A tick is "calm" when depth is at or below this.
    pub down_depth: u64,
    /// Consecutive calm ticks before scaling down one step.
    pub calm_ticks: u32,
    /// Minimum ticks between any two scaling actions.
    pub cooldown_ticks: u32,
}

impl Default for AutoPolicy {
    fn default() -> Self {
        Self {
            min: 1,
            max: 4,
            interval: Duration::from_millis(50),
            up_depth: 64,
            up_stall_ns: 50_000_000,
            down_depth: 8,
            calm_ticks: 6,
            cooldown_ticks: 4,
        }
    }
}

/// One autoscaler observation (kept for offline analysis).
#[derive(Clone, Copy, Debug)]
pub struct AutoTick {
    /// Active tasks after this tick's decision.
    pub active: usize,
    /// Input-queue depth (batches) at the tick.
    pub depth: u64,
    /// `execute_us` p99 at the tick (0 when unsampled).
    pub p99_us: u64,
}

/// Signal-driven scaling loop for one sharded component. Drive it from
/// its own thread with [`Autoscaler::run_until`], or call
/// [`Autoscaler::tick`] from an existing sampling loop.
pub struct Autoscaler {
    ctl: RescaleController,
    component: String,
    metrics: Metrics,
    policy: AutoPolicy,
    ticks_since_action: u32,
    calm: u32,
    last_stall_ns: u64,
    /// Every observation, in tick order.
    pub ticks: Vec<AutoTick>,
    /// Widest parallelism reached.
    pub peak: usize,
    /// Completed scale-up actions.
    pub scale_ups: u32,
    /// Completed scale-down actions.
    pub scale_downs: u32,
}

impl Autoscaler {
    /// An autoscaler for `component`, reading `metrics` and resizing
    /// through `ctl`.
    pub fn new(
        ctl: RescaleController,
        component: &str,
        metrics: Metrics,
        policy: AutoPolicy,
    ) -> Self {
        let peak = ctl.active(component).unwrap_or(policy.min);
        Self {
            ctl,
            component: component.to_string(),
            metrics,
            policy,
            ticks_since_action: u32::MAX,
            calm: 0,
            last_stall_ns: 0,
            ticks: Vec::new(),
            peak,
            scale_ups: 0,
            scale_downs: 0,
        }
    }

    /// Sample once and maybe act. Returns the new active count when a
    /// rescale happened.
    pub fn tick(&mut self) -> Option<usize> {
        let snap: MetricsSnapshot = self.metrics.snapshot();
        let link = snap.link(&format!("{}.input", self.component));
        let depth = link.as_ref().map_or(0, |l| l.depth);
        let stall_ns = link.as_ref().map_or(0, |l| l.stall_ns);
        let stall_delta = stall_ns.saturating_sub(self.last_stall_ns);
        self.last_stall_ns = stall_ns;
        let p99_us =
            snap.histogram(&format!("{}.execute_us", self.component)).map_or(0, |h| h.p99 as u64);
        let active = self.ctl.active(&self.component).unwrap_or(self.policy.min);
        self.ticks_since_action = self.ticks_since_action.saturating_add(1);

        let mut resized = None;
        let pressured = depth >= self.policy.up_depth || stall_delta >= self.policy.up_stall_ns;
        if pressured {
            self.calm = 0;
            if active < self.policy.max && self.ticks_since_action > self.policy.cooldown_ticks {
                if let Ok(n) = self.ctl.resize(&self.component, active + 1) {
                    if n != active {
                        self.scale_ups += 1;
                        self.ticks_since_action = 0;
                        resized = Some(n);
                    }
                }
            }
        } else if depth <= self.policy.down_depth {
            self.calm += 1;
            if active > self.policy.min
                && self.calm >= self.policy.calm_ticks
                && self.ticks_since_action > self.policy.cooldown_ticks
            {
                if let Ok(n) = self.ctl.resize(&self.component, active - 1) {
                    if n != active {
                        self.scale_downs += 1;
                        self.ticks_since_action = 0;
                        self.calm = 0;
                        resized = Some(n);
                    }
                }
            }
        } else {
            self.calm = 0;
        }
        let active = resized.unwrap_or(active);
        self.peak = self.peak.max(active);
        self.ticks.push(AutoTick { active, depth, p99_us });
        resized
    }

    /// Tick at the policy interval until `stop` flips true.
    pub fn run_until(&mut self, stop: &AtomicBool) {
        while !stop.load(Ordering::Relaxed) {
            self.tick();
            std::thread::sleep(self.policy.interval);
        }
    }

    /// Current active parallelism of the governed component.
    pub fn active(&self) -> usize {
        self.ctl.active(&self.component).unwrap_or(self.policy.min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{OperatorConfig, SynopsisBolt};
    use crate::tuple::{tuple_of, Value};
    use sa_sketches::heavy_hitters::SpaceSaving;

    #[test]
    fn ring_is_contiguous_and_covers_all_tasks() {
        for active in 1..=KEY_GROUPS {
            let mut seen = vec![false; active];
            let mut last = 0;
            for g in 0..KEY_GROUPS {
                let t = task_of_group(g, active);
                assert!(t < active, "group {g} → task {t} out of range at active={active}");
                assert!(t >= last, "assignment not contiguous at group {g}");
                last = t;
                seen[t] = true;
            }
            assert!(seen.iter().all(|&s| s), "some task owns no group at active={active}");
        }
    }

    #[test]
    fn groups_never_split_across_parallelism_changes() {
        // Keys sharing a group must share a task at EVERY parallelism.
        for g in 0..KEY_GROUPS {
            for p in 1..=16 {
                let t = task_of_group(g, p);
                assert_eq!(t, task_of_group(g, p), "deterministic");
                assert!(t < p);
            }
        }
    }

    #[test]
    fn shard_table_quiesce_barrier_dedups_acks() {
        let table = ShardTable::new(4, 2);
        let gen = table.begin_quiesce();
        assert_eq!(table.quiesce_gen(), gen);
        table.ack_quiesce(0, gen);
        table.ack_quiesce(0, gen); // restart double-ack: idempotent
        assert_eq!(table.acks(), 1);
        table.ack_quiesce(1, gen);
        assert_eq!(table.acks(), 2);
        table.install(4, gen);
        assert_eq!(table.active(), 4);
        assert_eq!(table.epoch(), gen);
        assert_eq!(table.quiesce_gen(), 0);
        assert!(table.migrated_groups() > 0);
    }

    #[test]
    fn aborted_generation_is_never_reused() {
        let table = ShardTable::new(4, 2);
        let g1 = table.begin_quiesce();
        table.ack_quiesce(0, g1);
        table.abort_quiesce();
        let g2 = table.begin_quiesce();
        assert!(g2 > g1, "a task that acked the aborted gen must see the new one as fresh");
        assert_eq!(table.acks(), 0);
    }

    #[test]
    fn resize_without_running_topology_installs_directly() {
        let ctl = RescaleController::new();
        let table = ctl.table("agg", 4, 1);
        assert_eq!(ctl.resize("agg", 3).unwrap(), 3);
        assert_eq!(table.active(), 3);
        assert_eq!(ctl.resize("agg", 99).unwrap(), 4, "clamped to slots");
        assert!(ctl.resize("ghost", 2).is_err());
    }

    fn counting_group_bolt(
        table: &ShardTable,
        task: usize,
        store: &CheckpointStore,
    ) -> KeyGroupBolt {
        let store2 = store.clone();
        KeyGroupBolt::new("kg", vec![0], table.clone(), task, store, move |key| {
            let bolt = SynopsisBolt::with_config(
                key,
                &store2,
                SpaceSaving::<String>::new(64)?,
                |t: &Tuple, s: &mut SpaceSaving<String>| {
                    if let Some(w) = t.get(0).and_then(Value::as_str) {
                        s.insert(w.to_string());
                    }
                },
                OperatorConfig { checkpoint_every: 2, ..OperatorConfig::default() },
            )?;
            Ok(Box::new(bolt) as Box<dyn Bolt>)
        })
    }

    fn lineage(tuple: Tuple, root: u64, id: u64) -> Tuple {
        let mut t = tuple;
        t.root = root;
        t.id = id;
        t.lineage = id;
        t
    }

    #[test]
    fn key_group_bolt_routes_fails_unowned_and_flushes_migrated_state() {
        let store = CheckpointStore::new();
        let table = ShardTable::new(2, 1);
        let mut t0 = counting_group_bolt(&table, 0, &store);

        // Feed keys until task 0 has applied a few groups.
        let mut id = 1u64;
        for i in 0..40u64 {
            let t = lineage(tuple_of([format!("k{i}")]), id, id);
            let mut out = OutputCollector::new();
            t0.execute(&t, &mut out);
            assert!(!out.failed, "task 0 owns everything at active=1");
            id += 1;
        }
        assert!(t0.live_groups() > 1, "keys spread across groups");
        // Commit the tail so every group is durable.
        let mut out = OutputCollector::new();
        t0.on_idle(&mut out);
        assert!(out.release, "idle commit releases the ledger");

        // Rescale 1 → 2 through the quiesce protocol.
        let gen = table.begin_quiesce();
        let mut out = OutputCollector::new();
        t0.on_idle(&mut out); // observes the quiesce, acks
        assert_eq!(table.acks(), 1);
        table.install(2, gen);
        assert_eq!(t0.live_groups(), 0, "quiesce dropped in-memory groups");

        // Task 0 now rejects tuples owned by task 1.
        let mut t1 = counting_group_bolt(&table, 1, &store);
        let mut seen_reroute = false;
        for i in 0..40u64 {
            let t = lineage(tuple_of([format!("k{i}")]), id, id);
            let g = key_group(&t, &[0]);
            let mut out = OutputCollector::new();
            if table.owns(g, 0) {
                t0.execute(&t, &mut out);
                assert!(!out.failed);
            } else {
                let mut wrong = OutputCollector::new();
                t0.execute(&t, &mut wrong);
                assert!(wrong.failed, "unowned group must be failed for re-routing");
                seen_reroute = true;
                t1.execute(&t, &mut out);
                assert!(!out.failed);
            }
            id += 1;
        }
        assert!(seen_reroute);

        // Flush both: every group's counts surface exactly once, and
        // migrated-but-untouched groups are restored from the store.
        let mut f0 = OutputCollector::new();
        t0.flush(&mut f0);
        let mut f1 = OutputCollector::new();
        t1.flush(&mut f1);
        let mut merged = SpaceSaving::<String>::new(64).unwrap();
        let mut parts = 0;
        for t in f0.emitted.iter().chain(f1.emitted.iter()) {
            if let Some(bytes) = t.get(1).and_then(Value::as_bytes) {
                let mut part = SpaceSaving::<String>::new(64).unwrap();
                use sa_core::{Merge, Synopsis};
                part.restore(bytes).unwrap();
                merged.merge(&part).unwrap();
                parts += 1;
            }
        }
        assert!(parts > 0);
        for i in 0..40u64 {
            assert_eq!(merged.estimate(&format!("k{i}")), 2, "k{i} applied once per round");
        }
    }

    #[test]
    fn autoscaler_scales_on_installed_tables_without_senders() {
        // No running topology: resize installs immediately, so the
        // policy loop's decisions are observable synchronously.
        let ctl = RescaleController::new();
        ctl.table("agg", 4, 1);
        let metrics = Metrics::new();
        let policy = AutoPolicy { calm_ticks: 2, cooldown_ticks: 0, ..AutoPolicy::default() };
        let mut auto = Autoscaler::new(ctl.clone(), "agg", metrics.clone(), policy);
        // Depth gauge absent → calm ticks → stays at min.
        for _ in 0..4 {
            auto.tick();
        }
        assert_eq!(auto.active(), 1);
        // Pressure: register a deep link.
        let link = metrics.register_link("agg.input");
        for _ in 0..200 {
            link.on_send();
        }
        auto.tick();
        auto.tick();
        assert!(auto.active() > 1, "depth pressure widens the component");
        let widened = auto.active();
        // Drain: depth back to zero → calm ticks → scale down.
        for _ in 0..200 {
            link.on_recv();
        }
        for _ in 0..12 {
            auto.tick();
        }
        assert!(auto.active() < widened, "calm ticks drain the component");
        assert!(auto.scale_ups >= 1 && auto.scale_downs >= 1);
        assert!(!auto.ticks.is_empty());
    }
}
