//! Runtime metrics: per-component counters plus a latency histogram,
//! shared across worker threads.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared metrics sink. Clones share storage.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: Mutex<HashMap<String, u64>>,
    acked_roots: AtomicU64,
    failed_roots: AtomicU64,
    replayed_roots: AtomicU64,
    dropped_links: AtomicU64,
}

impl Metrics {
    /// Empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to a named counter (e.g. `"count.executed"`).
    pub fn add(&self, name: &str, delta: u64) {
        *self.inner.counters.lock().entry(name.to_string()).or_insert(0) += delta;
    }

    /// Read a named counter.
    pub fn get(&self, name: &str) -> u64 {
        self.inner.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Record an acked root.
    pub fn root_acked(&self) {
        self.inner.acked_roots.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a failed (to-be-replayed) root.
    pub fn root_failed(&self) {
        self.inner.failed_roots.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a replayed root.
    pub fn root_replayed(&self) {
        self.inner.replayed_roots.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an injected link drop.
    pub fn link_dropped(&self) {
        self.inner.dropped_links.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot (acked, failed, replayed, dropped).
    pub fn root_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.inner.acked_roots.load(Ordering::Relaxed),
            self.inner.failed_roots.load(Ordering::Relaxed),
            self.inner.replayed_roots.load(Ordering::Relaxed),
            self.inner.dropped_links.load(Ordering::Relaxed),
        )
    }

    /// All named counters, sorted.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .inner
            .counters
            .lock()
            .iter()
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let m = Metrics::new();
        let m2 = m.clone();
        m.add("x.executed", 3);
        m2.add("x.executed", 4);
        assert_eq!(m.get("x.executed"), 7);
        assert_eq!(m.get("missing"), 0);
    }

    #[test]
    fn root_stats() {
        let m = Metrics::new();
        m.root_acked();
        m.root_failed();
        m.root_failed();
        m.root_replayed();
        m.link_dropped();
        assert_eq!(m.root_stats(), (1, 2, 1, 1));
    }
}
