//! Topology metrics: pre-registered, allocation-free counters, plus the
//! self-instrumenting observability layer (latency histograms, link
//! gauges, backpressure stalls).
//!
//! The emit path is the hottest loop in the executor, so counters there
//! must cost one atomic add — no `String` key construction, no map
//! lookup, no mutex. Components resolve their counter names ONCE at
//! topology-build (worker-spawn) time via [`Metrics::register`], which
//! interns the name and hands back a [`CounterHandle`]: an `Arc` to a
//! cache-line-sharded bank of `AtomicU64` cells plus a fixed shard
//! index. [`CounterHandle::add`] is then a single relaxed `fetch_add`
//! on a shard picked round-robin at registration, so concurrent workers
//! bumping the same logical counter usually touch different cache
//! lines.
//!
//! # Observability: dogfooding the paper's synopses
//!
//! Latency distributions are the platform observing itself with its own
//! Section-2 machinery: a [`HistogramHandle`] wraps the in-tree
//! Greenwald–Khanna quantile sketch (`sa_sketches::quantiles::GkSketch`)
//! — the same summary MillWheel-style latency tracking is built on — so
//! p50/p90/p99 cost `O((1/ε)·log εn)` space no matter how many samples
//! flow in. Recording is *sampled* (see [`Sampler`] and
//! `ExecutorConfig::latency_sample_every`): the hot loop pays one
//! branch per tuple and a clock read + sketch insert only every Nth
//! tuple, keeping measured overhead within a few percent (experiment
//! T2.D).
//!
//! Queue health comes from [`crate::channel::LinkStats`] gauges
//! registered through [`Metrics::register_link`]: live depth (in
//! batches), high-water mark, and backpressure stalls — the count of
//! bounded `send`s that found the queue full, and the total nanoseconds
//! they spent blocked. This is Heron's backpressure signal, surfaced as
//! a metric instead of a control-plane event.
//!
//! Reads are rare (end-of-run, tests, benches) and go through
//! [`Metrics::snapshot`], which sums the shards, queries the sketches,
//! and reads the gauges into an immutable, serialisable
//! [`MetricsSnapshot`].

use crate::channel::LinkStats;
use sa_core::traits::QuantileSketch;
use sa_sketches::quantiles::GkSketch;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shards per counter: eight padded cells cover typical worker counts.
const SHARDS: usize = 8;

/// Rank-error budget of latency histograms: ±0.5% of rank, comfortably
/// sharp enough to separate p90 from p99 on thousands of samples.
const HIST_EPSILON: f64 = 0.005;

/// One `AtomicU64` padded out to its own cache line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// The sharded storage behind one logical counter.
#[derive(Debug, Default)]
struct CounterCells {
    shards: [PaddedCell; SHARDS],
}

impl CounterCells {
    fn sum(&self) -> u64 {
        self.shards.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A pre-resolved counter: clone-cheap, lock-free, allocation-free.
///
/// Obtained from [`Metrics::register`] at build time; `add` is the only
/// thing the hot loop ever calls.
#[derive(Clone, Debug)]
pub struct CounterHandle {
    cells: Arc<CounterCells>,
    shard: usize,
}

impl CounterHandle {
    /// Increment by `delta`: one relaxed `fetch_add`, no allocation, no
    /// lock.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.cells.shards[self.shard].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current total across all shards (all registrants of this name).
    pub fn value(&self) -> u64 {
        self.cells.sum()
    }
}

/// A pre-resolved latency/occupancy histogram over the in-tree GK
/// quantile sketch. Clone-cheap; all registrants of one name share the
/// same sketch, so quantiles aggregate across a component's tasks.
///
/// `record` takes the sketch mutex — callers keep it off the per-tuple
/// path by gating with a [`Sampler`] (every-Nth recording), so the lock
/// is touched orders of magnitude less often than tuples flow.
#[derive(Clone, Debug)]
pub struct HistogramHandle {
    sketch: Arc<Mutex<GkSketch>>,
}

impl HistogramHandle {
    /// Fold one observation (typically microseconds) into the sketch.
    pub fn record(&self, value: f64) {
        self.sketch.lock().unwrap().insert(value);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.sketch.lock().unwrap().count()
    }

    /// ε-approximate quantile (`None` until something was recorded).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.sketch.lock().unwrap().query(q)
    }

    fn summary(&self) -> HistogramSummary {
        let sketch = self.sketch.lock().unwrap();
        HistogramSummary {
            count: sketch.count(),
            p50: sketch.query(0.50).unwrap_or(0.0),
            p90: sketch.query(0.90).unwrap_or(0.0),
            p99: sketch.query(0.99).unwrap_or(0.0),
        }
    }
}

/// A pre-resolved gauge: one shared `AtomicU64` cell, last-write-wins.
/// Used for point-in-time readings (current watermark, watermark lag)
/// where summing across registrants would be meaningless.
#[derive(Clone, Debug, Default)]
pub struct GaugeHandle {
    cell: Arc<AtomicU64>,
}

impl GaugeHandle {
    /// Set the gauge: one relaxed store.
    #[inline]
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Current reading.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Per-worker scheduler counters of the work-stealing pool, bumped on
/// the worker loop's hot path (one relaxed atomic add each). Named
/// `sched.worker{i}.runs` / `.steals` / `.parks` in the snapshot.
#[derive(Clone)]
pub struct SchedCounters {
    /// Activations this worker executed.
    pub runs: CounterHandle,
    /// Activations this worker stole from a sibling's deque.
    pub steals: CounterHandle,
    /// Times this worker parked on the injector condvar.
    pub parks: CounterHandle,
}

/// Every-Nth gate for sampled recording: the hot loop calls
/// [`Sampler::hit`] per event and only pays for the clock + sketch on a
/// hit. `every = 0` disables sampling entirely (never hits), which is
/// how `ExecutorConfig::latency_sample_every = 0` turns the
/// instrumentation off. The first call after construction hits, so even
/// short runs produce at least one observation per site.
#[derive(Clone, Debug)]
pub struct Sampler {
    every: u32,
    tick: u32,
}

impl Sampler {
    /// A gate that passes one event in `every` (0 = never).
    pub fn new(every: u32) -> Self {
        Self { every, tick: every.saturating_sub(1) }
    }

    /// Like [`Sampler::new`], but the first hit is deferred by `phase`
    /// events (mod `every`). Co-located tasks sharing one histogram
    /// stagger their phases so sampled hits — and the sketch-mutex
    /// acquisitions they imply — do not line up in lockstep across
    /// threads. `phase = 0` behaves exactly like `new`.
    pub fn with_phase(every: u32, phase: u32) -> Self {
        if every == 0 {
            return Self { every, tick: 0 };
        }
        Self { every, tick: (every - 1).wrapping_sub(phase % every) % every }
    }

    /// Advance; true when this event should be recorded.
    #[inline]
    pub fn hit(&mut self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.tick += 1;
        if self.tick >= self.every {
            self.tick = 0;
            true
        } else {
            false
        }
    }

    /// Whether this sampler can ever hit.
    pub fn enabled(&self) -> bool {
        self.every != 0
    }
}

/// Shared metrics sink for one topology run. Clones share storage.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    /// Interned counters: name -> cell bank. Touched only at
    /// registration and snapshot time, never per tuple.
    registry: Mutex<HashMap<String, Arc<CounterCells>>>,
    /// Interned histograms: name -> shared GK sketch.
    histograms: Mutex<HashMap<String, HistogramHandle>>,
    /// Interned link gauges: name -> depth/stall atomics.
    links: Mutex<HashMap<String, LinkStats>>,
    /// Interned scalar gauges: name -> shared cell.
    gauges: Mutex<HashMap<String, GaugeHandle>>,
    /// Round-robin shard assignment for successive registrations.
    next_shard: AtomicUsize,
    acked_roots: AtomicU64,
    failed_roots: AtomicU64,
    replayed_roots: AtomicU64,
    dropped_links: AtomicU64,
    task_panics: AtomicU64,
    task_restarts: AtomicU64,
    quarantined_roots: AtomicU64,
    escalations: AtomicU64,
}

impl Metrics {
    /// Empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name` and return a handle bound to one shard of its cell
    /// bank. Registering the same name again returns a handle over the
    /// same cells (next shard), so totals aggregate across workers.
    /// Build-time only — allocates and locks.
    pub fn register(&self, name: &str) -> CounterHandle {
        let mut reg = self.inner.registry.lock().unwrap();
        let cells = reg
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(CounterCells::default()))
            .clone();
        let shard = self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS;
        CounterHandle { cells, shard }
    }

    /// Intern a histogram; same-name registrations share one sketch, so
    /// a component's tasks aggregate into one distribution. Build-time
    /// only.
    pub fn register_histogram(&self, name: &str) -> HistogramHandle {
        self.inner
            .histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert_with(|| HistogramHandle {
                sketch: Arc::new(Mutex::new(
                    GkSketch::new(HIST_EPSILON).expect("valid histogram epsilon"),
                )),
            })
            .clone()
    }

    /// Intern a link gauge; same-name registrations share the atomics,
    /// so a component's input queues aggregate into one depth/stall
    /// account. Build-time only.
    pub fn register_link(&self, name: &str) -> LinkStats {
        self.inner.links.lock().unwrap().entry(name.to_string()).or_default().clone()
    }

    /// Intern a scalar gauge; same-name registrations share one cell
    /// (last write wins). Build-time only.
    pub fn register_gauge(&self, name: &str) -> GaugeHandle {
        self.inner.gauges.lock().unwrap().entry(name.to_string()).or_default().clone()
    }

    /// Intern the per-worker counters of the work-stealing pool
    /// (`sched.worker{i}.{runs,steals,parks}`); they land in the
    /// snapshot's counter map like any other metric. Build-time only.
    pub fn register_sched_worker(&self, worker: usize) -> SchedCounters {
        SchedCounters {
            runs: self.register(&format!("sched.worker{worker}.runs")),
            steals: self.register(&format!("sched.worker{worker}.steals")),
            parks: self.register(&format!("sched.worker{worker}.parks")),
        }
    }

    /// Record an acked root.
    pub fn root_acked(&self) {
        self.inner.acked_roots.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a failed (to-be-replayed) root.
    pub fn root_failed(&self) {
        self.inner.failed_roots.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a replayed root.
    pub fn root_replayed(&self) {
        self.inner.replayed_roots.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` injected link drops.
    pub fn links_dropped(&self, n: u64) {
        self.inner.dropped_links.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a task panic (caught by the supervision layer).
    pub fn task_panic(&self) {
        self.inner.task_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a supervised task restart.
    pub fn task_restart(&self) {
        self.inner.task_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a root quarantined to a dead-letter output.
    pub fn root_quarantined(&self) {
        self.inner.quarantined_roots.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an escalation (a task exhausted its restart budget).
    pub fn escalated(&self) {
        self.inner.escalations.fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable view of every counter, histogram, gauge, and root stat
    /// at this instant.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .registry
            .lock()
            .unwrap()
            .iter()
            .map(|(name, cells)| (name.clone(), cells.sum()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| (name.clone(), h.summary()))
            .collect();
        let links = self
            .inner
            .links
            .lock()
            .unwrap()
            .iter()
            .map(|(name, l)| {
                (
                    name.clone(),
                    LinkSnapshot {
                        depth: l.depth(),
                        high_water: l.high_water(),
                        stalls: l.stalls(),
                        stall_ns: l.stall_ns(),
                    },
                )
            })
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let (allocs, bytes) = crate::alloc_stats::totals();
        MetricsSnapshot {
            counters,
            histograms,
            links,
            gauges,
            allocs,
            bytes,
            acked_roots: self.inner.acked_roots.load(Ordering::Relaxed),
            failed_roots: self.inner.failed_roots.load(Ordering::Relaxed),
            replayed_roots: self.inner.replayed_roots.load(Ordering::Relaxed),
            dropped_links: self.inner.dropped_links.load(Ordering::Relaxed),
            task_panics: self.inner.task_panics.load(Ordering::Relaxed),
            task_restarts: self.inner.task_restarts.load(Ordering::Relaxed),
            quarantined_roots: self.inner.quarantined_roots.load(Ordering::Relaxed),
            escalations: self.inner.escalations.load(Ordering::Relaxed),
        }
    }
}

/// p50/p90/p99 summary of one histogram (units are whatever the
/// recorder fed in — the executor records microseconds for `*_us`
/// names and tuples-per-batch for `*.batch_fill`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Point-in-time view of one link gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// Batches currently queued.
    pub depth: u64,
    /// Maximum queued batches ever observed (high-water mark).
    pub high_water: u64,
    /// Bounded sends that found the queue full (backpressure events).
    pub stalls: u64,
    /// Total nanoseconds senders spent blocked on full queues.
    pub stall_ns: u64,
}

/// A point-in-time copy of all metrics, detached from the live cells.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Named counters, in name order.
    pub counters: BTreeMap<String, u64>,
    /// Named latency/occupancy histograms, in name order.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Named link gauges (queue depth + backpressure), in name order.
    pub links: BTreeMap<String, LinkSnapshot>,
    /// Named scalar gauges (watermarks, watermark lag), in name order.
    pub gauges: BTreeMap<String, u64>,
    /// Cumulative process allocations at snapshot time (see
    /// [`crate::alloc_stats`]); diff two snapshots to meter a region.
    pub allocs: u64,
    /// Cumulative bytes requested from the allocator at snapshot time.
    pub bytes: u64,
    /// Roots fully acked.
    pub acked_roots: u64,
    /// Roots failed (explicitly or by timeout).
    pub failed_roots: u64,
    /// Roots replayed by spouts.
    pub replayed_roots: u64,
    /// Tuples dropped by link failure injection.
    pub dropped_links: u64,
    /// Panics caught by the supervision layer (injected or genuine).
    pub task_panics: u64,
    /// Supervised task restarts granted.
    pub task_restarts: u64,
    /// Roots quarantined to dead-letter outputs.
    pub quarantined_roots: u64,
    /// Tasks that exhausted their restart budget (topology failures).
    pub escalations: u64,
}

impl MetricsSnapshot {
    /// Value of a named counter (0 when never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Summary of a named histogram (`None` when never registered).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Gauge of a named link (`None` when never registered).
    pub fn link(&self, name: &str) -> Option<&LinkSnapshot> {
        self.links.get(name)
    }

    /// Reading of a named scalar gauge (`None` when never registered).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Total backpressure stall time across every link, in seconds.
    pub fn total_stall_secs(&self) -> f64 {
        self.links.values().map(|l| l.stall_ns as f64 / 1e9).sum()
    }

    /// Render as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape_json(k));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                escape_json(k),
                h.count,
                json_f64(h.p50),
                json_f64(h.p90),
                json_f64(h.p99)
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"links\": {");
        for (i, (k, l)) in self.links.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"depth\": {}, \"high_water\": {}, \"stalls\": {}, \
                 \"stall_ns\": {}}}",
                escape_json(k),
                l.depth,
                l.high_water,
                l.stalls,
                l.stall_ns
            );
        }
        if !self.links.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape_json(k));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "}},\n  \"allocs\": {},\n  \"bytes\": {},\n  \
             \"acked_roots\": {},\n  \"failed_roots\": {},\n  \
             \"replayed_roots\": {},\n  \"dropped_links\": {},\n  \
             \"task_panics\": {},\n  \"task_restarts\": {},\n  \
             \"quarantined_roots\": {},\n  \"escalations\": {}\n}}",
            self.allocs,
            self.bytes,
            self.acked_roots,
            self.failed_roots,
            self.replayed_roots,
            self.dropped_links,
            self.task_panics,
            self.task_restarts,
            self.quarantined_roots,
            self.escalations
        );
        out
    }
}

/// Render an f64 as JSON (NaN/∞ have no JSON encoding; clamp to 0).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".into()
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn handles_share_cells_by_name() {
        let m = Metrics::new();
        let a = m.register("x.emitted");
        let b = m.register("x.emitted");
        a.add(3);
        b.add(4);
        assert_eq!(a.value(), 7);
        assert_eq!(m.snapshot().counter("x.emitted"), 7);
        assert_eq!(m.snapshot().counter("missing"), 0);
    }

    #[test]
    fn concurrent_adds_do_not_lose_counts() {
        let m = Metrics::new();
        let mut joins = Vec::new();
        for _ in 0..8 {
            let h = m.register("hot");
            joins.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    h.add(1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(m.snapshot().counter("hot"), 80_000);
    }

    #[test]
    fn root_stats_roundtrip_through_snapshot() {
        let m = Metrics::new();
        m.root_acked();
        m.root_failed();
        m.root_failed();
        m.root_replayed();
        m.links_dropped(3);
        m.task_panic();
        m.task_panic();
        m.task_restart();
        m.root_quarantined();
        m.escalated();
        let s = m.snapshot();
        assert_eq!(
            (s.acked_roots, s.failed_roots, s.replayed_roots, s.dropped_links),
            (1, 2, 1, 3)
        );
        assert_eq!(
            (s.task_panics, s.task_restarts, s.quarantined_roots, s.escalations),
            (2, 1, 1, 1)
        );
        let json = s.to_json();
        for key in ["task_panics", "task_restarts", "quarantined_roots", "escalations"] {
            assert!(json.contains(&format!("\"{key}\"")), "JSON lost {key}");
        }
    }

    #[test]
    fn snapshot_json_escapes_and_brackets() {
        let m = Metrics::new();
        m.register("a\"b").add(1);
        let json = m.snapshot().to_json();
        assert!(json.contains("\\\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn histograms_aggregate_across_registrants_and_report_quantiles() {
        let m = Metrics::new();
        let a = m.register_histogram("comp.execute_us");
        let b = m.register_histogram("comp.execute_us");
        for i in 1..=1_000 {
            a.record(i as f64);
        }
        b.record(100_000.0); // one outlier from another task
        assert_eq!(a.count(), 1_001);
        let s = m.snapshot();
        let h = s.histogram("comp.execute_us").unwrap();
        assert_eq!(h.count, 1_001);
        assert!((h.p50 - 500.0).abs() <= 0.01 * 1_001.0 + 2.0, "p50 = {}", h.p50);
        assert!(h.p99 >= h.p90 && h.p90 >= h.p50);
        assert!(s.histogram("missing").is_none());
        // Quantiles survive JSON rendering.
        let json = s.to_json();
        assert!(json.contains("\"comp.execute_us\""));
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn empty_histogram_snapshots_as_zeros() {
        let m = Metrics::new();
        m.register_histogram("never.recorded");
        let h = *m.snapshot().histogram("never.recorded").unwrap();
        assert_eq!(h, HistogramSummary { count: 0, p50: 0.0, p90: 0.0, p99: 0.0 });
    }

    #[test]
    fn link_registry_roundtrips_through_snapshot() {
        let m = Metrics::new();
        let l = m.register_link("sink.input");
        let same = m.register_link("sink.input");
        l.on_send();
        same.on_send();
        l.on_recv();
        l.on_stall(1_500);
        let s = m.snapshot();
        let snap = s.link("sink.input").unwrap();
        assert_eq!(snap.depth, 1);
        assert_eq!(snap.high_water, 2);
        assert_eq!(snap.stalls, 1);
        assert_eq!(snap.stall_ns, 1_500);
        assert!(s.total_stall_secs() > 0.0);
        assert!(s.to_json().contains("\"high_water\": 2"));
    }

    #[test]
    fn gauges_last_write_wins_and_render() {
        let m = Metrics::new();
        let a = m.register_gauge("win.watermark");
        let b = m.register_gauge("win.watermark");
        a.set(10);
        b.set(25);
        assert_eq!(a.get(), 25, "same-name registrations share one cell");
        let s = m.snapshot();
        assert_eq!(s.gauge("win.watermark"), Some(25));
        assert_eq!(s.gauge("missing"), None);
        assert!(s.to_json().contains("\"gauges\""));
        assert!(s.to_json().contains("\"win.watermark\": 25"));
    }

    #[test]
    fn sampler_gates_every_nth() {
        let mut s = Sampler::new(4);
        assert!(s.enabled());
        let hits: Vec<bool> = (0..9).map(|_| s.hit()).collect();
        assert_eq!(hits, [true, false, false, false, true, false, false, false, true]);
        let mut off = Sampler::new(0);
        assert!(!off.enabled());
        assert!((0..100).all(|_| !off.hit()));
    }
}
