//! Topology metrics: pre-registered, allocation-free counters.
//!
//! The emit path is the hottest loop in the executor, so counters there
//! must cost one atomic add — no `String` key construction, no map
//! lookup, no mutex. Components resolve their counter names ONCE at
//! topology-build (worker-spawn) time via [`Metrics::register`], which
//! interns the name and hands back a [`CounterHandle`]: an `Arc` to a
//! cache-line-sharded bank of `AtomicU64` cells plus a fixed shard
//! index. [`CounterHandle::add`] is then a single relaxed `fetch_add`
//! on a shard picked round-robin at registration, so concurrent workers
//! bumping the same logical counter usually touch different cache
//! lines.
//!
//! Reads are rare (end-of-run, tests, benches) and go through
//! [`Metrics::snapshot`], which sums the shards into an immutable,
//! serialisable [`MetricsSnapshot`].

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shards per counter: eight padded cells cover typical worker counts.
const SHARDS: usize = 8;

/// One `AtomicU64` padded out to its own cache line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// The sharded storage behind one logical counter.
#[derive(Debug, Default)]
struct CounterCells {
    shards: [PaddedCell; SHARDS],
}

impl CounterCells {
    fn sum(&self) -> u64 {
        self.shards.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A pre-resolved counter: clone-cheap, lock-free, allocation-free.
///
/// Obtained from [`Metrics::register`] at build time; `add` is the only
/// thing the hot loop ever calls.
#[derive(Clone, Debug)]
pub struct CounterHandle {
    cells: Arc<CounterCells>,
    shard: usize,
}

impl CounterHandle {
    /// Increment by `delta`: one relaxed `fetch_add`, no allocation, no
    /// lock.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.cells.shards[self.shard].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current total across all shards (all registrants of this name).
    pub fn value(&self) -> u64 {
        self.cells.sum()
    }
}

/// Shared metrics sink for one topology run. Clones share storage.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    /// Interned counters: name -> cell bank. Touched only at
    /// registration and snapshot time, never per tuple.
    registry: Mutex<HashMap<String, Arc<CounterCells>>>,
    /// Round-robin shard assignment for successive registrations.
    next_shard: AtomicUsize,
    acked_roots: AtomicU64,
    failed_roots: AtomicU64,
    replayed_roots: AtomicU64,
    dropped_links: AtomicU64,
}

impl Metrics {
    /// Empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name` and return a handle bound to one shard of its cell
    /// bank. Registering the same name again returns a handle over the
    /// same cells (next shard), so totals aggregate across workers.
    /// Build-time only — allocates and locks.
    pub fn register(&self, name: &str) -> CounterHandle {
        let mut reg = self.inner.registry.lock().unwrap();
        let cells = reg
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(CounterCells::default()))
            .clone();
        let shard = self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS;
        CounterHandle { cells, shard }
    }

    /// Record an acked root.
    pub fn root_acked(&self) {
        self.inner.acked_roots.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a failed (to-be-replayed) root.
    pub fn root_failed(&self) {
        self.inner.failed_roots.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a replayed root.
    pub fn root_replayed(&self) {
        self.inner.replayed_roots.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` injected link drops.
    pub fn links_dropped(&self, n: u64) {
        self.inner.dropped_links.fetch_add(n, Ordering::Relaxed);
    }

    /// Immutable view of every counter and root stat at this instant.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .registry
            .lock()
            .unwrap()
            .iter()
            .map(|(name, cells)| (name.clone(), cells.sum()))
            .collect();
        MetricsSnapshot {
            counters,
            acked_roots: self.inner.acked_roots.load(Ordering::Relaxed),
            failed_roots: self.inner.failed_roots.load(Ordering::Relaxed),
            replayed_roots: self.inner.replayed_roots.load(Ordering::Relaxed),
            dropped_links: self.inner.dropped_links.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of all metrics, detached from the live cells.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Named counters, in name order.
    pub counters: BTreeMap<String, u64>,
    /// Roots fully acked.
    pub acked_roots: u64,
    /// Roots failed (explicitly or by timeout).
    pub failed_roots: u64,
    /// Roots replayed by spouts.
    pub replayed_roots: u64,
    /// Tuples dropped by link failure injection.
    pub dropped_links: u64,
}

impl MetricsSnapshot {
    /// Value of a named counter (0 when never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Render as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape_json(k));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "}},\n  \"acked_roots\": {},\n  \"failed_roots\": {},\n  \
             \"replayed_roots\": {},\n  \"dropped_links\": {}\n}}",
            self.acked_roots, self.failed_roots, self.replayed_roots, self.dropped_links
        );
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn handles_share_cells_by_name() {
        let m = Metrics::new();
        let a = m.register("x.emitted");
        let b = m.register("x.emitted");
        a.add(3);
        b.add(4);
        assert_eq!(a.value(), 7);
        assert_eq!(m.snapshot().counter("x.emitted"), 7);
        assert_eq!(m.snapshot().counter("missing"), 0);
    }

    #[test]
    fn concurrent_adds_do_not_lose_counts() {
        let m = Metrics::new();
        let mut joins = Vec::new();
        for _ in 0..8 {
            let h = m.register("hot");
            joins.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    h.add(1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(m.snapshot().counter("hot"), 80_000);
    }

    #[test]
    fn root_stats_roundtrip_through_snapshot() {
        let m = Metrics::new();
        m.root_acked();
        m.root_failed();
        m.root_failed();
        m.root_replayed();
        m.links_dropped(3);
        let s = m.snapshot();
        assert_eq!(
            (s.acked_roots, s.failed_roots, s.replayed_roots, s.dropped_links),
            (1, 2, 1, 3)
        );
    }

    #[test]
    fn snapshot_json_escapes_and_brackets() {
        let m = Metrics::new();
        m.register("a\"b").add(1);
        let json = m.snapshot().to_json();
        assert!(json.contains("\\\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
