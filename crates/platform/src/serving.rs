//! The serving index: a lock-free, epoch-swapped table for the Lambda
//! Architecture's stage 3 (and for every view compiled by
//! [`crate::query`]).
//!
//! The paper's serving layer "indexes batch views for low-latency
//! queries" — the operational requirement is that *many* concurrent
//! readers sustain point/merge queries while a writer (the speed layer,
//! or a batch run) publishes new views. A mutex-guarded map serialises
//! every reader behind the writer (and behind each other: a lock
//! convoy); [`ServingView`] removes both:
//!
//! * **Readers are lock-free.** Each published generation is an
//!   immutable [`EpochData`] behind an `Arc`, installed into one slot
//!   of a small ring. A reader *pins* the current slot (one sharded
//!   atomic increment), re-checks that the slot is still current, reads
//!   straight from the immutable table, and unpins. No mutex, no CAS
//!   retry loop on the hot path, and point queries never touch a shared
//!   reference count — sixteen readers scale because the only shared
//!   writes land on per-thread indicator shards.
//! * **The writer never blocks readers.** Publishing builds the next
//!   epoch off to the side, waits for the *oldest* slot in the ring to
//!   drain (readers pinned there finished `SLOTS` generations ago),
//!   installs the new epoch there, and swings the `current` index.
//!   In-flight readers keep the epoch they pinned; new readers see the
//!   new one. Epochs are therefore monotonically non-decreasing per
//!   reader and a read is never torn across generations.
//!
//! The safety argument for the two `unsafe` blocks is spelled out
//! inline; `tests/serving.rs` drives seeded writer/reader interleavings
//! (including full ring wrap-arounds) to enforce the protocol's two
//! observable guarantees: no torn reads, monotone epochs.
//!
//! [`QueryHandle`] composes two views — batch and speed — into the
//! paper's stage-5 merged query, tagging every answer with its epoch
//! and [`Staleness`] metadata.

use crate::metrics::{GaugeHandle, HistogramHandle, Metrics};
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Ring length: a publishing writer reuses the slot `SLOTS - 1`
/// generations old, so a reader may lag the writer by that many
/// publishes before the writer has to wait for it to unpin.
const SLOTS: usize = 8;

/// Read-indicator shards: readers on different threads pin through
/// different cache lines, so pinning never becomes the convoy it
/// replaces.
const INDICATOR_SHARDS: usize = 8;

/// One in this many point queries gets a clock read + histogram insert
/// when the view is instrumented (the `{view}.query_us` metric).
const QUERY_SAMPLE_EVERY: u64 = 64;

/// One immutable published generation of a serving view.
#[derive(Debug)]
pub struct EpochData<V> {
    /// Generation number: 0 is the empty pre-publish epoch; `publish`
    /// increments by one.
    pub epoch: u64,
    /// Progress marker the writer stamped on this generation — for the
    /// Lambda layers it is "events ingested when this view was built",
    /// for windowed views the served event-time frontier. Readers turn
    /// it into [`Staleness::behind`].
    pub covers: u64,
    /// When this generation was swapped in.
    pub published: Instant,
    /// The indexed view itself.
    pub table: HashMap<String, V>,
}

/// A padded per-shard counter (its own cache line).
#[repr(align(64))]
#[derive(Default)]
struct PaddedCounter(AtomicUsize);

/// RCU-style read indicator: `pin` marks a reader inside the slot,
/// `quiescent` tells the writer no reader remains.
#[derive(Default)]
struct ReadIndicator {
    shards: [PaddedCounter; INDICATOR_SHARDS],
}

impl ReadIndicator {
    fn pin(&self, shard: usize) {
        self.shards[shard].0.fetch_add(1, Ordering::SeqCst);
    }

    fn unpin(&self, shard: usize) {
        self.shards[shard].0.fetch_sub(1, Ordering::Release);
    }

    fn quiescent(&self) -> bool {
        self.shards.iter().all(|s| s.0.load(Ordering::SeqCst) == 0)
    }
}

struct Slot<V> {
    readers: ReadIndicator,
    /// Only the writer mutates this, and only after `readers` is
    /// quiescent *and* `current` points elsewhere — see `publish`.
    data: UnsafeCell<Arc<EpochData<V>>>,
}

struct Inner<V> {
    slots: Box<[Slot<V>]>,
    /// Index of the slot holding the newest published epoch.
    current: AtomicUsize,
    /// Serialises writers; holds the last epoch number handed out.
    writer: Mutex<u64>,
    /// Sampled point-query latency (`{view}.query_us`), when
    /// instrumented.
    query_us: Option<HistogramHandle>,
    /// Published generation number (`{view}.epoch`), when instrumented.
    epoch_gauge: Option<GaugeHandle>,
    /// Per-shard sampling counters for `query_us`.
    samples: [PaddedCounter; INDICATOR_SHARDS],
}

// SAFETY: the UnsafeCell is the only non-Sync member. All mutation goes
// through `publish`, which (a) serialises writers behind `writer` and
// (b) waits for the slot's read indicator to drain before writing, so a
// `&EpochData` handed to a pinned reader is never aliased by a write.
// The acquire/release edges are carried by the SeqCst operations on
// `current` and the indicator counters (see `pinned`/`publish`).
unsafe impl<V: Send + Sync> Send for Inner<V> {}
unsafe impl<V: Send + Sync> Sync for Inner<V> {}

/// Reader shards are assigned round-robin per thread, once.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static READER_SHARD: usize =
        NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % INDICATOR_SHARDS;
}

/// A lock-free, epoch-swapped serving index. Clone-cheap (`Arc`
/// inside): hand one clone to the publishing side and as many as you
/// like to readers.
pub struct ServingView<V> {
    inner: Arc<Inner<V>>,
}

impl<V> Clone for ServingView<V> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<V: Send + Sync> Default for ServingView<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Send + Sync> ServingView<V> {
    /// An empty view at epoch 0.
    pub fn new() -> Self {
        Self::build(None, None)
    }

    /// An empty view reporting into `metrics`: point-query latency as
    /// the `{name}.query_us` histogram (sampled 1-in-64) and the
    /// published generation as the `{name}.epoch` gauge, both visible
    /// in [`crate::MetricsSnapshot`].
    pub fn instrumented(name: &str, metrics: &Metrics) -> Self {
        Self::build(
            Some(metrics.register_histogram(&format!("{name}.query_us"))),
            Some(metrics.register_gauge(&format!("{name}.epoch"))),
        )
    }

    fn build(query_us: Option<HistogramHandle>, epoch_gauge: Option<GaugeHandle>) -> Self {
        let zero = Arc::new(EpochData {
            epoch: 0,
            covers: 0,
            published: Instant::now(),
            table: HashMap::new(),
        });
        let slots = (0..SLOTS)
            .map(|_| Slot {
                readers: ReadIndicator::default(),
                data: UnsafeCell::new(Arc::clone(&zero)),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            inner: Arc::new(Inner {
                slots,
                current: AtomicUsize::new(0),
                writer: Mutex::new(0),
                query_us,
                epoch_gauge,
                samples: Default::default(),
            }),
        }
    }

    /// Run `f` against the current epoch while pinned to its slot. The
    /// closure must be short — a pinned reader in the *oldest* slot is
    /// the only thing that can make a writer wait.
    fn pinned<R>(&self, f: impl FnOnce(&Arc<EpochData<V>>) -> R) -> R {
        let shard = READER_SHARD.with(|s| *s);
        loop {
            let i = self.inner.current.load(Ordering::SeqCst);
            let slot = &self.inner.slots[i];
            slot.readers.pin(shard);
            if self.inner.current.load(Ordering::SeqCst) == i {
                // SAFETY: the re-check read `current == i` *after* the
                // pin. `publish` stores `current = i` only after fully
                // writing the slot's data, and it never rewrites a slot
                // while its indicator is non-zero — so between pin and
                // unpin this reference is valid and unaliased by
                // writes. (A reader that pinned a slot the writer was
                // about to reuse fails this re-check — the writer moved
                // `current` away generations ago — and retries without
                // ever dereferencing.)
                let r = f(unsafe { &*slot.data.get() });
                slot.readers.unpin(shard);
                return r;
            }
            // The writer republished between load and pin: retry.
            slot.readers.unpin(shard);
        }
    }

    /// Publish the next generation: `table` becomes the new epoch,
    /// stamped with the `covers` progress marker. Returns the new epoch
    /// number. Readers are never blocked; concurrent publishers
    /// serialise behind an internal writer lock.
    pub fn publish(&self, table: HashMap<String, V>, covers: u64) -> u64 {
        let mut last = self.inner.writer.lock().unwrap();
        *last += 1;
        let epoch = *last;
        let data = Arc::new(EpochData { epoch, covers, published: Instant::now(), table });
        let cur = self.inner.current.load(Ordering::SeqCst);
        let next = (cur + 1) % SLOTS;
        let slot = &self.inner.slots[next];
        // Grace period: wait out readers still pinned to the ring's
        // oldest generation. They pinned when this slot was current,
        // `SLOTS - 1` publishes ago; reads are single point lookups, so
        // in practice this never spins. When it does (a reader was
        // descheduled mid-pin on an oversubscribed box), yield instead
        // of burning the timeslice the reader needs to unpin.
        let mut spins = 0u32;
        while !slot.readers.quiescent() {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // SAFETY: writers are serialised by the `writer` lock, the slot
        // is not `current` (readers starting now pin `cur`), and its
        // indicator just read quiescent — any reader that increments it
        // from here on will fail the `current == next` re-check until
        // the store below, which happens after this write completes.
        unsafe {
            *slot.data.get() = data;
        }
        self.inner.current.store(next, Ordering::SeqCst);
        if let Some(g) = &self.inner.epoch_gauge {
            g.set(epoch);
        }
        epoch
    }

    /// The current epoch number (0 before the first publish).
    pub fn epoch(&self) -> u64 {
        self.pinned(|d| d.epoch)
    }

    /// A shared handle to the entire current generation (for merge
    /// queries, iteration, or holding a consistent view across several
    /// lookups). The `Arc` keeps the epoch alive after the writer moves
    /// on.
    pub fn snapshot(&self) -> Arc<EpochData<V>> {
        self.pinned(Arc::clone)
    }
}

impl<V: Clone + Send + Sync> ServingView<V> {
    /// Point query: the value under `key` in the current epoch, plus
    /// the epoch's metadata, read coherently under one pin. Records
    /// sampled latency into `{view}.query_us` when instrumented.
    pub fn get(&self, key: &str) -> ViewRead<V> {
        let sample = self.inner.query_us.is_some() && {
            let shard = READER_SHARD.with(|s| *s);
            (self.inner.samples[shard].0.fetch_add(1, Ordering::Relaxed) as u64)
                .is_multiple_of(QUERY_SAMPLE_EVERY)
        };
        let t0 = sample.then(Instant::now);
        let read = self.pinned(|d| ViewRead {
            value: d.table.get(key).cloned(),
            epoch: d.epoch,
            covers: d.covers,
            age: d.published.elapsed(),
        });
        if let (Some(t0), Some(h)) = (t0, &self.inner.query_us) {
            h.record(t0.elapsed().as_secs_f64() * 1e6);
        }
        read
    }
}

/// One coherent point read: the value (if the key is indexed) and the
/// generation it came from.
#[derive(Clone, Debug)]
pub struct ViewRead<V> {
    /// The indexed value, `None` when the key is absent from this epoch.
    pub value: Option<V>,
    /// Epoch the read observed.
    pub epoch: u64,
    /// The epoch's progress marker (see [`EpochData::covers`]).
    pub covers: u64,
    /// Time since the epoch was published.
    pub age: Duration,
}

/// Which Lambda layer answers a [`QueryHandle::query`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layer {
    /// The batch view alone — stale by whatever the speed layer holds.
    Batch,
    /// The real-time view alone — only events since the batch horizon.
    Speed,
    /// Stage 5 of Figure 1: batch + speed, the freshest exact answer
    /// published.
    Merged,
}

/// How far behind the live stream an answer is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Staleness {
    /// Events ingested but not reflected in this answer — `None` when
    /// the serving side has no ingest watermark to compare against.
    pub behind: Option<u64>,
    /// Time since the answering epoch was published.
    pub age: Duration,
}

/// A layered query answer with its provenance.
#[derive(Clone, Debug)]
pub struct QueryResult<V> {
    /// The answer (missing keys read as the layer's zero).
    pub value: V,
    /// Epoch of the view that answered; for [`Layer::Merged`] the
    /// *speed* epoch, since the real-time view bounds freshness.
    pub epoch: u64,
    /// How far behind the live stream the answer is.
    pub staleness: Staleness,
}

/// The one query front door for a keyed-count Lambda deployment:
/// batch-only, speed-only, or merged answers, each tagged with epoch
/// and staleness. Clone-cheap; safe to share across reader threads.
#[derive(Clone)]
pub struct QueryHandle {
    batch: ServingView<i64>,
    speed: ServingView<i64>,
    ingested: Arc<AtomicU64>,
}

impl QueryHandle {
    /// A handle over the two serving views and the deployment's ingest
    /// counter (the staleness reference point).
    pub fn new(batch: ServingView<i64>, speed: ServingView<i64>, ingested: Arc<AtomicU64>) -> Self {
        Self { batch, speed, ingested }
    }

    /// Answer a point query from the chosen layer. Lock-free: the
    /// reader path touches only epoch-swapped immutable tables.
    pub fn query(&self, key: &str, layer: Layer) -> QueryResult<i64> {
        let ingested = self.ingested.load(Ordering::Relaxed);
        let behind = |covers: u64| Some(ingested.saturating_sub(covers));
        match layer {
            Layer::Batch => {
                let b = self.batch.get(key);
                QueryResult {
                    value: b.value.unwrap_or(0),
                    epoch: b.epoch,
                    staleness: Staleness { behind: behind(b.covers), age: b.age },
                }
            }
            Layer::Speed => {
                let s = self.speed.get(key);
                QueryResult {
                    value: s.value.unwrap_or(0),
                    epoch: s.epoch,
                    staleness: Staleness { behind: behind(s.covers), age: s.age },
                }
            }
            Layer::Merged => {
                let b = self.batch.get(key);
                let s = self.speed.get(key);
                QueryResult {
                    value: b.value.unwrap_or(0) + s.value.unwrap_or(0),
                    epoch: s.epoch,
                    staleness: Staleness { behind: behind(s.covers), age: s.age },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn publish_and_point_read() {
        let view: ServingView<i64> = ServingView::new();
        assert_eq!(view.epoch(), 0);
        let r = view.get("x");
        assert!(r.value.is_none());
        assert_eq!(r.epoch, 0);
        assert_eq!(view.publish(table(&[("x", 7)]), 10), 1);
        let r = view.get("x");
        assert_eq!(r.value, Some(7));
        assert_eq!(r.epoch, 1);
        assert_eq!(r.covers, 10);
        assert!(view.get("ghost").value.is_none());
    }

    #[test]
    fn ring_wraps_past_slot_count() {
        let view: ServingView<i64> = ServingView::new();
        for e in 1..=(3 * SLOTS as u64) {
            assert_eq!(view.publish(table(&[("k", e as i64)]), e), e);
            assert_eq!(view.get("k").value, Some(e as i64));
            assert_eq!(view.epoch(), e);
        }
    }

    #[test]
    fn snapshot_outlives_later_publishes() {
        let view: ServingView<i64> = ServingView::new();
        view.publish(table(&[("k", 1)]), 1);
        let snap = view.snapshot();
        for e in 2..=20 {
            view.publish(table(&[("k", e)]), e as u64);
        }
        // The pinned-then-cloned Arc still reads the old generation.
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.table["k"], 1);
        assert_eq!(view.get("k").value, Some(20));
    }

    #[test]
    fn instrumented_view_reports_epoch_and_latency() {
        let metrics = Metrics::new();
        let view: ServingView<i64> = ServingView::instrumented("trending", &metrics);
        view.publish(table(&[("a", 1)]), 1);
        view.publish(table(&[("a", 2)]), 2);
        // Enough reads that sampling (1 in 64) must fire.
        for _ in 0..500 {
            let _ = view.get("a");
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("trending.epoch"), Some(2));
        let h = snap.histogram("trending.query_us").expect("sampled queries recorded");
        assert!(h.count > 0, "no query latencies recorded");
    }

    #[test]
    fn query_handle_layers_merge_and_report_staleness() {
        let batch = ServingView::new();
        let speed = ServingView::new();
        let ingested = Arc::new(AtomicU64::new(0));
        let h = QueryHandle::new(batch.clone(), speed.clone(), ingested.clone());
        batch.publish(table(&[("x", 100)]), 100);
        speed.publish(table(&[("x", 7)]), 107);
        ingested.store(110, Ordering::Relaxed);
        let b = h.query("x", Layer::Batch);
        assert_eq!((b.value, b.epoch, b.staleness.behind), (100, 1, Some(10)));
        let s = h.query("x", Layer::Speed);
        assert_eq!((s.value, s.staleness.behind), (7, Some(3)));
        let m = h.query("x", Layer::Merged);
        assert_eq!((m.value, m.epoch, m.staleness.behind), (107, 1, Some(3)));
        let ghost = h.query("ghost", Layer::Merged);
        assert_eq!(ghost.value, 0, "unknown keys read as zero");
    }
}
