//! Process-wide allocation accounting: a counting shim around the
//! system allocator, surfaced through [`crate::metrics::MetricsSnapshot`].
//!
//! The data plane's zero-copy claims (`Arc`-interned tuple payloads,
//! columnar frames) are allocation claims, so the runtime measures them
//! directly: every `alloc`/`realloc`/`alloc_zeroed` bumps two relaxed
//! atomics, and benchmarks difference [`totals`] across a run to report
//! `allocs_per_tuple`. Frees are not tracked — the interesting number
//! for a streaming hot loop is allocation *rate*, not live bytes.
//!
//! The counters are global to the process (there is exactly one global
//! allocator), so concurrent runs share them; diff-based measurements
//! must run serially, as the bench harness does.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// The counting shim. Installed as the crate's `#[global_allocator]`,
/// so every binary linking `sa-platform` gets accounting for free; the
/// cost is two relaxed fetch-adds per allocation.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System` for memory; the counters are
// plain relaxed atomics with no allocation or locking of their own, so
// the shim cannot recurse or change allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Cumulative `(allocations, bytes requested)` since process start.
/// Monotone; diff two readings to meter a region.
pub fn totals() -> (u64, u64) {
    (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_advance_on_allocation() {
        let (a0, b0) = totals();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let (a1, b1) = totals();
        assert!(a1 > a0, "allocation not counted");
        assert!(b1 - b0 >= 4096, "bytes under-counted: {}", b1 - b0);
        drop(v);
        let (a2, _) = totals();
        assert!(a2 >= a1, "counter went backwards");
    }
}
