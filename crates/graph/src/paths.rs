//! Dynamic bounded-length path queries — the Table-1 **Path Analysis**
//! row: "determine whether there exists a path of length ≤ ℓ between two
//! nodes in a dynamic graph" (\[79\]; application: web graph analysis).

use sa_core::{Result, SaError};
use std::collections::VecDeque;

/// A dynamic undirected graph answering `path_within(u, v, ℓ)`.
///
/// Edges can be inserted and deleted; queries run a bidirectional
/// breadth-first search bounded at `⌈ℓ/2⌉` per side, touching
/// `O(min(deg^{ℓ/2}, n))` vertices instead of `deg^ℓ` — the standard
/// practical approach for small ℓ (friend-of-friend queries).
#[derive(Clone, Debug)]
pub struct DynamicPaths {
    adj: Vec<Vec<u32>>,
    edges: u64,
}

impl DynamicPaths {
    /// Graph over vertices `0..n`.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(SaError::invalid("n", "must be positive"));
        }
        Ok(Self { adj: vec![Vec::new(); n], edges: 0 })
    }

    /// Insert an undirected edge (parallel edges are ignored).
    pub fn insert_edge(&mut self, u: u32, v: u32) -> bool {
        if u == v || self.adj[u as usize].contains(&v) {
            return false;
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.edges += 1;
        true
    }

    /// Delete an edge; returns whether it existed.
    pub fn delete_edge(&mut self, u: u32, v: u32) -> bool {
        let a = &mut self.adj[u as usize];
        let Some(pos) = a.iter().position(|&x| x == v) else {
            return false;
        };
        a.swap_remove(pos);
        let b = &mut self.adj[v as usize];
        if let Some(pos) = b.iter().position(|&x| x == u) {
            b.swap_remove(pos);
        }
        self.edges -= 1;
        true
    }

    /// Whether a path of length ≤ `l` connects `u` and `v`.
    pub fn path_within(&self, u: u32, v: u32, l: u32) -> bool {
        self.distance_within(u, v, l).is_some()
    }

    /// Exact distance if ≤ `l`, via bidirectional bounded BFS.
    pub fn distance_within(&self, u: u32, v: u32, l: u32) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        if l == 0 {
            return None;
        }
        let n = self.adj.len();
        // du/dv: distance labels per side (u32::MAX = unvisited).
        let mut du = vec![u32::MAX; n];
        let mut dv = vec![u32::MAX; n];
        du[u as usize] = 0;
        dv[v as usize] = 0;
        let mut qu = VecDeque::from([u]);
        let mut qv = VecDeque::from([v]);
        let mut best: Option<u32> = None;
        let (mut ru, mut rv) = (0u32, 0u32); // completed radii
        while ru + rv < l && (best.is_none()) {
            // Expand the smaller frontier.
            let expand_u = qu.len() <= qv.len() && !qu.is_empty() || qv.is_empty();
            let (q, dist_mine, dist_other, radius) = if expand_u {
                (&mut qu, &mut du, &dv, &mut ru)
            } else {
                (&mut qv, &mut dv, &du, &mut rv)
            };
            if q.is_empty() {
                break;
            }
            *radius += 1;
            let level = *radius;
            let mut next = VecDeque::new();
            while let Some(x) = q.pop_front() {
                for &w in &self.adj[x as usize] {
                    if dist_mine[w as usize] == u32::MAX {
                        dist_mine[w as usize] = level;
                        if dist_other[w as usize] != u32::MAX {
                            let total = level + dist_other[w as usize];
                            if total <= l {
                                best = Some(best.map_or(total, |b| b.min(total)));
                            }
                        }
                        next.push_back(w);
                    }
                }
            }
            *q = next;
        }
        best
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> u64 {
        self.edges
    }

    /// Degree of a vertex.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_queries_on_a_chain() {
        let mut g = DynamicPaths::new(10).unwrap();
        for i in 0..9u32 {
            g.insert_edge(i, i + 1);
        }
        assert!(g.path_within(0, 9, 9));
        assert!(!g.path_within(0, 9, 8));
        assert_eq!(g.distance_within(0, 9, 9), Some(9));
        assert_eq!(g.distance_within(2, 5, 10), Some(3));
        assert_eq!(g.distance_within(0, 0, 0), Some(0));
    }

    #[test]
    fn deletion_breaks_paths() {
        let mut g = DynamicPaths::new(5).unwrap();
        g.insert_edge(0, 1);
        g.insert_edge(1, 2);
        assert!(g.path_within(0, 2, 2));
        assert!(g.delete_edge(1, 2));
        assert!(!g.path_within(0, 2, 5));
        assert!(!g.delete_edge(1, 2), "double delete");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn shortcut_shortens_distance() {
        let mut g = DynamicPaths::new(8).unwrap();
        for i in 0..7u32 {
            g.insert_edge(i, i + 1);
        }
        assert_eq!(g.distance_within(0, 7, 10), Some(7));
        g.insert_edge(0, 6); // shortcut
        assert_eq!(g.distance_within(0, 7, 10), Some(2));
    }

    #[test]
    fn matches_exhaustive_bfs_on_random_dynamic_graph() {
        use std::collections::VecDeque;
        let n = 60usize;
        let mut g = DynamicPaths::new(n).unwrap();
        let mut reference: std::collections::HashSet<(u32, u32)> = Default::default();
        let mut rng = sa_core::rng::SplitMix64::new(29);
        let bfs = |edges: &std::collections::HashSet<(u32, u32)>, s: u32| {
            let mut adj = vec![Vec::new(); n];
            for &(a, b) in edges {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
            let mut dist = vec![u32::MAX; n];
            dist[s as usize] = 0;
            let mut q = VecDeque::from([s]);
            while let Some(x) = q.pop_front() {
                for &w in &adj[x as usize] {
                    if dist[w as usize] == u32::MAX {
                        dist[w as usize] = dist[x as usize] + 1;
                        q.push_back(w);
                    }
                }
            }
            dist
        };
        for step in 0..500 {
            let u = rng.next_below(n as u64) as u32;
            let v = rng.next_below(n as u64) as u32;
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if reference.contains(&key) && rng.bernoulli(0.5) {
                g.delete_edge(u, v);
                reference.remove(&key);
            } else if g.insert_edge(u, v) {
                reference.insert(key);
            }
            if step % 50 == 0 {
                let s = rng.next_below(n as u64) as u32;
                let t = rng.next_below(n as u64) as u32;
                let truth = bfs(&reference, s)[t as usize];
                for l in [1u32, 2, 4, 8] {
                    let expect = truth != u32::MAX && truth <= l;
                    assert_eq!(
                        g.path_within(s, t, l),
                        expect,
                        "step {step}: ({s},{t}) within {l}, true dist {truth}"
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_n() {
        assert!(DynamicPaths::new(0).is_err());
    }
}
