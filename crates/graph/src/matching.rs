//! Greedy maximal matching, 2-approximate vertex cover, and greedy
//! independent set over edge streams.
//!
//! The one-pass greedy matching is the foundational semi-streaming
//! result (Feigenbaum et al., the paper's \[83\]): keep an edge iff both
//! endpoints are free. The matching is maximal, hence at least half the
//! maximum; its endpoint set is a 2-approximate vertex cover (the
//! parameterized-streaming problem of Chitnis et al. \[61\]).

use sa_core::{Result, SaError};

/// One-pass greedy maximal matching.
#[derive(Clone, Debug)]
pub struct StreamingMatching {
    /// matched_to[v] = u+1 (0 = free).
    matched_to: Vec<u32>,
    matching: Vec<(u32, u32)>,
    edges_seen: u64,
}

impl StreamingMatching {
    /// Graph over vertices `0..n`.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(SaError::invalid("n", "must be positive"));
        }
        Ok(Self { matched_to: vec![0; n], matching: Vec::new(), edges_seen: 0 })
    }

    /// Process one edge; returns whether it joined the matching.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        self.edges_seen += 1;
        if u == v {
            return false;
        }
        if self.matched_to[u as usize] == 0 && self.matched_to[v as usize] == 0 {
            self.matched_to[u as usize] = v + 1;
            self.matched_to[v as usize] = u + 1;
            self.matching.push((u, v));
            true
        } else {
            false
        }
    }

    /// The matching edges.
    pub fn matching(&self) -> &[(u32, u32)] {
        &self.matching
    }

    /// Matching size (≥ half the maximum matching).
    pub fn size(&self) -> usize {
        self.matching.len()
    }

    /// The endpoints of the matching — a vertex cover at most twice the
    /// minimum.
    pub fn vertex_cover(&self) -> Vec<u32> {
        let mut vc = Vec::with_capacity(2 * self.matching.len());
        for &(u, v) in &self.matching {
            vc.push(u);
            vc.push(v);
        }
        vc
    }

    /// Whether vertex `v` is matched.
    pub fn is_matched(&self, v: u32) -> bool {
        self.matched_to[v as usize] != 0
    }

    /// Edges processed.
    pub fn edges_seen(&self) -> u64 {
        self.edges_seen
    }
}

/// Greedy independent set over an edge stream: start with all vertices
/// "in"; every arriving edge with both endpoints still in evicts one.
///
/// The survivors are an independent set of the *streamed* graph
/// (Halldórsson et al.'s streaming independent-set line, \[101\]).
#[derive(Clone, Debug)]
pub struct IndependentSet {
    in_set: Vec<bool>,
    /// Degree-ish counter used to choose which endpoint to evict.
    hits: Vec<u32>,
    n: usize,
}

impl IndependentSet {
    /// Graph over vertices `0..n`.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(SaError::invalid("n", "must be positive"));
        }
        Ok(Self { in_set: vec![true; n], hits: vec![0; n], n })
    }

    /// Process one edge.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.hits[u as usize] += 1;
        self.hits[v as usize] += 1;
        if self.in_set[u as usize] && self.in_set[v as usize] {
            // Evict the endpoint that has looked busier so far — it is
            // more likely to conflict again.
            let evict = if self.hits[u as usize] >= self.hits[v as usize] { u } else { v };
            self.in_set[evict as usize] = false;
        }
    }

    /// The surviving independent set.
    pub fn members(&self) -> Vec<u32> {
        (0..self.n as u32).filter(|&v| self.in_set[v as usize]).collect()
    }

    /// Size of the independent set.
    pub fn size(&self) -> usize {
        self.in_set.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Exact maximum matching on small graphs via DP over bitmask.
    fn max_matching_exact(n: usize, edges: &[(u32, u32)]) -> usize {
        let full = 1usize << n;
        let mut best = vec![0u8; full];
        for mask in 0..full {
            for &(u, v) in edges {
                let bu = 1 << u;
                let bv = 1 << v;
                if mask & bu == 0 && mask & bv == 0 {
                    let nm = mask | bu | bv;
                    best[nm] = best[nm].max(best[mask] + 1);
                }
            }
            // Propagate: adding unmatched vertices cannot reduce.
            for b in 0..n {
                if mask & (1 << b) == 0 {
                    let nm = mask | (1 << b);
                    best[nm] = best[nm].max(best[mask]);
                }
            }
        }
        best[full - 1] as usize
    }

    #[test]
    fn matching_is_valid_and_maximal() {
        let mut g = sa_core::generators::EdgeStreamGen::new(200, 7);
        let edges = g.uniform_edges(2_000);
        let mut m = StreamingMatching::new(200).unwrap();
        for &(u, v) in &edges {
            m.add_edge(u, v);
        }
        // Valid: no vertex twice.
        let mut seen = HashSet::new();
        for &(u, v) in m.matching() {
            assert!(seen.insert(u), "vertex {u} matched twice");
            assert!(seen.insert(v), "vertex {v} matched twice");
        }
        // Maximal: every streamed edge has a matched endpoint.
        for &(u, v) in &edges {
            assert!(m.is_matched(u) || m.is_matched(v), "edge ({u},{v}) uncovered");
        }
    }

    #[test]
    fn two_approximation_on_small_graphs() {
        for seed in 0..20u64 {
            let mut g = sa_core::generators::EdgeStreamGen::new(12, seed);
            let edges = g.uniform_edges(30);
            let mut m = StreamingMatching::new(12).unwrap();
            for &(u, v) in &edges {
                m.add_edge(u, v);
            }
            let opt = max_matching_exact(12, &edges);
            assert!(2 * m.size() >= opt, "seed {seed}: greedy {} vs opt {opt}", m.size());
        }
    }

    #[test]
    fn vertex_cover_covers_every_edge() {
        let mut g = sa_core::generators::EdgeStreamGen::new(100, 9);
        let edges = g.uniform_edges(1_000);
        let mut m = StreamingMatching::new(100).unwrap();
        for &(u, v) in &edges {
            m.add_edge(u, v);
        }
        let vc: HashSet<u32> = m.vertex_cover().into_iter().collect();
        for &(u, v) in &edges {
            assert!(vc.contains(&u) || vc.contains(&v));
        }
    }

    #[test]
    fn independent_set_is_independent() {
        let mut g = sa_core::generators::EdgeStreamGen::new(100, 11);
        let edges = g.uniform_edges(500);
        let mut is = IndependentSet::new(100).unwrap();
        for &(u, v) in &edges {
            is.add_edge(u, v);
        }
        let members: HashSet<u32> = is.members().into_iter().collect();
        assert!(!members.is_empty());
        for &(u, v) in &edges {
            assert!(
                !(members.contains(&u) && members.contains(&v)),
                "edge ({u},{v}) inside the independent set"
            );
        }
    }

    #[test]
    fn star_graph_keeps_leaves() {
        let mut is = IndependentSet::new(10).unwrap();
        for v in 1..10u32 {
            is.add_edge(0, v);
        }
        let members = is.members();
        // The hub conflicts with everyone; the 9 leaves (minus possibly
        // the first) survive.
        assert!(members.len() >= 8, "{members:?}");
        assert!(!members.contains(&0));
    }

    #[test]
    fn self_loops_ignored() {
        let mut m = StreamingMatching::new(5).unwrap();
        assert!(!m.add_edge(2, 2));
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn invalid_n() {
        assert!(StreamingMatching::new(0).is_err());
        assert!(IndependentSet::new(0).is_err());
    }
}
