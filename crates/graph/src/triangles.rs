//! Streaming triangle counting with an edge reservoir — the
//! subgraph-counting member of the Table-1 graph row (the
//! \[113\]-style "estimate structure from a random sample of the
//! stream" technique, in the TRIÈST-IMPR formulation).

use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};
use std::collections::{HashMap, HashSet};

/// Reservoir-based global triangle count estimator.
///
/// Keeps a uniform reservoir of `m` edges. When edge `(u,v)` arrives at
/// time `t`, every common neighbour of `u` and `v` *inside the
/// reservoir* witnesses a triangle; each witness adds
/// `max(1, (t−1)(t−2) / (m(m−1)))` — the inverse probability that both
/// reservoir edges of that triangle survived — giving an unbiased,
/// low-variance running estimate in `O(m)` space.
#[derive(Clone, Debug)]
pub struct TriangleCounter {
    capacity: usize,
    edges: Vec<(u32, u32)>,
    adj: HashMap<u32, HashSet<u32>>,
    estimate: f64,
    t: u64,
    rng: SplitMix64,
}

impl TriangleCounter {
    /// Edge reservoir of `m ≥ 6` edges.
    pub fn new(m: usize) -> Result<Self> {
        if m < 6 {
            return Err(SaError::invalid("m", "reservoir must hold at least 6 edges"));
        }
        Ok(Self {
            capacity: m,
            edges: Vec::with_capacity(m),
            adj: HashMap::new(),
            estimate: 0.0,
            t: 0,
            rng: SplitMix64::new(0x7121),
        })
    }

    /// Use a specific RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::new(seed);
        self
    }

    fn link(&mut self, u: u32, v: u32) {
        self.adj.entry(u).or_default().insert(v);
        self.adj.entry(v).or_default().insert(u);
    }

    fn unlink(&mut self, u: u32, v: u32) {
        if let Some(s) = self.adj.get_mut(&u) {
            s.remove(&v);
            if s.is_empty() {
                self.adj.remove(&u);
            }
        }
        if let Some(s) = self.adj.get_mut(&v) {
            s.remove(&u);
            if s.is_empty() {
                self.adj.remove(&v);
            }
        }
    }

    /// Process one edge of the stream.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        self.t += 1;
        // Count triangles this edge closes within the reservoir, with
        // the TRIÈST-IMPR importance weight.
        let weight = {
            let t = self.t as f64;
            let m = self.capacity as f64;
            (((t - 1.0) * (t - 2.0)) / (m * (m - 1.0))).max(1.0)
        };
        if let (Some(nu), Some(nv)) = (self.adj.get(&u), self.adj.get(&v)) {
            let (small, large) = if nu.len() <= nv.len() { (nu, nv) } else { (nv, nu) };
            let common = small.iter().filter(|x| large.contains(x)).count();
            self.estimate += weight * common as f64;
        }
        // Reservoir update.
        if self.edges.len() < self.capacity {
            self.edges.push((u, v));
            self.link(u, v);
        } else if self.rng.next_below(self.t) < self.capacity as u64 {
            let slot = self.rng.index(self.capacity);
            let (ou, ov) = self.edges[slot];
            self.unlink(ou, ov);
            self.edges[slot] = (u, v);
            self.link(u, v);
        }
    }

    /// Current global triangle estimate.
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// Edges seen.
    pub fn edges_seen(&self) -> u64 {
        self.t
    }

    /// Edges stored.
    pub fn reservoir_size(&self) -> usize {
        self.edges.len()
    }
}

/// Exact triangle count (for tests/ground truth): O(m^{3/2}).
pub fn exact_triangles(edges: &[(u32, u32)]) -> u64 {
    let mut adj: HashMap<u32, HashSet<u32>> = HashMap::new();
    for &(u, v) in edges {
        if u != v {
            adj.entry(u).or_default().insert(v);
            adj.entry(v).or_default().insert(u);
        }
    }
    let mut count = 0u64;
    for (&u, nu) in &adj {
        for &v in nu {
            if v > u {
                if let Some(nv) = adj.get(&v) {
                    let (s, l) = if nu.len() <= nv.len() { (nu, nv) } else { (nv, nu) };
                    count += s.iter().filter(|&&w| w > v && l.contains(&w)).count() as u64;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::stats::relative_error;

    #[test]
    fn exact_counter_on_known_graphs() {
        // Triangle.
        assert_eq!(exact_triangles(&[(0, 1), (1, 2), (2, 0)]), 1);
        // K4 has 4 triangles.
        let k4 = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        assert_eq!(exact_triangles(&k4), 4);
        // Path has none.
        assert_eq!(exact_triangles(&[(0, 1), (1, 2), (2, 3)]), 0);
    }

    #[test]
    fn full_reservoir_is_exact() {
        let mut g = sa_core::generators::EdgeStreamGen::new(50, 3);
        // Dedup: a repeated edge would legitimately re-close its
        // triangles in the streaming model, while the exact reference
        // counts the simple graph.
        let mut seen = std::collections::HashSet::new();
        let edges: Vec<(u32, u32)> = g
            .planted_clique(8, 300)
            .into_iter()
            .filter(|&(u, v)| seen.insert((u.min(v), u.max(v))))
            .collect();
        let mut tc = TriangleCounter::new(edges.len().max(6)).unwrap();
        for &(u, v) in &edges {
            tc.add_edge(u, v);
        }
        // Reservoir ≥ stream: every triangle is counted exactly once,
        // at its closing edge, with weight 1.
        let truth = exact_triangles(&edges) as f64;
        assert_eq!(tc.estimate(), truth);
    }

    #[test]
    fn sampled_estimate_close_on_clique_graph() {
        let mut g = sa_core::generators::EdgeStreamGen::new(300, 5);
        let edges = g.planted_clique(30, 3_000);
        let truth = exact_triangles(&edges) as f64;
        let mut total_err = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let mut tc = TriangleCounter::new(1_500).unwrap().with_seed(seed);
            for &(u, v) in &edges {
                tc.add_edge(u, v);
            }
            total_err += relative_error(tc.estimate(), truth);
        }
        let mean_err = total_err / runs as f64;
        assert!(mean_err < 0.25, "mean err {mean_err} (truth {truth})");
    }

    #[test]
    fn triangle_free_graph_estimates_near_zero() {
        // Bipartite graph: no triangles.
        let mut edges = Vec::new();
        for u in 0..50u32 {
            for v in 50..80u32 {
                if (u + v) % 3 == 0 {
                    edges.push((u, v));
                }
            }
        }
        let mut tc = TriangleCounter::new(100).unwrap();
        for &(u, v) in &edges {
            tc.add_edge(u, v);
        }
        assert_eq!(tc.estimate(), 0.0);
    }

    #[test]
    fn space_bounded() {
        let mut g = sa_core::generators::EdgeStreamGen::new(1_000, 7);
        let mut tc = TriangleCounter::new(500).unwrap();
        for (u, v) in g.uniform_edges(100_000) {
            tc.add_edge(u, v);
        }
        assert_eq!(tc.reservoir_size(), 500);
        assert_eq!(tc.edges_seen(), 100_000);
    }

    #[test]
    fn invalid_m() {
        assert!(TriangleCounter::new(2).is_err());
    }
}
