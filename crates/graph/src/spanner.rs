//! Greedy streaming spanner construction (the "spanners" item of the
//! Table-1 graph row — Ahn/Guha/McGregor \[35\] study the sketching
//! variant; the classic greedy works unchanged on streams).

use sa_core::{Result, SaError};
use std::collections::VecDeque;

/// α-spanner: a subgraph preserving all distances up to factor `α`.
///
/// Greedy rule — keep an arriving edge `(u,v)` iff the current spanner
/// distance between `u` and `v` exceeds `α` (checked by a
/// depth-bounded BFS over the retained edges). Every kept-edge decision
/// certifies the stretch bound, and for `α = 2k−1` the retained graph
/// has girth > 2k−1, hence `O(n^{1+1/k})` edges.
#[derive(Clone, Debug)]
pub struct GreedySpanner {
    alpha: u32,
    adj: Vec<Vec<u32>>,
    kept: Vec<(u32, u32)>,
    edges_seen: u64,
}

impl GreedySpanner {
    /// Stretch factor `alpha ≥ 1` over vertices `0..n`.
    pub fn new(n: usize, alpha: u32) -> Result<Self> {
        if n == 0 {
            return Err(SaError::invalid("n", "must be positive"));
        }
        if alpha == 0 {
            return Err(SaError::invalid("alpha", "must be at least 1"));
        }
        Ok(Self { alpha, adj: vec![Vec::new(); n], kept: Vec::new(), edges_seen: 0 })
    }

    /// BFS distance from `s` to `t` over kept edges, capped at `limit`;
    /// `None` if further than `limit`.
    pub fn bounded_distance(&self, s: u32, t: u32, limit: u32) -> Option<u32> {
        if s == t {
            return Some(0);
        }
        let mut dist = vec![u32::MAX; self.adj.len()];
        dist[s as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            let du = dist[u as usize];
            if du >= limit {
                continue;
            }
            for &w in &self.adj[u as usize] {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = du + 1;
                    if w == t {
                        return Some(du + 1);
                    }
                    q.push_back(w);
                }
            }
        }
        None
    }

    /// Process one edge; returns whether it was kept in the spanner.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        self.edges_seen += 1;
        if u == v {
            return false;
        }
        if self.bounded_distance(u, v, self.alpha).is_some() {
            return false; // already α-spanned
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.kept.push((u, v));
        true
    }

    /// The spanner's edges.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.kept
    }

    /// Kept edge count.
    pub fn size(&self) -> usize {
        self.kept.len()
    }

    /// Edges processed.
    pub fn edges_seen(&self) -> u64 {
        self.edges_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Exact BFS distances over an arbitrary edge list.
    fn bfs_dist(n: usize, edges: &[(u32, u32)], s: u32) -> Vec<u32> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut dist = vec![u32::MAX; n];
        dist[s as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &w in &adj[u as usize] {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[u as usize] + 1;
                    q.push_back(w);
                }
            }
        }
        dist
    }

    #[test]
    fn stretch_bound_holds() {
        let n = 150;
        let alpha = 3;
        let mut g = sa_core::generators::EdgeStreamGen::new(n, 13);
        let edges = g.uniform_edges(2_000);
        let mut sp = GreedySpanner::new(n, alpha).unwrap();
        for &(u, v) in &edges {
            sp.add_edge(u, v);
        }
        // For sampled sources, spanner distance ≤ α × true distance.
        for s in [0u32, 17, 42, 99] {
            let true_d = bfs_dist(n, &edges, s);
            let span_d = bfs_dist(n, sp.edges(), s);
            for v in 0..n {
                if true_d[v] != u32::MAX {
                    assert!(
                        span_d[v] != u32::MAX && span_d[v] <= alpha * true_d[v],
                        "stretch violated at ({s},{v}): {} vs {}",
                        span_d[v],
                        true_d[v]
                    );
                }
            }
        }
        // The spanner must actually discard edges on a dense graph.
        assert!(sp.size() < edges.len() / 2, "kept {} of {}", sp.size(), edges.len());
    }

    #[test]
    fn alpha_one_keeps_all_simple_edges() {
        let mut sp = GreedySpanner::new(10, 1).unwrap();
        assert!(sp.add_edge(0, 1));
        assert!(sp.add_edge(1, 2));
        assert!(!sp.add_edge(0, 1), "duplicate must be rejected");
        assert!(sp.add_edge(0, 2), "α=1 keeps non-duplicate edges");
    }

    #[test]
    fn triangle_edge_dropped_at_alpha_two() {
        let mut sp = GreedySpanner::new(3, 2).unwrap();
        sp.add_edge(0, 1);
        sp.add_edge(1, 2);
        // 0–2 has spanner distance 2 ≤ α: redundant.
        assert!(!sp.add_edge(0, 2));
        assert_eq!(sp.size(), 2);
    }

    #[test]
    fn girth_property_alpha_three() {
        // α = 3 forbids cycles of length ≤ 4 in the kept graph.
        let n = 80;
        let mut g = sa_core::generators::EdgeStreamGen::new(n, 17);
        let mut sp = GreedySpanner::new(n, 3).unwrap();
        for (u, v) in g.uniform_edges(1_500) {
            sp.add_edge(u, v);
        }
        // Check no 3- or 4-cycles: for each kept edge, removing it must
        // leave distance(u,v) > 3... equivalently bounded_distance over
        // other edges; simpler: count triangles = 0.
        assert_eq!(crate::triangles::exact_triangles(sp.edges()), 0);
    }

    #[test]
    fn invalid_params() {
        assert!(GreedySpanner::new(0, 2).is_err());
        assert!(GreedySpanner::new(5, 0).is_err());
    }
}
