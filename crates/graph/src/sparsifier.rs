//! Uniform edge-sampling sparsifier and contraction min-cut — the
//! "subgraphs (sparsification)" and "computing min-cut" items of the
//! Table-1 graph row (the Ahn–Guha–McGregor \[35\] problem; we keep a
//! uniform sample per Karger's sampling theorem: sampling each edge
//! with `p ≥ Θ(log n / (ε²c))` preserves every cut to `(1±ε)` when
//! scaled by `1/p`).

use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};

/// Streaming uniform edge sampler with weight rescaling.
#[derive(Clone, Debug)]
pub struct Sparsifier {
    p: f64,
    edges: Vec<(u32, u32)>,
    n: usize,
    seen: u64,
    rng: SplitMix64,
}

impl Sparsifier {
    /// Keep each edge with probability `p ∈ (0, 1]`, over vertices `0..n`.
    pub fn new(n: usize, p: f64) -> Result<Self> {
        if n == 0 {
            return Err(SaError::invalid("n", "must be positive"));
        }
        if !(p > 0.0 && p <= 1.0) {
            return Err(SaError::invalid("p", "must be in (0,1]"));
        }
        Ok(Self { p, edges: Vec::new(), n, seen: 0, rng: SplitMix64::new(0x59A2) })
    }

    /// Use a specific RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::new(seed);
        self
    }

    /// Process one edge.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.seen += 1;
        if u != v && self.rng.bernoulli(self.p) {
            self.edges.push((u, v));
        }
    }

    /// Sampled edges (each stands for `1/p` original edges).
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// The per-edge weight `1/p` of the sparsifier.
    pub fn weight(&self) -> f64 {
        1.0 / self.p
    }

    /// Estimate of the weight of the cut separating `side` (a predicate
    /// over vertices) from its complement.
    pub fn cut_estimate<F: Fn(u32) -> bool>(&self, side: F) -> f64 {
        self.edges.iter().filter(|&&(u, v)| side(u) != side(v)).count() as f64 * self.weight()
    }

    /// Edges seen / kept.
    pub fn stats(&self) -> (u64, usize) {
        (self.seen, self.edges.len())
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// Karger's contraction algorithm on an explicit edge list, repeated
/// `trials` times; returns the minimum cut size found (in *sampled*
/// edges — multiply by the sparsifier weight for the original scale).
pub fn min_cut(n: usize, edges: &[(u32, u32)], trials: u32, seed: u64) -> usize {
    let mut rng = SplitMix64::new(seed);
    let mut best = usize::MAX;
    for _ in 0..trials {
        // Union-find contraction: contract random edges until 2 groups.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut groups = n;
        let mut order: Vec<usize> = (0..edges.len()).collect();
        rng.shuffle(&mut order);
        for &ei in &order {
            if groups <= 2 {
                break;
            }
            let (u, v) = edges[ei];
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru as usize] = rv;
                groups -= 1;
            }
        }
        if groups > 2 {
            continue; // disconnected input: cut of 0 exists
        }
        let cut =
            edges.iter().filter(|&&(u, v)| find(&mut parent, u) != find(&mut parent, v)).count();
        best = best.min(cut);
    }
    if best == usize::MAX {
        0
    } else {
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_keeps_p_fraction() {
        let mut g = sa_core::generators::EdgeStreamGen::new(100, 19);
        let mut sp = Sparsifier::new(100, 0.1).unwrap();
        for (u, v) in g.uniform_edges(50_000) {
            sp.add_edge(u, v);
        }
        let (seen, kept) = sp.stats();
        assert_eq!(seen, 50_000);
        assert!((4_500..5_500).contains(&kept), "kept {kept}");
    }

    #[test]
    fn cut_estimate_close_to_truth() {
        // Two communities of 50 with dense intra edges and exactly 200
        // cross edges.
        let mut edges = Vec::new();
        let mut rng = SplitMix64::new(23);
        for _ in 0..5_000 {
            let u = rng.next_below(50) as u32;
            let v = rng.next_below(50) as u32;
            if u != v {
                edges.push((u, v));
                edges.push((u + 50, v + 50));
            }
        }
        for i in 0..200u32 {
            edges.push((i % 50, 50 + (i * 7) % 50));
        }
        let mut sp = Sparsifier::new(100, 0.3).unwrap().with_seed(5);
        for &(u, v) in &edges {
            sp.add_edge(u, v);
        }
        let est = sp.cut_estimate(|v| v < 50);
        assert!((est - 200.0).abs() < 60.0, "cut estimate {est} vs true 200");
    }

    #[test]
    fn min_cut_on_barbell() {
        // Two K10 cliques joined by 3 edges: min cut = 3.
        let mut edges = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                edges.push((a, b));
                edges.push((a + 10, b + 10));
            }
        }
        edges.push((0, 10));
        edges.push((1, 11));
        edges.push((2, 12));
        let cut = min_cut(20, &edges, 100, 7);
        assert_eq!(cut, 3);
    }

    #[test]
    fn min_cut_disconnected_is_zero() {
        let edges = [(0u32, 1u32), (2, 3)];
        assert_eq!(min_cut(4, &edges, 10, 1), 0);
    }

    #[test]
    fn sparsified_min_cut_preserves_scale() {
        // Two K40 cliques joined by 40 edges; sample at p=0.5: the
        // scaled sparsified min cut should be within 50% of 40.
        let mut edges = Vec::new();
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                edges.push((a, b));
                edges.push((a + 40, b + 40));
            }
        }
        for i in 0..40u32 {
            edges.push((i, 40 + i));
        }
        let mut sp = Sparsifier::new(80, 0.5).unwrap().with_seed(9);
        for &(u, v) in &edges {
            sp.add_edge(u, v);
        }
        let cut = min_cut(80, sp.edges(), 200, 11) as f64 * sp.weight();
        assert!((cut - 40.0).abs() <= 20.0, "sparsified min cut {cut} vs true 40");
    }

    #[test]
    fn invalid_params() {
        assert!(Sparsifier::new(0, 0.5).is_err());
        assert!(Sparsifier::new(10, 0.0).is_err());
        assert!(Sparsifier::new(10, 1.5).is_err());
    }
}
