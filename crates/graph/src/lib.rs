//! # sa-graph
//!
//! Semi-streaming graph algorithms — the Table-1 **Graph analysis** row
//! ("matching, vertex cover, independent sets, spanners, subgraphs
//! (sparsification), computing min-cut"; application: web graph
//! analysis) and the **Path Analysis** row ("does a path of length ≤ ℓ
//! exist between two nodes in a dynamic graph").
//!
//! Edges arrive as a stream; every structure here uses `O(n·polylog n)`
//! memory (the semi-streaming budget of Feigenbaum et al., the paper's
//! \[83\]), never the full edge list:
//!
//! * [`StreamingConnectivity`] — union-find over the edge stream.
//! * [`StreamingMatching`] — greedy maximal matching (2-approximation)
//!   and the matched-vertices 2-approximate vertex cover (\[61\]).
//! * [`IndependentSet`] — greedy independent set over the edge stream.
//! * [`TriangleCounter`] — reservoir/wedge-sampling triangle estimation
//!   (the subgraph-counting line, \[113, 80\]).
//! * [`GreedySpanner`] — α-spanner by distance-threshold edge retention
//!   (\[35\]).
//! * [`Sparsifier`] + [`min_cut`] — uniform edge sampling with
//!   contraction-based min-cut on the sparsified graph (\[35, 61\]).
//! * [`DynamicPaths`] — incremental graph with bounded-length path
//!   queries (Path Analysis, \[79\]).

mod connectivity;
mod matching;
mod paths;
mod spanner;
mod sparsifier;
mod triangles;

pub use connectivity::StreamingConnectivity;
pub use matching::{IndependentSet, StreamingMatching};
pub use paths::DynamicPaths;
pub use spanner::GreedySpanner;
pub use sparsifier::{min_cut, Sparsifier};
pub use triangles::{exact_triangles, TriangleCounter};
