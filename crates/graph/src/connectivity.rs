//! Streaming connectivity via union-find: O(n) state, one pass.

use sa_core::{Result, SaError};

/// Union-find with path halving and union by size.
///
/// Processes an edge stream in O(α(n)) amortized per edge and answers
/// connectivity / component-count / component-size queries — the
/// canonical "O(n) memory suffices" semi-streaming result.
#[derive(Clone, Debug)]
pub struct StreamingConnectivity {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
    edges_seen: u64,
}

impl StreamingConnectivity {
    /// Graph over vertices `0..n`.
    pub fn new(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(SaError::invalid("n", "must be positive"));
        }
        if n > u32::MAX as usize {
            return Err(SaError::invalid("n", "too many vertices"));
        }
        Ok(Self { parent: (0..n as u32).collect(), size: vec![1; n], components: n, edges_seen: 0 })
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Process one edge; returns `true` if it connected two components.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        self.edges_seen += 1;
        let (ru, rv) = (self.find(u), self.find(v));
        if ru == rv {
            return false;
        }
        let (big, small) =
            if self.size[ru as usize] >= self.size[rv as usize] { (ru, rv) } else { (rv, ru) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Whether `u` and `v` are currently connected.
    pub fn connected(&mut self, u: u32, v: u32) -> bool {
        self.find(u) == self.find(v)
    }

    /// Number of connected components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Size of the component containing `v`.
    pub fn component_size(&mut self, v: u32) -> u32 {
        let r = self.find(v);
        self.size[r as usize]
    }

    /// Edges processed.
    pub fn edges_seen(&self) -> u64 {
        self.edges_seen
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.parent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_components() {
        let mut c = StreamingConnectivity::new(6).unwrap();
        assert_eq!(c.components(), 6);
        assert!(c.add_edge(0, 1));
        assert!(c.add_edge(2, 3));
        assert_eq!(c.components(), 4);
        assert!(!c.add_edge(1, 0), "duplicate edge joined nothing");
        assert!(c.add_edge(1, 2));
        assert_eq!(c.components(), 3);
        assert!(c.connected(0, 3));
        assert!(!c.connected(0, 4));
        assert_eq!(c.component_size(3), 4);
    }

    #[test]
    fn chain_connects_everything() {
        let n = 10_000;
        let mut c = StreamingConnectivity::new(n).unwrap();
        for i in 0..n as u32 - 1 {
            c.add_edge(i, i + 1);
        }
        assert_eq!(c.components(), 1);
        assert!(c.connected(0, n as u32 - 1));
        assert_eq!(c.component_size(42), n as u32);
    }

    #[test]
    fn random_graph_matches_expectation() {
        // G(n, m) with m = 2n ln n edges is connected w.h.p.
        let n = 1_000usize;
        let mut g = sa_core::generators::EdgeStreamGen::new(n, 5);
        let m = (2.0 * n as f64 * (n as f64).ln()) as usize;
        let mut c = StreamingConnectivity::new(n).unwrap();
        for (u, v) in g.uniform_edges(m) {
            c.add_edge(u, v);
        }
        assert_eq!(c.components(), 1);
    }

    #[test]
    fn invalid_n() {
        assert!(StreamingConnectivity::new(0).is_err());
    }
}
