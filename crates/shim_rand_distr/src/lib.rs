//! Offline stand-in for the `rand_distr` crate: the two distributions
//! this workspace's generators use (`Normal`, `Zipf`), API-compatible
//! with `rand_distr` 0.4 at the call sites in `sa-core::generators`.

use rand::RngCore;
use std::fmt;

/// A distribution that can be sampled with any [`RngCore`].
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter error for [`Normal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormalError;

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution, sampled by Box–Muller (no cached spare, so
/// sampling is stateless and `&self`).
#[derive(Clone, Copy, Debug)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// `N(mean, std_dev²)`. Errors when `std_dev` is negative or NaN.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }

    /// The distribution's standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let uniform = |rng: &mut R| (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // Box–Muller; 1-u keeps the log argument in (0, 1].
        let u1 = 1.0 - uniform(rng);
        let u2 = uniform(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Parameter error for [`Zipf`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZipfError;

impl fmt::Display for ZipfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Zipf needs n >= 1 and s > 0")
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over `{1, …, n}` with `P(k) ∝ k^(-s)`, sampled by
/// Hörmann–Derflinger rejection-inversion (O(1) per draw, no tables).
#[derive(Clone, Copy, Debug)]
pub struct Zipf<F> {
    n: F,
    s: F,
    /// H(0.5): lower end of the inversion domain.
    h_lo: F,
    /// H(n + 0.5): upper end of the inversion domain.
    h_hi: F,
}

impl Zipf<f64> {
    /// Zipf over `n` ranks with exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n < 1 || s.is_nan() || s <= 0.0 {
            return Err(ZipfError);
        }
        let nf = n as f64;
        let (h_lo, h_hi) = (big_h(0.5, s), big_h(nf + 0.5, s));
        Ok(Self { n: nf, s, h_lo, h_hi })
    }
}

/// Antiderivative of `x^(-s)` (the continuous majorant's CDF core).
fn big_h(x: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        x.ln()
    } else {
        (x.powf(1.0 - s) - 1.0) / (1.0 - s)
    }
}

fn big_h_inv(y: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-9 {
        y.exp()
    } else {
        (1.0 + (1.0 - s) * y).powf(1.0 / (1.0 - s))
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let u = self.h_lo + u01 * (self.h_hi - self.h_lo);
            let x = big_h_inv(u, self.s).clamp(0.5, self.n + 0.5);
            let k = x.round().clamp(1.0, self.n);
            // Accept when u falls inside rank k's exact mass under the
            // majorant: [H(k-0.5), H(k-0.5) + k^(-s)).
            if u - big_h(k - 0.5, self.s) < k.powf(-self.s) {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn normal_rejects_bad_sigma() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let d = Zipf::new(1000, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = vec![0u32; 1001];
        let n = 100_000;
        for _ in 0..n {
            let k = d.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&k));
            counts[k as usize] += 1;
        }
        // Rank 1 under Zipf(1.1) holds a large constant share; uniform
        // share would be 100.
        assert!(counts[1] > 10 * (n / 1000), "rank-1 count {}", counts[1]);
        assert!(counts[1] > counts[2] && counts[2] > counts[10]);
    }

    #[test]
    fn zipf_exponent_one_matches_harmonic_head() {
        let d = Zipf::new(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000usize;
        let mut c1 = 0usize;
        for _ in 0..n {
            if d.sample(&mut rng) as u64 == 1 {
                c1 += 1;
            }
        }
        // P(1) = 1/H_100 ≈ 0.1928.
        let p = c1 as f64 / n as f64;
        assert!((p - 0.1928).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
    }
}
