//! # sa-sampling
//!
//! Stream sampling — the Table-1 **Sampling** row ("obtain a
//! representative set of the stream"; application: A/B testing) and the
//! first synopsis technique of Section 2.
//!
//! * [`Reservoir`] — Vitter's Algorithm R and the skip-optimized
//!   Algorithm L (the paper's \[161\]).
//! * [`WeightedReservoir`] — Efraimidis–Spirakis A-ES exponential-jump
//!   weighted sampling (\[58\]).
//! * [`BiasedReservoir`] — Aggarwal's temporally biased reservoir for
//!   evolving streams (\[33\]).
//! * [`BernoulliSampler`] — fixed-rate sampling, the baseline.
//! * [`ChainSampler`] — Babcock–Datar–Motwani chain sampling over a
//!   sliding window (\[45\]).
//! * [`PrioritySampler`] — priority sampling over sliding windows (the
//!   Braverman–Ostrovsky–Zaniolo line, \[51\]).
//! * [`DistributedSampler`] — coordinator merging per-partition samples
//!   into one uniform sample (Cormode–Muthukrishnan–Yi–Zhang, \[69, 70\]).

mod bernoulli;
mod biased;
mod chain;
mod distributed;
mod priority;
mod reservoir;
mod weighted;

pub use bernoulli::BernoulliSampler;
pub use biased::BiasedReservoir;
pub use chain::ChainSampler;
pub use distributed::DistributedSampler;
pub use priority::PrioritySampler;
pub use reservoir::{Reservoir, ReservoirAlgo};
pub use weighted::WeightedReservoir;
