//! Chain sampling over sliding windows (Babcock, Datar, Motwani —
//! SODA 2002, the paper's \[45\]).

use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};
use std::collections::VecDeque;

/// One chain = one uniform sample of the last `w` items.
#[derive(Clone, Debug)]
struct Chain<T> {
    /// (arrival index, item); front is the current sample, the rest are
    /// pre-selected replacements for successive expirations.
    links: VecDeque<(u64, T)>,
    /// Arrival index whose item must be captured as the next link.
    awaiting: u64,
}

/// Sliding-window uniform sampling.
///
/// A plain reservoir cannot *unsample* expired items; chain sampling
/// fixes this by pre-electing, for every sampled item, the index of its
/// replacement within the following window — building a chain whose
/// expected length is O(1). `k` independent chains give a
/// with-replacement sample of size `k` of the current window.
#[derive(Clone, Debug)]
pub struct ChainSampler<T> {
    chains: Vec<Chain<T>>,
    window: u64,
    n: u64,
    rng: SplitMix64,
}

impl<T: Clone> ChainSampler<T> {
    /// `k ≥ 1` chains over a window of `window ≥ 1` most recent items.
    pub fn new(k: usize, window: u64) -> Result<Self> {
        if k == 0 {
            return Err(SaError::invalid("k", "must be positive"));
        }
        if window == 0 {
            return Err(SaError::invalid("window", "must be positive"));
        }
        Ok(Self {
            chains: vec![Chain { links: VecDeque::new(), awaiting: 0 }; k],
            window,
            n: 0,
            rng: SplitMix64::new(0xC4A1),
        })
    }

    /// Use a specific RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::new(seed);
        self
    }

    /// Offer the next stream item.
    pub fn offer(&mut self, item: T) {
        self.n += 1;
        let i = self.n; // 1-based arrival index
        let w = self.window;
        let oldest_live = i.saturating_sub(w) + 1;
        for c in 0..self.chains.len() {
            // Expire dead links from the front.
            while let Some(&(idx, _)) = self.chains[c].links.front() {
                if idx < oldest_live {
                    self.chains[c].links.pop_front();
                } else {
                    break;
                }
            }
            // Replace the whole chain with probability 1/min(i, w).
            let p_denom = i.min(w);
            if self.rng.next_below(p_denom) == 0 {
                self.chains[c].links.clear();
                self.chains[c].links.push_back((i, item.clone()));
                self.chains[c].awaiting = i + 1 + self.rng.next_below(w);
            } else if self.chains[c].awaiting == i && !self.chains[c].links.is_empty() {
                // Capture the pre-elected successor and elect the next.
                self.chains[c].links.push_back((i, item.clone()));
                self.chains[c].awaiting = i + 1 + self.rng.next_below(w);
            }
        }
    }

    /// Current with-replacement sample of the live window (one item per
    /// chain whose sample is still live).
    pub fn sample(&self) -> Vec<&T> {
        let oldest_live = self.n.saturating_sub(self.window) + 1;
        self.chains
            .iter()
            .filter_map(|c| {
                c.links.front().filter(|&&(idx, _)| idx >= oldest_live).map(|(_, item)| item)
            })
            .collect()
    }

    /// Items seen so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Total stored links across chains — the space diagnostic showing
    /// the expected O(k) chain memory.
    pub fn stored_links(&self) -> usize {
        self.chains.iter().map(|c| c.links.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_come_from_live_window() {
        let mut cs = ChainSampler::new(50, 1_000).unwrap().with_seed(5);
        for i in 0..100_000u64 {
            cs.offer(i);
        }
        for &v in cs.sample() {
            assert!(v >= 99_000, "stale sample {v}");
        }
    }

    #[test]
    fn window_sampling_is_roughly_uniform() {
        // Aggregate many runs; each window decile should get ~10%.
        let w = 1_000u64;
        let mut buckets = [0u32; 10];
        let mut total = 0u32;
        for seed in 0..30u64 {
            let mut cs = ChainSampler::new(20, w).unwrap().with_seed(seed);
            for i in 0..10_000u64 {
                cs.offer(i);
            }
            for &v in cs.sample() {
                let age = 9_999 - v;
                buckets[(age * 10 / w) as usize] += 1;
                total += 1;
            }
        }
        let expected = f64::from(total) / 10.0;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (f64::from(b) - expected).abs() < expected * 0.35,
                "decile {i}: {b} vs {expected}"
            );
        }
    }

    #[test]
    fn chains_never_empty_after_warmup() {
        let mut cs = ChainSampler::new(100, 500).unwrap().with_seed(6);
        for i in 0..5_000u64 {
            cs.offer(i);
        }
        // Every chain should produce a live sample essentially always.
        assert!(cs.sample().len() >= 95, "only {} live", cs.sample().len());
    }

    #[test]
    fn memory_is_bounded() {
        let mut cs = ChainSampler::new(100, 10_000).unwrap().with_seed(7);
        for i in 0..200_000u64 {
            cs.offer(i);
        }
        // Expected chain length is O(1); generous bound.
        assert!(cs.stored_links() < 100 * 20, "{} links", cs.stored_links());
    }

    #[test]
    fn short_stream_sample_within_it() {
        let mut cs = ChainSampler::new(10, 100).unwrap();
        for i in 0..5u64 {
            cs.offer(i);
        }
        for &v in cs.sample() {
            assert!(v < 5);
        }
    }

    #[test]
    fn invalid_params() {
        assert!(ChainSampler::<u32>::new(0, 10).is_err());
        assert!(ChainSampler::<u32>::new(10, 0).is_err());
    }
}
