//! Priority sampling over sliding windows (the Babcock–Datar–Motwani
//! "priority sample" / Braverman–Ostrovsky–Zaniolo optimal-sampling
//! lineage — the paper's \[51\]).

use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};
use std::collections::VecDeque;

/// One instance: the live item of minimum priority.
#[derive(Clone, Debug)]
struct Instance<T> {
    /// (arrival index, priority, item); priorities strictly increase from
    /// front to back, so the front is the window minimum.
    ladder: VecDeque<(u64, f64, T)>,
}

/// Sliding-window sampling via random priorities.
///
/// Every arrival draws a uniform priority; the window's sample is its
/// minimum-priority live item — uniform because every live item is
/// equally likely to hold the minimum. Only items that are a "suffix
/// minimum" can ever become the sample, so the ladder stores O(log w)
/// items in expectation. `k` instances give a with-replacement size-k
/// sample.
#[derive(Clone, Debug)]
pub struct PrioritySampler<T> {
    instances: Vec<Instance<T>>,
    window: u64,
    n: u64,
    rng: SplitMix64,
}

impl<T: Clone> PrioritySampler<T> {
    /// `k ≥ 1` instances over the last `window ≥ 1` items.
    pub fn new(k: usize, window: u64) -> Result<Self> {
        if k == 0 {
            return Err(SaError::invalid("k", "must be positive"));
        }
        if window == 0 {
            return Err(SaError::invalid("window", "must be positive"));
        }
        Ok(Self {
            instances: vec![Instance { ladder: VecDeque::new() }; k],
            window,
            n: 0,
            rng: SplitMix64::new(0x9817),
        })
    }

    /// Use a specific RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::new(seed);
        self
    }

    /// Offer the next stream item.
    pub fn offer(&mut self, item: T) {
        self.n += 1;
        let i = self.n;
        let oldest_live = i.saturating_sub(self.window) + 1;
        for inst in &mut self.instances {
            let p = self.rng.next_f64();
            // Expire the front.
            while let Some(&(idx, _, _)) = inst.ladder.front() {
                if idx < oldest_live {
                    inst.ladder.pop_front();
                } else {
                    break;
                }
            }
            // The new item beats (and thus obsoletes) every larger
            // priority at the back.
            while let Some(&(_, q, _)) = inst.ladder.back() {
                if q >= p {
                    inst.ladder.pop_back();
                } else {
                    break;
                }
            }
            inst.ladder.push_back((i, p, item.clone()));
        }
    }

    /// Current with-replacement sample (one per instance).
    pub fn sample(&self) -> Vec<&T> {
        self.instances
            .iter()
            .filter_map(|inst| inst.ladder.front().map(|(_, _, item)| item))
            .collect()
    }

    /// Items seen.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Total ladder entries — expected `O(k·log w)`.
    pub fn stored(&self) -> usize {
        self.instances.iter().map(|i| i.ladder.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_live() {
        let mut ps = PrioritySampler::new(20, 1_000).unwrap().with_seed(1);
        for i in 0..50_000u64 {
            ps.offer(i);
        }
        assert_eq!(ps.sample().len(), 20);
        for &v in ps.sample() {
            assert!(v >= 49_000, "stale {v}");
        }
    }

    #[test]
    fn uniform_over_window() {
        let w = 1_000u64;
        let mut buckets = [0u32; 10];
        let mut total = 0u32;
        for seed in 0..40u64 {
            let mut ps = PrioritySampler::new(20, w).unwrap().with_seed(seed);
            for i in 0..20_000u64 {
                ps.offer(i);
            }
            for &v in ps.sample() {
                let age = 19_999 - v;
                buckets[(age * 10 / w) as usize] += 1;
                total += 1;
            }
        }
        let expected = f64::from(total) / 10.0;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (f64::from(b) - expected).abs() < expected * 0.3,
                "decile {i}: {b} vs {expected}"
            );
        }
    }

    #[test]
    fn ladder_is_logarithmic() {
        let mut ps = PrioritySampler::new(50, 100_000).unwrap().with_seed(2);
        for i in 0..500_000u64 {
            ps.offer(i);
        }
        // E[ladder] ≈ H(w) ≈ ln(1e5) ≈ 11.5 per instance.
        let per = ps.stored() as f64 / 50.0;
        assert!(per < 30.0, "{per} entries per instance");
    }

    #[test]
    fn invalid_params() {
        assert!(PrioritySampler::<u32>::new(0, 10).is_err());
        assert!(PrioritySampler::<u32>::new(1, 0).is_err());
    }
}
