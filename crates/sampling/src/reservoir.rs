//! Uniform reservoir sampling (Vitter, TOMS 1985).

use sa_core::codec::{ByteReader, ByteWriter, CodecItem};
use sa_core::rng::SplitMix64;
use sa_core::{Merge, Result, SaError, Synopsis};

/// Which reservoir algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReservoirAlgo {
    /// Algorithm R: one random draw per item. O(n) draws.
    R,
    /// Algorithm L: geometric skips — O(k·log(n/k)) draws total, the
    /// right choice for high-velocity streams.
    L,
}

/// A fixed-size uniform sample of an unbounded stream.
///
/// After `n` items each one is retained with probability exactly `k/n`.
///
/// ```
/// use sa_sampling::{Reservoir, ReservoirAlgo};
///
/// let mut r = Reservoir::new(100, ReservoirAlgo::L).unwrap();
/// for user_id in 0..1_000_000u64 {
///     r.offer(user_id);
/// }
/// assert_eq!(r.sample().len(), 100);
/// ```
#[derive(Clone, Debug)]
pub struct Reservoir<T> {
    sample: Vec<T>,
    k: usize,
    n: u64,
    algo: ReservoirAlgo,
    rng: SplitMix64,
    /// Algorithm L state: w ∈ (0,1), items to skip.
    w: f64,
    skip: u64,
}

impl<T> Reservoir<T> {
    /// Sample size `k ≥ 1`.
    pub fn new(k: usize, algo: ReservoirAlgo) -> Result<Self> {
        if k == 0 {
            return Err(SaError::invalid("k", "must be positive"));
        }
        Ok(Self {
            sample: Vec::with_capacity(k),
            k,
            n: 0,
            algo,
            rng: SplitMix64::new(0x9E5),
            w: 1.0,
            skip: 0,
        })
    }

    /// Use a specific RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::new(seed);
        self
    }

    /// Offer one stream item.
    pub fn offer(&mut self, item: T) {
        self.n += 1;
        if self.sample.len() < self.k {
            self.sample.push(item);
            if self.sample.len() == self.k && self.algo == ReservoirAlgo::L {
                self.advance_l();
            }
            return;
        }
        match self.algo {
            ReservoirAlgo::R => {
                let j = self.rng.next_below(self.n);
                if (j as usize) < self.k {
                    self.sample[j as usize] = item;
                }
            }
            ReservoirAlgo::L => {
                if self.skip > 0 {
                    self.skip -= 1;
                    return;
                }
                let slot = self.rng.index(self.k);
                self.sample[slot] = item;
                self.advance_l();
            }
        }
    }

    /// Draw the next skip length for Algorithm L.
    fn advance_l(&mut self) {
        // w *= exp(ln(u)/k); skip ~ floor(ln(u')/ln(1-w)).
        self.w *= (self.rng.next_f64().max(f64::MIN_POSITIVE).ln() / self.k as f64).exp();
        let denom = (1.0 - self.w).ln();
        self.skip = if denom == 0.0 {
            u64::MAX
        } else {
            (self.rng.next_f64().max(f64::MIN_POSITIVE).ln() / denom).floor() as u64
        };
    }

    /// The current sample.
    pub fn sample(&self) -> &[T] {
        &self.sample
    }

    /// Items seen so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }
}

impl<T: Clone> Merge for Reservoir<T> {
    /// Merge two reservoirs into a uniform sample of the concatenated
    /// stream: each output slot comes from `self` with probability
    /// `n_self/(n_self+n_other)`.
    fn merge(&mut self, other: &Self) -> Result<()> {
        if self.k != other.k {
            return Err(SaError::IncompatibleMerge("reservoir k mismatch".into()));
        }
        let total = self.n + other.n;
        if total == 0 {
            return Ok(());
        }
        let mut merged = Vec::with_capacity(self.k);
        let mut mine: Vec<T> = self.sample.clone();
        let mut theirs: Vec<T> = other.sample.clone();
        self.rng.shuffle(&mut mine);
        self.rng.shuffle(&mut theirs);
        let want = self.k.min(mine.len() + theirs.len());
        let mut mi = mine.into_iter();
        let mut ti = theirs.into_iter();
        let p_self = self.n as f64 / total as f64;
        while merged.len() < want {
            let from_self = self.rng.bernoulli(p_self);
            let next = if from_self {
                mi.next().or_else(|| ti.next())
            } else {
                ti.next().or_else(|| mi.next())
            };
            match next {
                Some(item) => merged.push(item),
                None => break,
            }
        }
        self.sample = merged;
        self.n = total;
        Ok(())
    }
}

const SNAPSHOT_TAG: u8 = b'R';

impl<T: CodecItem> Synopsis for Reservoir<T> {
    fn snapshot(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.tag(SNAPSHOT_TAG)
            .put_u64(self.k as u64)
            .put_u64(self.n)
            .put_u8(match self.algo {
                ReservoirAlgo::R => 0,
                ReservoirAlgo::L => 1,
            })
            // The RNG state rides along, so the restored reservoir draws
            // the exact same randomness stream — recovery replays
            // deterministically.
            .put_u64(self.rng.state())
            .put_f64(self.w)
            .put_u64(self.skip);
        w.put_u64(self.sample.len() as u64);
        for item in &self.sample {
            item.encode_item(&mut w);
        }
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = ByteReader::new(bytes);
        r.expect_tag(SNAPSHOT_TAG, "Reservoir")?;
        let k = r.get_u64()? as usize;
        let n = r.get_u64()?;
        let algo = match r.get_u8()? {
            0 => ReservoirAlgo::R,
            1 => ReservoirAlgo::L,
            a => return Err(SaError::Codec(format!("unknown reservoir algorithm byte {a}"))),
        };
        let rng_state = r.get_u64()?;
        let w = r.get_f64()?;
        let skip = r.get_u64()?;
        let len = r.get_len(1)?;
        if k == 0 || len > k {
            return Err(SaError::Codec(format!("reservoir snapshot has {len} items for k={k}")));
        }
        let mut sample = Vec::with_capacity(k);
        for _ in 0..len {
            sample.push(T::decode_item(&mut r)?);
        }
        r.finish()?;
        *self = Self { sample, k, n, algo, rng: SplitMix64::new(rng_state), w, skip };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chi-square-style uniformity check: each stream decile should hold
    /// about 10% of the sample.
    fn check_uniformity(algo: ReservoirAlgo, seed: u64) {
        let k = 10_000;
        let n = 1_000_000u64;
        let mut r = Reservoir::new(k, algo).unwrap().with_seed(seed);
        for i in 0..n {
            r.offer(i);
        }
        assert_eq!(r.sample().len(), k);
        let mut buckets = [0u32; 10];
        for &v in r.sample() {
            buckets[(v * 10 / n) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            let expected = k as f64 / 10.0;
            assert!(
                (f64::from(b) - expected).abs() < expected * 0.15,
                "{algo:?} bucket {i}: {b} vs {expected}"
            );
        }
    }

    #[test]
    fn algorithm_r_is_uniform() {
        check_uniformity(ReservoirAlgo::R, 1);
    }

    #[test]
    fn algorithm_l_is_uniform() {
        check_uniformity(ReservoirAlgo::L, 2);
    }

    #[test]
    fn small_stream_kept_entirely() {
        for algo in [ReservoirAlgo::R, ReservoirAlgo::L] {
            let mut r = Reservoir::new(100, algo).unwrap();
            for i in 0..50u32 {
                r.offer(i);
            }
            let mut s = r.sample().to_vec();
            s.sort_unstable();
            assert_eq!(s, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn inclusion_probability_matches_k_over_n() {
        // Track how often item #0 survives across many runs.
        let runs = 2_000;
        let k = 10;
        let n = 100u64;
        let mut hits = 0;
        for seed in 0..runs {
            let mut r = Reservoir::new(k, ReservoirAlgo::R).unwrap().with_seed(seed);
            for i in 0..n {
                r.offer(i);
            }
            if r.sample().contains(&0) {
                hits += 1;
            }
        }
        let p = hits as f64 / runs as f64;
        let expect = k as f64 / n as f64;
        assert!((p - expect).abs() < 0.03, "p = {p}, expected {expect}");
    }

    #[test]
    fn algorithm_l_matches_r_statistically() {
        // Means of samples from a linear stream should agree.
        let n = 200_000u64;
        let mut means = Vec::new();
        for algo in [ReservoirAlgo::R, ReservoirAlgo::L] {
            let mut r = Reservoir::new(5_000, algo).unwrap().with_seed(7);
            for i in 0..n {
                r.offer(i as f64);
            }
            means.push(sa_core::stats::mean(r.sample()));
        }
        let mid = n as f64 / 2.0;
        for m in means {
            assert!((m - mid).abs() < mid * 0.05, "mean = {m}");
        }
    }

    #[test]
    fn merge_weights_sides_correctly() {
        // Merge a reservoir that saw 90k items with one that saw 10k;
        // on average 90% of the merged sample should come from the big one.
        let mut big_fraction = 0.0;
        let runs = 50;
        for seed in 0..runs {
            let mut a = Reservoir::new(100, ReservoirAlgo::R).unwrap().with_seed(seed);
            let mut b = Reservoir::new(100, ReservoirAlgo::R).unwrap().with_seed(seed + 1000);
            for i in 0..90_000u64 {
                a.offer(("big", i));
            }
            for i in 0..10_000u64 {
                b.offer(("small", i));
            }
            a.merge(&b).unwrap();
            assert_eq!(a.n(), 100_000);
            big_fraction +=
                a.sample().iter().filter(|(side, _)| *side == "big").count() as f64 / 100.0;
        }
        big_fraction /= runs as f64;
        assert!((big_fraction - 0.9).abs() < 0.05, "big fraction = {big_fraction}");
    }

    #[test]
    fn merge_k_mismatch_rejected() {
        let mut a = Reservoir::<u32>::new(10, ReservoirAlgo::R).unwrap();
        let b = Reservoir::<u32>::new(20, ReservoirAlgo::R).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn zero_k_rejected() {
        assert!(Reservoir::<u32>::new(0, ReservoirAlgo::R).is_err());
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        for algo in [ReservoirAlgo::R, ReservoirAlgo::L] {
            let mut s = Reservoir::new(64, algo).unwrap().with_seed(11);
            for i in 0..10_000u64 {
                s.offer(i);
            }
            let mut t = Reservoir::new(8, ReservoirAlgo::R).unwrap(); // differently configured
            t.restore(&s.snapshot()).unwrap();
            assert_eq!(t.n(), s.n());
            assert_eq!(t.sample(), s.sample());
            // The RNG state rode along: suffixes evolve identically.
            for i in 10_000..20_000u64 {
                s.offer(i);
                t.offer(i);
            }
            assert_eq!(t.sample(), s.sample(), "{algo:?} diverged after restore");
        }
    }

    #[test]
    fn restore_rejects_corrupt_bytes() {
        let mut s = Reservoir::new(4, ReservoirAlgo::L).unwrap();
        for i in 0..100u64 {
            s.offer(i);
        }
        let snap = s.snapshot();
        let mut t = Reservoir::<u64>::new(4, ReservoirAlgo::L).unwrap();
        assert!(t.restore(&snap[..snap.len() - 3]).is_err());
        let mut bad_algo = snap.clone();
        bad_algo[17] = 9; // the algo byte follows tag + k + n
        assert!(t.restore(&bad_algo).is_err());
    }
}
