//! Sampling from distributed streams (Cormode, Muthukrishnan, Yi, Zhang
//! — PODS 2010 / JACM 2012; the paper's \[69, 70\]).

use crate::reservoir::{Reservoir, ReservoirAlgo};
use sa_core::{Merge, Result, SaError};

/// Coordinator-side uniform sampling over `s` partitioned sites.
///
/// Each site runs a local reservoir over its partition; the coordinator
/// merges them weighted by per-site counts, producing a sample
/// distributed as if one reservoir had seen the interleaved stream —
/// the "intrinsically distribute computation" requirement of §2 applied
/// to sampling. (The paper's protocol also bounds *communication*; here
/// sites ship their reservoir on demand, which matches the
/// one-shot-query model used in experiment t01.)
#[derive(Clone, Debug)]
pub struct DistributedSampler<T> {
    sites: Vec<Reservoir<T>>,
    k: usize,
}

impl<T: Clone> DistributedSampler<T> {
    /// `s ≥ 1` sites, each with a size-`k` local reservoir.
    pub fn new(sites: usize, k: usize) -> Result<Self> {
        if sites == 0 {
            return Err(SaError::invalid("sites", "must be positive"));
        }
        let mut v = Vec::with_capacity(sites);
        for i in 0..sites {
            v.push(Reservoir::new(k, ReservoirAlgo::L)?.with_seed(0xD15 + i as u64));
        }
        Ok(Self { sites: v, k })
    }

    /// Offer an item observed at `site`.
    ///
    /// # Panics
    /// Panics if `site` is out of range.
    pub fn offer(&mut self, site: usize, item: T) {
        self.sites[site].offer(item);
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.sites.len()
    }

    /// Total items across sites.
    pub fn n(&self) -> u64 {
        self.sites.iter().map(Reservoir::n).sum()
    }

    /// Coordinator query: a uniform size-`k` sample over all sites.
    pub fn global_sample(&self) -> Result<Vec<T>> {
        let mut acc: Option<Reservoir<T>> = None;
        for site in &self.sites {
            match &mut acc {
                None => acc = Some(site.clone()),
                Some(a) => a.merge(site)?,
            }
        }
        Ok(acc.map(|a| a.sample().to_vec()).unwrap_or_default())
    }

    /// Per-site sample sizes (diagnostic).
    pub fn site_counts(&self) -> Vec<u64> {
        self.sites.iter().map(Reservoir::n).collect()
    }

    /// Reservoir capacity per site.
    pub fn capacity(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_sample_weights_sites_by_volume() {
        // Site 0 sees 9x the traffic of site 1.
        let mut frac = 0.0;
        let runs = 30;
        for run in 0..runs {
            let mut ds = DistributedSampler::new(2, 200).unwrap();
            for i in 0..(90_000 + run) as u64 {
                ds.offer(0, ("site0", i));
            }
            for i in 0..10_000u64 {
                ds.offer(1, ("site1", i));
            }
            let sample = ds.global_sample().unwrap();
            frac +=
                sample.iter().filter(|(s, _)| *s == "site0").count() as f64 / sample.len() as f64;
        }
        frac /= runs as f64;
        assert!((frac - 0.9).abs() < 0.05, "site0 fraction = {frac}");
    }

    #[test]
    fn single_site_degenerates_to_reservoir() {
        let mut ds = DistributedSampler::new(1, 50).unwrap();
        for i in 0..10_000u64 {
            ds.offer(0, i);
        }
        let s = ds.global_sample().unwrap();
        assert_eq!(s.len(), 50);
        assert_eq!(ds.n(), 10_000);
    }

    #[test]
    fn empty_sites_yield_empty_sample() {
        let ds = DistributedSampler::<u64>::new(4, 10).unwrap();
        assert!(ds.global_sample().unwrap().is_empty());
    }

    #[test]
    fn zero_sites_rejected() {
        assert!(DistributedSampler::<u64>::new(0, 10).is_err());
    }
}
