//! Weighted reservoir sampling (Efraimidis & Spirakis, A-ES).

use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry ordered by key ascending (min-heap via reverse compare).
#[derive(Clone, Debug)]
struct Keyed<T> {
    key: f64,
    item: T,
    weight: f64,
}

impl<T> PartialEq for Keyed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Keyed<T> {}
impl<T> PartialOrd for Keyed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Keyed<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on key.
        other.key.partial_cmp(&self.key).unwrap_or(Ordering::Equal)
    }
}

/// Weighted sampling *without replacement*: item `i` with weight `w_i`
/// gets key `u^{1/w_i}` (u uniform); the k largest keys form the sample.
/// Inclusion probabilities are proportional to weights, and the sketch
/// is a single pass with a size-k heap.
///
/// ```
/// use sa_sampling::WeightedReservoir;
///
/// let mut wr = WeightedReservoir::new(10).unwrap();
/// wr.offer("whale", 1000.0);
/// for i in 0..100 {
///     wr.offer("minnow", 1.0 + (i as f64) * 0.0);
/// }
/// assert!(wr.sample().iter().any(|(s, _)| **s == "whale"));
/// ```
#[derive(Clone, Debug)]
pub struct WeightedReservoir<T> {
    heap: BinaryHeap<Keyed<T>>,
    k: usize,
    n: u64,
    rng: SplitMix64,
}

impl<T> WeightedReservoir<T> {
    /// Sample size `k ≥ 1`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(SaError::invalid("k", "must be positive"));
        }
        Ok(Self { heap: BinaryHeap::with_capacity(k + 1), k, n: 0, rng: SplitMix64::new(0xAE5) })
    }

    /// Use a specific RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::new(seed);
        self
    }

    /// Offer an item with positive weight (non-positive weights are
    /// ignored — they can never be sampled).
    pub fn offer(&mut self, item: T, weight: f64) {
        if weight <= 0.0 || !weight.is_finite() {
            return;
        }
        self.n += 1;
        let u = self.rng.next_f64().max(f64::MIN_POSITIVE);
        let key = u.powf(1.0 / weight);
        if self.heap.len() < self.k {
            self.heap.push(Keyed { key, item, weight });
        } else if let Some(min) = self.heap.peek() {
            if key > min.key {
                self.heap.pop();
                self.heap.push(Keyed { key, item, weight });
            }
        }
    }

    /// The current sample as `(item, weight)` pairs.
    pub fn sample(&self) -> Vec<(&T, f64)> {
        self.heap.iter().map(|e| (&e.item, e.weight)).collect()
    }

    /// Items offered (with positive weight) so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Consume into owned items.
    pub fn into_sample(self) -> Vec<(T, f64)> {
        self.heap.into_iter().map(|e| (e.item, e.weight)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_weight_dominates_inclusion() {
        // Two classes: weight 10 vs weight 1, equal counts. The heavy
        // class should fill ~10/11 of the sample.
        let runs = 100;
        let mut heavy_frac = 0.0;
        for seed in 0..runs {
            let mut wr = WeightedReservoir::new(100).unwrap().with_seed(seed);
            for i in 0..5_000u64 {
                wr.offer(("heavy", i), 10.0);
                wr.offer(("light", i), 1.0);
            }
            heavy_frac +=
                wr.sample().iter().filter(|((s, _), _)| *s == "heavy").count() as f64 / 100.0;
        }
        heavy_frac /= runs as f64;
        assert!((heavy_frac - 10.0 / 11.0).abs() < 0.05, "heavy fraction = {heavy_frac}");
    }

    #[test]
    fn equal_weights_reduce_to_uniform() {
        let mut wr = WeightedReservoir::new(2_000).unwrap().with_seed(3);
        let n = 100_000u64;
        for i in 0..n {
            wr.offer(i, 1.0);
        }
        let mean: f64 = wr.sample().iter().map(|(&v, _)| v as f64).sum::<f64>() / 2_000.0;
        let mid = n as f64 / 2.0;
        assert!((mean - mid).abs() < mid * 0.05, "mean = {mean}");
    }

    #[test]
    fn small_stream_kept() {
        let mut wr = WeightedReservoir::new(10).unwrap();
        for i in 0..5u32 {
            wr.offer(i, (i + 1) as f64);
        }
        assert_eq!(wr.sample().len(), 5);
    }

    #[test]
    fn nonpositive_weights_ignored() {
        let mut wr = WeightedReservoir::new(10).unwrap();
        wr.offer("bad", 0.0);
        wr.offer("worse", -5.0);
        wr.offer("nan", f64::NAN);
        assert_eq!(wr.n(), 0);
        assert!(wr.sample().is_empty());
    }

    #[test]
    fn zero_k_rejected() {
        assert!(WeightedReservoir::<u32>::new(0).is_err());
    }
}
