//! Bernoulli (coin-flip) sampling — the baseline every reservoir scheme
//! is measured against.

use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};

/// Keep each item independently with probability `p`.
///
/// Sample size is binomial (unbounded in expectation for unbounded
/// streams) — which is exactly why reservoirs exist; experiment t01
/// contrasts the two.
#[derive(Clone, Debug)]
pub struct BernoulliSampler<T> {
    sample: Vec<T>,
    p: f64,
    n: u64,
    rng: SplitMix64,
}

impl<T> BernoulliSampler<T> {
    /// Sampling probability `p ∈ (0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(SaError::invalid("p", "must be in (0,1]"));
        }
        Ok(Self { sample: Vec::new(), p, n: 0, rng: SplitMix64::new(0xBE12) })
    }

    /// Use a specific RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::new(seed);
        self
    }

    /// Offer one item.
    pub fn offer(&mut self, item: T) {
        self.n += 1;
        if self.rng.bernoulli(self.p) {
            self.sample.push(item);
        }
    }

    /// The retained items.
    pub fn sample(&self) -> &[T] {
        &self.sample
    }

    /// Items seen.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Horvitz–Thompson estimate of the stream length from the sample.
    pub fn estimated_n(&self) -> f64 {
        self.sample.len() as f64 / self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_near_pn() {
        let mut s = BernoulliSampler::new(0.01).unwrap().with_seed(1);
        for i in 0..100_000u64 {
            s.offer(i);
        }
        let len = s.sample().len();
        assert!((800..1200).contains(&len), "len = {len}");
        let est = s.estimated_n();
        assert!((est - 100_000.0).abs() < 20_000.0);
    }

    #[test]
    fn p_one_keeps_everything() {
        let mut s = BernoulliSampler::new(1.0).unwrap();
        for i in 0..100u32 {
            s.offer(i);
        }
        assert_eq!(s.sample().len(), 100);
    }

    #[test]
    fn invalid_p() {
        assert!(BernoulliSampler::<u32>::new(0.0).is_err());
        assert!(BernoulliSampler::<u32>::new(1.1).is_err());
    }
}
