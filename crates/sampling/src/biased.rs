//! Biased reservoir sampling (Aggarwal, VLDB 2006 — the paper's \[33\]).

use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};

/// Temporally biased reservoir for *evolving* streams.
///
/// A uniform reservoir gives ancient and recent items equal standing,
/// which is wrong when the stream's distribution drifts. Aggarwal's
/// scheme targets an exponential bias `p(r, t) ∝ e^{-λ(t-r)}` toward
/// recent items: with reservoir fraction `F = len/k`, each arrival is
/// inserted with probability `F` replacing a random victim, otherwise
/// appended — realizing the bias with amortized O(1) work and maximum
/// reservoir size `k = 1/λ`.
#[derive(Clone, Debug)]
pub struct BiasedReservoir<T> {
    sample: Vec<T>,
    k: usize,
    n: u64,
    rng: SplitMix64,
}

impl<T> BiasedReservoir<T> {
    /// Capacity `k = 1/λ` (larger k ⇒ weaker recency bias).
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(SaError::invalid("k", "must be positive"));
        }
        Ok(Self { sample: Vec::with_capacity(k), k, n: 0, rng: SplitMix64::new(0xB1A5) })
    }

    /// Use a specific RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::new(seed);
        self
    }

    /// Offer one item.
    pub fn offer(&mut self, item: T) {
        self.n += 1;
        let fraction = self.sample.len() as f64 / self.k as f64;
        if self.sample.len() < self.k && !self.rng.bernoulli(fraction) {
            self.sample.push(item);
        } else {
            // Replace a random victim: coin success = deletion + insert.
            let victim = self.rng.index(self.sample.len());
            self.sample[victim] = item;
        }
    }

    /// The current (recency-biased) sample.
    pub fn sample(&self) -> &[T] {
        &self.sample
    }

    /// Items seen.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The effective bias rate λ = 1/k.
    pub fn lambda(&self) -> f64 {
        1.0 / self.k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recent_items_overrepresented() {
        // Stream of 100k sequence numbers; with k = 1000 the sample
        // should be dominated by the recent past (mean ≫ n/2).
        let mut br = BiasedReservoir::new(1_000).unwrap().with_seed(4);
        let n = 100_000u64;
        for i in 0..n {
            br.offer(i as f64);
        }
        let mean = sa_core::stats::mean(br.sample());
        assert!(mean > 0.95 * n as f64, "mean = {mean}, expected strong recency bias");
    }

    #[test]
    fn age_distribution_roughly_exponential() {
        // P(age > k) should be ≈ e^{-1}; P(age > 2k) ≈ e^{-2}.
        let k = 500usize;
        let n = 50_000u64;
        let mut older_than_k = 0usize;
        let mut older_than_2k = 0usize;
        let mut total = 0usize;
        for seed in 0..20u64 {
            let mut br = BiasedReservoir::new(k).unwrap().with_seed(seed);
            for i in 0..n {
                br.offer(i);
            }
            for &v in br.sample() {
                let age = n - 1 - v;
                total += 1;
                if age > k as u64 {
                    older_than_k += 1;
                }
                if age > 2 * k as u64 {
                    older_than_2k += 1;
                }
            }
        }
        let p1 = older_than_k as f64 / total as f64;
        let p2 = older_than_2k as f64 / total as f64;
        assert!((p1 - (-1.0f64).exp()).abs() < 0.08, "P(age>k) = {p1}");
        assert!((p2 - (-2.0f64).exp()).abs() < 0.06, "P(age>2k) = {p2}");
    }

    #[test]
    fn capacity_respected() {
        let mut br = BiasedReservoir::new(10).unwrap();
        for i in 0..1000u32 {
            br.offer(i);
            assert!(br.sample().len() <= 10);
        }
        assert_eq!(br.n(), 1000);
    }

    #[test]
    fn zero_k_rejected() {
        assert!(BiasedReservoir::<u32>::new(0).is_err());
    }
}
