//! Streaming prediction / missing-value imputation — the Table-1
//! **Data Prediction** row ("predict missing values in a data stream";
//! application: sensor data analysis).
//!
//! * [`KalmanFilter1D`] — scalar Kalman filter (Kalman 1960, the paper's
//!   \[111\]; applied to missing sensor events in \[160\]).
//! * [`KalmanFilterCV`] — constant-velocity (position+velocity state)
//!   filter for trending signals.
//! * [`RlsAr`] — recursive-least-squares AR(p) one-step predictor (the
//!   online-regression family, \[142, 164\]).

use sa_core::{Result, SaError};
use std::collections::VecDeque;

/// Scalar Kalman filter tracking a (slowly varying) level.
///
/// Model: `x_t = x_{t-1} + w`, `z_t = x_t + v`, with process variance
/// `q` and measurement variance `r`. `predict()` returns the prior —
/// use it to impute a dropped reading, then call `skip()` to propagate
/// uncertainty without a measurement.
#[derive(Clone, Debug)]
pub struct KalmanFilter1D {
    x: f64,
    p: f64,
    q: f64,
    r: f64,
    n: u64,
}

impl KalmanFilter1D {
    /// Process variance `q > 0`, measurement variance `r > 0`.
    pub fn new(q: f64, r: f64) -> Result<Self> {
        if q <= 0.0 {
            return Err(SaError::invalid("q", "must be positive"));
        }
        if r <= 0.0 {
            return Err(SaError::invalid("r", "must be positive"));
        }
        Ok(Self { x: 0.0, p: 1e6, q, r, n: 0 })
    }

    /// Prior prediction for the next value.
    pub fn predict(&self) -> f64 {
        self.x
    }

    /// Current error variance.
    pub fn variance(&self) -> f64 {
        self.p
    }

    /// Incorporate a measurement; returns the posterior estimate.
    pub fn update(&mut self, z: f64) -> f64 {
        self.n += 1;
        if self.n == 1 {
            self.x = z;
            self.p = self.r;
            return self.x;
        }
        let p_prior = self.p + self.q;
        let k = p_prior / (p_prior + self.r);
        self.x += k * (z - self.x);
        self.p = (1.0 - k) * p_prior;
        self.x
    }

    /// Advance one step with no measurement (dropout): uncertainty grows.
    pub fn skip(&mut self) {
        self.p += self.q;
    }
}

/// Constant-velocity Kalman filter: state = (position, velocity).
#[derive(Clone, Debug)]
pub struct KalmanFilterCV {
    /// State (position, velocity).
    x: [f64; 2],
    /// Covariance (row-major 2×2).
    p: [f64; 4],
    q: f64,
    r: f64,
    n: u64,
}

impl KalmanFilterCV {
    /// Process noise intensity `q > 0`, measurement variance `r > 0`.
    pub fn new(q: f64, r: f64) -> Result<Self> {
        if q <= 0.0 {
            return Err(SaError::invalid("q", "must be positive"));
        }
        if r <= 0.0 {
            return Err(SaError::invalid("r", "must be positive"));
        }
        Ok(Self { x: [0.0, 0.0], p: [1e6, 0.0, 0.0, 1e6], q, r, n: 0 })
    }

    fn time_update(&mut self) {
        // x ← F x with F = [[1,1],[0,1]].
        self.x[0] += self.x[1];
        // P ← F P Fᵀ + Q, Q = q·[[1/4,1/2],[1/2,1]] (discrete white accel).
        let [p00, p01, p10, p11] = self.p;
        let n00 = p00 + p01 + p10 + p11 + self.q * 0.25;
        let n01 = p01 + p11 + self.q * 0.5;
        let n10 = p10 + p11 + self.q * 0.5;
        let n11 = p11 + self.q;
        self.p = [n00, n01, n10, n11];
    }

    /// One-step-ahead position prediction (prior).
    pub fn predict(&self) -> f64 {
        self.x[0] + self.x[1]
    }

    /// Current velocity estimate.
    pub fn velocity(&self) -> f64 {
        self.x[1]
    }

    /// Incorporate a position measurement; returns the posterior position.
    pub fn update(&mut self, z: f64) -> f64 {
        self.n += 1;
        if self.n == 1 {
            self.x = [z, 0.0];
            self.p = [self.r, 0.0, 0.0, 1e3];
            return z;
        }
        self.time_update();
        let [p00, p01, p10, p11] = self.p;
        let s = p00 + self.r;
        let k0 = p00 / s;
        let k1 = p10 / s;
        let resid = z - self.x[0];
        self.x[0] += k0 * resid;
        self.x[1] += k1 * resid;
        self.p = [(1.0 - k0) * p00, (1.0 - k0) * p01, p10 - k1 * p00, p11 - k1 * p01];
        self.x[0]
    }

    /// Advance one step with no measurement.
    pub fn skip(&mut self) {
        if self.n > 0 {
            self.time_update();
        }
    }
}

/// Recursive least squares AR(p) one-step predictor.
///
/// Learns weights `w` minimizing `Σ λ^{n-t}(x_t − w·[x_{t-1}…x_{t-p}])²`
/// online, with forgetting factor `λ` for drifting processes.
#[derive(Clone, Debug)]
pub struct RlsAr {
    /// Model order.
    p: usize,
    lambda: f64,
    w: Vec<f64>,
    /// Inverse correlation matrix (row-major p×p).
    pinv: Vec<f64>,
    history: VecDeque<f64>,
    n: u64,
}

impl RlsAr {
    /// Order `p ≥ 1`, forgetting factor `λ ∈ (0.9, 1]` typically.
    pub fn new(p: usize, lambda: f64) -> Result<Self> {
        if p == 0 {
            return Err(SaError::invalid("p", "must be positive"));
        }
        if !(lambda > 0.0 && lambda <= 1.0) {
            return Err(SaError::invalid("lambda", "must be in (0,1]"));
        }
        let mut pinv = vec![0.0; p * p];
        for i in 0..p {
            pinv[i * p + i] = 1e3; // large initial uncertainty
        }
        Ok(Self { p, lambda, w: vec![0.0; p], pinv, history: VecDeque::new(), n: 0 })
    }

    /// Predict the next value from the current history (0 until p seen).
    pub fn predict(&self) -> f64 {
        if self.history.len() < self.p {
            return *self.history.back().unwrap_or(&0.0);
        }
        self.w.iter().zip(self.history.iter().rev()).map(|(w, x)| w * x).sum()
    }

    /// Observe the next value, updating the model. Returns the error of
    /// the prediction that was in force before this observation.
    #[allow(clippy::needless_range_loop)] // textbook matrix index form
    pub fn update(&mut self, x: f64) -> f64 {
        self.n += 1;
        let err = x - self.predict();
        if self.history.len() >= self.p {
            // Regressor: most recent first.
            let u: Vec<f64> = self.history.iter().rev().take(self.p).copied().collect();
            let p = self.p;
            // k = P u / (λ + uᵀ P u)
            let mut pu = vec![0.0; p];
            for i in 0..p {
                for j in 0..p {
                    pu[i] += self.pinv[i * p + j] * u[j];
                }
            }
            let upu: f64 = u.iter().zip(&pu).map(|(a, b)| a * b).sum();
            let denom = self.lambda + upu;
            let k: Vec<f64> = pu.iter().map(|v| v / denom).collect();
            for i in 0..p {
                self.w[i] += k[i] * err;
            }
            // P ← (P − k uᵀ P) / λ
            let mut utp = vec![0.0; p];
            for j in 0..p {
                for i in 0..p {
                    utp[j] += u[i] * self.pinv[i * p + j];
                }
            }
            for i in 0..p {
                for j in 0..p {
                    self.pinv[i * p + j] = (self.pinv[i * p + j] - k[i] * utp[j]) / self.lambda;
                }
            }
        }
        self.history.push_back(x);
        if self.history.len() > self.p {
            self.history.pop_front();
        }
        err
    }

    /// Learned AR weights (most-recent lag first).
    pub fn weights(&self) -> &[f64] {
        &self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::generators::{ar1_series, SensorSeries};

    #[test]
    fn kalman1d_denoises_constant_signal() {
        let mut kf = KalmanFilter1D::new(1e-4, 1.0).unwrap();
        let mut rng = sa_core::rng::SplitMix64::new(1);
        for _ in 0..2_000 {
            kf.update(42.0 + (rng.next_f64() - 0.5) * 4.0);
        }
        assert!((kf.predict() - 42.0).abs() < 0.3, "est = {}", kf.predict());
    }

    #[test]
    fn kalman1d_imputes_dropouts_better_than_zero_fill() {
        let mut g = SensorSeries::new(2).with_noise(0.3).with_dropout(0.2);
        let pts = g.take_vec(4_000);
        let mut kf = KalmanFilter1D::new(0.05, 0.3 * 0.3).unwrap();
        let mut se_kf = 0.0;
        let mut se_zero = 0.0;
        let mut missing = 0usize;
        for p in &pts {
            if p.dropped {
                let imputed = kf.predict();
                se_kf += (imputed - p.clean).powi(2);
                se_zero += p.clean.powi(2);
                missing += 1;
                kf.skip();
            } else {
                kf.update(p.value);
            }
        }
        assert!(missing > 500);
        let rmse_kf = (se_kf / missing as f64).sqrt();
        let rmse_zero = (se_zero / missing as f64).sqrt();
        assert!(rmse_kf < rmse_zero / 4.0, "kalman {rmse_kf} vs zero-fill {rmse_zero}");
        // Kalman tracks the seasonal signal to within ~2 noise sigmas.
        assert!(rmse_kf < 1.0, "rmse = {rmse_kf}");
    }

    #[test]
    fn kalman_cv_tracks_ramp() {
        let mut kf = KalmanFilterCV::new(1e-3, 1.0).unwrap();
        let mut rng = sa_core::rng::SplitMix64::new(3);
        for t in 0..1_000 {
            kf.update(2.0 * t as f64 + (rng.next_f64() - 0.5) * 2.0);
        }
        assert!((kf.velocity() - 2.0).abs() < 0.05, "vel = {}", kf.velocity());
        let pred = kf.predict();
        assert!((pred - 2.0 * 1000.0).abs() < 2.0, "pred = {pred}");
    }

    #[test]
    fn kalman_cv_skip_extrapolates() {
        let mut kf = KalmanFilterCV::new(1e-3, 0.5).unwrap();
        for t in 0..500 {
            kf.update(3.0 * t as f64);
        }
        for _ in 0..10 {
            kf.skip();
        }
        let expected = 3.0 * 510.0;
        assert!((kf.predict() - expected).abs() < 5.0, "pred {} vs {expected}", kf.predict());
    }

    #[test]
    fn rls_learns_ar1_coefficient() {
        let series = ar1_series(5_000, 0.8, 1.0, 4);
        let mut rls = RlsAr::new(1, 0.999).unwrap();
        for &x in &series {
            rls.update(x);
        }
        assert!((rls.weights()[0] - 0.8).abs() < 0.05, "w = {:?}", rls.weights());
    }

    #[test]
    fn rls_prediction_beats_naive_on_ar2() {
        // x_t = 1.5 x_{t-1} − 0.7 x_{t-2} + ε (a damped oscillator).
        let mut rng = sa_core::rng::SplitMix64::new(5);
        let mut xs = vec![0.0, 0.0];
        for _ in 0..6_000 {
            let n = xs.len();
            let x = 1.5 * xs[n - 1] - 0.7 * xs[n - 2] + (rng.next_f64() - 0.5) * 0.5;
            xs.push(x);
        }
        let mut rls = RlsAr::new(2, 0.999).unwrap();
        let mut se_rls = 0.0;
        let mut se_naive = 0.0;
        let mut prev = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            if i > 1000 {
                se_naive += (x - prev).powi(2);
                let pred = rls.predict();
                se_rls += (x - pred).powi(2);
            }
            rls.update(x);
            prev = x;
        }
        assert!(se_rls < se_naive * 0.5, "rls {se_rls} vs naive {se_naive}");
    }

    #[test]
    fn invalid_params() {
        assert!(KalmanFilter1D::new(0.0, 1.0).is_err());
        assert!(KalmanFilter1D::new(1.0, 0.0).is_err());
        assert!(KalmanFilterCV::new(-1.0, 1.0).is_err());
        assert!(RlsAr::new(0, 0.99).is_err());
        assert!(RlsAr::new(2, 1.5).is_err());
    }
}
