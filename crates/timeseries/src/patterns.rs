//! Temporal pattern analysis — the Table-1 **Temporal Pattern Analysis**
//! row ("detect patterns in a data stream"; application: traffic
//! analysis).
//!
//! * [`SaxDiscretizer`] — Symbolic Aggregate approXimation: PAA +
//!   Gaussian-breakpoint alphabet, the standard front-end for streaming
//!   pattern mining (the \[60\] shape-detection lineage).
//! * [`MotifDetector`] — counts symbolized subsequences to surface
//!   recurring motifs and flag never-seen-before patterns.
//! * [`SubsequenceMatcher`] — sliding z-normalized Euclidean matching of
//!   a query shape against the stream (the "subsequences similar to a
//!   given query" problem, \[159\]'s time-warping relaxation is
//!   approximated by tolerance bands).

use sa_core::{Result, SaError};
use std::collections::{HashMap, VecDeque};

/// SAX: piecewise-aggregate approximation + equiprobable alphabet.
#[derive(Clone, Debug)]
pub struct SaxDiscretizer {
    /// Points per PAA segment.
    segment: usize,
    /// Gaussian breakpoints for the alphabet.
    breakpoints: Vec<f64>,
    buffer: Vec<f64>,
}

impl SaxDiscretizer {
    /// `segment ≥ 1` points per symbol, alphabet size `a ∈ [2, 10]`.
    pub fn new(segment: usize, alphabet: usize) -> Result<Self> {
        if segment == 0 {
            return Err(SaError::invalid("segment", "must be positive"));
        }
        if !(2..=10).contains(&alphabet) {
            return Err(SaError::invalid("alphabet", "must be in [2,10]"));
        }
        // Equiprobable N(0,1) breakpoints for alphabet sizes 2..=10.
        const TABLE: [&[f64]; 9] = [
            &[0.0],
            &[-0.43, 0.43],
            &[-0.67, 0.0, 0.67],
            &[-0.84, -0.25, 0.25, 0.84],
            &[-0.97, -0.43, 0.0, 0.43, 0.97],
            &[-1.07, -0.57, -0.18, 0.18, 0.57, 1.07],
            &[-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15],
            &[-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22],
            &[-1.28, -0.84, -0.52, -0.25, 0.0, 0.25, 0.52, 0.84, 1.28],
        ];
        Ok(Self {
            segment,
            breakpoints: TABLE[alphabet - 2].to_vec(),
            buffer: Vec::with_capacity(segment),
        })
    }

    /// Feed one (already z-normalized) value; emits a symbol when a PAA
    /// segment completes.
    pub fn push(&mut self, x: f64) -> Option<u8> {
        self.buffer.push(x);
        if self.buffer.len() < self.segment {
            return None;
        }
        let mean = sa_core::stats::mean(&self.buffer);
        self.buffer.clear();
        let sym = self.breakpoints.iter().take_while(|&&b| mean > b).count() as u8;
        Some(sym)
    }

    /// Alphabet size.
    pub fn alphabet(&self) -> usize {
        self.breakpoints.len() + 1
    }
}

/// Counts fixed-length symbol n-grams to find motifs (recurring
/// patterns) and surprising (rare) patterns.
#[derive(Clone, Debug)]
pub struct MotifDetector {
    len: usize,
    recent: VecDeque<u8>,
    counts: HashMap<Vec<u8>, u64>,
    total: u64,
}

impl MotifDetector {
    /// Motif length `len ≥ 2` symbols.
    pub fn new(len: usize) -> Result<Self> {
        if len < 2 {
            return Err(SaError::invalid("len", "must be at least 2"));
        }
        Ok(Self { len, recent: VecDeque::with_capacity(len), counts: HashMap::new(), total: 0 })
    }

    /// Feed the next symbol; returns the count (including this one) of
    /// the n-gram just completed, or `None` while warming up.
    pub fn push(&mut self, symbol: u8) -> Option<u64> {
        self.recent.push_back(symbol);
        if self.recent.len() > self.len {
            self.recent.pop_front();
        }
        if self.recent.len() < self.len {
            return None;
        }
        let gram: Vec<u8> = self.recent.iter().copied().collect();
        let c = self.counts.entry(gram).or_insert(0);
        *c += 1;
        self.total += 1;
        Some(*c)
    }

    /// The `k` most frequent motifs, descending.
    pub fn top_motifs(&self, k: usize) -> Vec<(Vec<u8>, u64)> {
        let mut v: Vec<(Vec<u8>, u64)> = self.counts.iter().map(|(g, &c)| (g.clone(), c)).collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v.truncate(k);
        v
    }

    /// Whether the n-gram ending now was seen at most `rare_limit` times
    /// — a "surprising pattern" flag.
    pub fn current_is_rare(&self, rare_limit: u64) -> bool {
        if self.recent.len() < self.len {
            return false;
        }
        let gram: Vec<u8> = self.recent.iter().copied().collect();
        self.counts.get(&gram).copied().unwrap_or(0) <= rare_limit
    }

    /// Distinct patterns observed.
    pub fn distinct_patterns(&self) -> usize {
        self.counts.len()
    }
}

/// Sliding z-normalized Euclidean subsequence matching.
#[derive(Clone, Debug)]
pub struct SubsequenceMatcher {
    /// z-normalized query.
    query: Vec<f64>,
    window: VecDeque<f64>,
    /// Match when normalized distance ≤ threshold.
    threshold: f64,
}

impl SubsequenceMatcher {
    /// Query shape of `≥ 4` points; `threshold` is the per-point RMS
    /// distance allowed after z-normalization (0.3–0.5 is tolerant).
    pub fn new(query: &[f64], threshold: f64) -> Result<Self> {
        if query.len() < 4 {
            return Err(SaError::invalid("query", "need at least 4 points"));
        }
        if threshold <= 0.0 {
            return Err(SaError::invalid("threshold", "must be positive"));
        }
        let z = Self::znorm(query).ok_or_else(|| SaError::invalid("query", "zero variance"))?;
        Ok(Self { query: z, window: VecDeque::with_capacity(query.len()), threshold })
    }

    fn znorm(v: &[f64]) -> Option<Vec<f64>> {
        let m = sa_core::stats::mean(v);
        let var = v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64;
        if var <= 1e-18 {
            return None;
        }
        let s = var.sqrt();
        Some(v.iter().map(|x| (x - m) / s).collect())
    }

    /// Feed the next value; returns the normalized distance when the
    /// current window matches the query within threshold.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        self.window.push_back(x);
        if self.window.len() > self.query.len() {
            self.window.pop_front();
        }
        if self.window.len() < self.query.len() {
            return None;
        }
        let w: Vec<f64> = self.window.iter().copied().collect();
        let z = Self::znorm(&w)?;
        let d2: f64 = z.iter().zip(&self.query).map(|(a, b)| (a - b) * (a - b)).sum();
        let rms = (d2 / self.query.len() as f64).sqrt();
        (rms <= self.threshold).then_some(rms)
    }

    /// Query length in points.
    pub fn query_len(&self) -> usize {
        self.query.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sax_symbols_order_with_value() {
        let mut sax = SaxDiscretizer::new(1, 4).unwrap();
        let lo = sax.push(-2.0).unwrap();
        let mid = sax.push(0.1).unwrap();
        let hi = sax.push(2.0).unwrap();
        assert!(lo < mid && mid < hi);
        assert_eq!(sax.alphabet(), 4);
    }

    #[test]
    fn sax_paa_averages_segments() {
        let mut sax = SaxDiscretizer::new(4, 3).unwrap();
        assert_eq!(sax.push(1.0), None);
        assert_eq!(sax.push(1.0), None);
        assert_eq!(sax.push(1.0), None);
        let s = sax.push(1.0).unwrap();
        assert_eq!(s, 2); // mean 1.0 > 0.67 → top symbol of a 3-alphabet
    }

    #[test]
    fn motif_detector_finds_planted_motif() {
        let mut md = MotifDetector::new(3).unwrap();
        let mut rng = sa_core::rng::SplitMix64::new(1);
        // Background noise symbols 0..8, planted motif [1,2,3] every 20.
        for i in 0..5_000u64 {
            if i % 20 < 3 {
                md.push((i % 20 + 1) as u8);
            } else {
                md.push((rng.next_below(8)) as u8);
            }
        }
        let top = md.top_motifs(1);
        assert_eq!(top[0].0, vec![1, 2, 3], "top motif = {:?}", top[0]);
    }

    #[test]
    fn rare_pattern_flagging() {
        let mut md = MotifDetector::new(2).unwrap();
        for _ in 0..100 {
            md.push(1);
            md.push(2);
        }
        // [2,9] has never been seen until now.
        md.push(9);
        assert!(md.current_is_rare(1));
        md.push(1);
        md.push(2);
        md.push(1); // [2,1] is common
        assert!(!md.current_is_rare(1));
    }

    #[test]
    fn matcher_finds_planted_shape() {
        // Query: one sine period over 32 points.
        let query: Vec<f64> =
            (0..32).map(|i| (2.0 * std::f64::consts::PI * i as f64 / 32.0).sin()).collect();
        let mut m = SubsequenceMatcher::new(&query, 0.35).unwrap();
        let mut rng = sa_core::rng::SplitMix64::new(2);
        let mut matches = Vec::new();
        // Noise, then the shape (scaled + offset: z-norm must still match),
        // then noise.
        for i in 0..500usize {
            let x = if (200..232).contains(&i) {
                5.0 + 3.0 * query[i - 200] + 0.05 * rng.next_f64()
            } else {
                rng.next_f64() * 2.0 - 1.0
            };
            if m.push(x).is_some() {
                matches.push(i);
            }
        }
        assert!(
            matches.iter().any(|&i| (228..=235).contains(&i)),
            "planted shape not found; matches = {matches:?}"
        );
        // No spurious matches far from the plant.
        assert!(matches.iter().all(|&i| i >= 220), "false matches: {matches:?}");
    }

    #[test]
    fn invalid_params() {
        assert!(SaxDiscretizer::new(0, 4).is_err());
        assert!(SaxDiscretizer::new(1, 1).is_err());
        assert!(SaxDiscretizer::new(1, 11).is_err());
        assert!(MotifDetector::new(1).is_err());
        assert!(SubsequenceMatcher::new(&[1.0, 2.0], 0.3).is_err());
        assert!(SubsequenceMatcher::new(&[1.0; 8], 0.3).is_err());
    }
}
