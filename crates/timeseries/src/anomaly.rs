//! Streaming anomaly detection — the Table-1 **Anomaly Detection** row
//! ("detect anomalies in a data stream"; application: sensor networks).
//!
//! Four detectors spanning the row's citation families:
//! * [`RobustZScore`] — median/MAD over a rolling window (robust to the
//!   anomalies it is hunting, unlike mean/σ).
//! * [`Cusum`] — Page's cumulative-sum change detector for level shifts
//!   (the distributional-change family, \[71\]).
//! * [`SeasonalDetector`] — per-phase baselines for periodic signals
//!   (the model-based family, \[151\]).
//! * [`DistanceDetector`] — count of near neighbours in a reference
//!   window (the distance/density family, \[150, 153\]).

use sa_core::{Result, SaError};
use std::collections::VecDeque;

/// Verdict for one observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Verdict {
    /// Whether the observation is flagged.
    pub is_anomaly: bool,
    /// Detector-specific score (higher = more anomalous).
    pub score: f64,
}

/// Median/MAD z-score over a rolling window.
///
/// Scores `|x − median| / (1.4826·MAD)`; both statistics have a 50%
/// breakdown point, so a burst of outliers cannot drag the baseline the
/// way it would an EWMA.
#[derive(Clone, Debug)]
pub struct RobustZScore {
    window: VecDeque<f64>,
    capacity: usize,
    threshold: f64,
}

impl RobustZScore {
    /// Rolling window of `capacity ≥ 8` points, flag above `threshold`
    /// robust z-units (3–5 is typical).
    pub fn new(capacity: usize, threshold: f64) -> Result<Self> {
        if capacity < 8 {
            return Err(SaError::invalid("capacity", "must be at least 8"));
        }
        if threshold <= 0.0 {
            return Err(SaError::invalid("threshold", "must be positive"));
        }
        Ok(Self { window: VecDeque::with_capacity(capacity), capacity, threshold })
    }

    fn median(sorted: &[f64]) -> f64 {
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    }

    /// Score the next observation, then add it to the window.
    pub fn observe(&mut self, x: f64) -> Verdict {
        let verdict = if self.window.len() < 8 {
            Verdict { is_anomaly: false, score: 0.0 }
        } else {
            let mut sorted: Vec<f64> = self.window.iter().copied().collect();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let med = Self::median(&sorted);
            let mut devs: Vec<f64> = sorted.iter().map(|v| (v - med).abs()).collect();
            devs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mad = Self::median(&devs);
            let scale = 1.4826 * mad.max(1e-12);
            let score = (x - med).abs() / scale;
            Verdict { is_anomaly: score > self.threshold, score }
        };
        // Anomalous points still enter the window (the robustness of
        // median/MAD is the defence, not exclusion).
        self.window.push_back(x);
        if self.window.len() > self.capacity {
            self.window.pop_front();
        }
        verdict
    }
}

/// Page's CUSUM: detects persistent level shifts, not single spikes.
///
/// Tracks `S⁺ ← max(0, S⁺ + (x − μ − κ))` and the mirrored `S⁻`;
/// crossing `h` signals a change, after which the baseline re-anchors.
#[derive(Clone, Debug)]
pub struct Cusum {
    mean: f64,
    /// Allowance (slack) κ, in absolute units.
    kappa: f64,
    /// Decision threshold h, in absolute units.
    h: f64,
    s_pos: f64,
    s_neg: f64,
    n: u64,
    warmup: u64,
}

impl Cusum {
    /// Slack `kappa` and threshold `h` (absolute units); the baseline
    /// mean is learned over the first `warmup ≥ 1` points.
    pub fn new(kappa: f64, h: f64, warmup: u64) -> Result<Self> {
        if kappa < 0.0 {
            return Err(SaError::invalid("kappa", "must be non-negative"));
        }
        if h <= 0.0 {
            return Err(SaError::invalid("h", "must be positive"));
        }
        if warmup == 0 {
            return Err(SaError::invalid("warmup", "must be positive"));
        }
        Ok(Self { mean: 0.0, kappa, h, s_pos: 0.0, s_neg: 0.0, n: 0, warmup })
    }

    /// Feed the next observation; `is_anomaly` marks a detected shift.
    pub fn observe(&mut self, x: f64) -> Verdict {
        self.n += 1;
        if self.n <= self.warmup {
            // Running mean during warmup.
            self.mean += (x - self.mean) / self.n as f64;
            return Verdict { is_anomaly: false, score: 0.0 };
        }
        self.s_pos = (self.s_pos + x - self.mean - self.kappa).max(0.0);
        self.s_neg = (self.s_neg - x + self.mean - self.kappa).max(0.0);
        let score = self.s_pos.max(self.s_neg) / self.h;
        if score >= 1.0 {
            // Signal and re-anchor at the new level.
            self.mean = x;
            self.s_pos = 0.0;
            self.s_neg = 0.0;
            return Verdict { is_anomaly: true, score };
        }
        Verdict { is_anomaly: false, score }
    }

    /// The current baseline mean.
    pub fn baseline(&self) -> f64 {
        self.mean
    }
}

/// Per-phase seasonal baseline: one EWMA mean/deviation per position in
/// the season, so "3am looks like previous 3ams".
#[derive(Clone, Debug)]
pub struct SeasonalDetector {
    period: usize,
    alpha: f64,
    threshold: f64,
    level: Vec<f64>,
    dev: Vec<f64>,
    seen: Vec<u32>,
    t: u64,
}

impl SeasonalDetector {
    /// Season length `period ≥ 2`, smoothing `α`, flag above `threshold`
    /// deviations.
    pub fn new(period: usize, alpha: f64, threshold: f64) -> Result<Self> {
        if period < 2 {
            return Err(SaError::invalid("period", "must be at least 2"));
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(SaError::invalid("alpha", "must be in (0,1]"));
        }
        if threshold <= 0.0 {
            return Err(SaError::invalid("threshold", "must be positive"));
        }
        Ok(Self {
            period,
            alpha,
            threshold,
            level: vec![0.0; period],
            dev: vec![0.0; period],
            seen: vec![0; period],
            t: 0,
        })
    }

    /// Feed the next observation (consecutive samples advance the phase).
    pub fn observe(&mut self, x: f64) -> Verdict {
        let phase = (self.t % self.period as u64) as usize;
        self.t += 1;
        self.seen[phase] += 1;
        if self.seen[phase] <= 2 {
            // Need two full seasons before judging a phase.
            if self.seen[phase] == 1 {
                self.level[phase] = x;
            } else {
                self.dev[phase] = (x - self.level[phase]).abs();
                self.level[phase] += self.alpha * (x - self.level[phase]);
            }
            return Verdict { is_anomaly: false, score: 0.0 };
        }
        let resid = x - self.level[phase];
        let scale = self.dev[phase].max(1e-9);
        let score = resid.abs() / scale;
        let is_anomaly = score > self.threshold;
        // Anomalies update the baseline with a dampened weight so a
        // one-off spike does not poison the phase.
        let w = if is_anomaly { self.alpha * 0.1 } else { self.alpha };
        self.level[phase] += w * resid;
        self.dev[phase] += w * (resid.abs() - self.dev[phase]);
        Verdict { is_anomaly, score }
    }
}

/// Distance-based outlier detection: a point is anomalous when fewer
/// than `min_neighbors` of the last `window` points lie within `radius`.
#[derive(Clone, Debug)]
pub struct DistanceDetector {
    window: VecDeque<f64>,
    capacity: usize,
    radius: f64,
    min_neighbors: usize,
}

impl DistanceDetector {
    /// Reference window size, neighbourhood `radius > 0`, and the
    /// minimum neighbour count for normality.
    pub fn new(capacity: usize, radius: f64, min_neighbors: usize) -> Result<Self> {
        if capacity < min_neighbors || capacity == 0 {
            return Err(SaError::invalid("capacity", "must exceed min_neighbors"));
        }
        if radius <= 0.0 {
            return Err(SaError::invalid("radius", "must be positive"));
        }
        Ok(Self { window: VecDeque::with_capacity(capacity), capacity, radius, min_neighbors })
    }

    /// Score the next observation, then add it to the window.
    pub fn observe(&mut self, x: f64) -> Verdict {
        let verdict = if self.window.len() < self.capacity / 2 {
            Verdict { is_anomaly: false, score: 0.0 }
        } else {
            let neighbors = self.window.iter().filter(|&&v| (v - x).abs() <= self.radius).count();
            Verdict {
                is_anomaly: neighbors < self.min_neighbors,
                score: self.min_neighbors as f64 / (neighbors as f64 + 1.0),
            }
        };
        self.window.push_back(x);
        if self.window.len() > self.capacity {
            self.window.pop_front();
        }
        verdict
    }
}

/// Convenience: run a detector over a labeled stream and report
/// precision/recall against ground truth.
pub fn evaluate<F>(points: &[(f64, bool)], mut detector: F) -> (f64, f64)
where
    F: FnMut(f64) -> Verdict,
{
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fnn = 0usize;
    for &(x, truth) in points {
        let v = detector(x);
        match (v.is_anomaly, truth) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fnn += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fnn == 0 { 1.0 } else { tp as f64 / (tp + fnn) as f64 };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::generators::SensorSeries;

    fn sensor_points(n: usize, seed: u64) -> Vec<(f64, bool)> {
        // Mild seasonality so the rolling window's spread stays close to
        // the noise scale — spikes at 10σ then stand out clearly.
        let mut g =
            SensorSeries::new(seed).with_noise(0.5).with_amplitude(0.5).with_anomalies(0.01, 10.0);
        g.take_vec(n).into_iter().map(|p| (p.value, p.is_anomaly)).collect()
    }

    #[test]
    fn robust_zscore_catches_spikes() {
        let pts = sensor_points(5_000, 1);
        let mut det = RobustZScore::new(64, 5.0).unwrap();
        let (precision, recall) = evaluate(&pts, |x| det.observe(x));
        assert!(recall > 0.8, "recall = {recall}");
        assert!(precision > 0.5, "precision = {precision}");
    }

    #[test]
    fn robust_zscore_survives_outlier_bursts() {
        let mut det = RobustZScore::new(64, 4.0).unwrap();
        for _ in 0..200 {
            det.observe(10.0);
        }
        // A burst of 10 extreme values must still be flagged throughout
        // (an EWMA baseline would adapt and stop flagging).
        let mut flagged = 0;
        for _ in 0..10 {
            if det.observe(1000.0).is_anomaly {
                flagged += 1;
            }
        }
        assert_eq!(flagged, 10);
        // And normal values afterwards are not flagged.
        assert!(!det.observe(10.0).is_anomaly);
    }

    #[test]
    fn cusum_detects_level_shift_not_noise() {
        let mut det = Cusum::new(0.5, 6.0, 100).unwrap();
        let mut rng = sa_core::rng::SplitMix64::new(2);
        let mut fired_before_shift = 0;
        for _ in 0..2_000 {
            let x = (rng.next_f64() - 0.5) * 2.0; // mean 0, range ±1
            if det.observe(x).is_anomaly {
                fired_before_shift += 1;
            }
        }
        assert_eq!(fired_before_shift, 0, "false alarms on stationary noise");
        // Shift the mean by +3: must fire within a few samples.
        let mut fired_at = None;
        for i in 0..50 {
            let x = 3.0 + (rng.next_f64() - 0.5) * 2.0;
            if det.observe(x).is_anomaly {
                fired_at = Some(i);
                break;
            }
        }
        assert!(fired_at.is_some(), "CUSUM never detected the shift");
        assert!(fired_at.unwrap() < 10, "detection delay {fired_at:?}");
    }

    #[test]
    fn seasonal_detector_uses_phase_baselines() {
        let period = 24usize;
        let mut det = SeasonalDetector::new(period, 0.3, 4.0).unwrap();
        // Strong deterministic season: value = phase.
        for day in 0..20 {
            for phase in 0..period {
                let v = det.observe(phase as f64 + 0.01 * day as f64);
                assert!(!v.is_anomaly, "false alarm day {day} phase {phase}");
            }
        }
        // A value normal for phase 23 but abnormal for phase 2.
        for phase in 0..2 {
            det.observe(phase as f64);
        }
        let v = det.observe(23.0); // at phase 2
        assert!(v.is_anomaly, "phase-contextual anomaly missed");
    }

    #[test]
    fn distance_detector_flags_isolated_points() {
        let mut det = DistanceDetector::new(100, 1.0, 3).unwrap();
        let mut rng = sa_core::rng::SplitMix64::new(3);
        for _ in 0..200 {
            det.observe(5.0 + rng.next_f64());
        }
        assert!(det.observe(50.0).is_anomaly);
        assert!(!det.observe(5.5).is_anomaly);
    }

    #[test]
    fn invalid_params() {
        assert!(RobustZScore::new(4, 3.0).is_err());
        assert!(RobustZScore::new(64, 0.0).is_err());
        assert!(Cusum::new(-1.0, 5.0, 10).is_err());
        assert!(Cusum::new(0.5, 0.0, 10).is_err());
        assert!(SeasonalDetector::new(1, 0.5, 3.0).is_err());
        assert!(DistanceDetector::new(2, 1.0, 5).is_err());
    }
}
