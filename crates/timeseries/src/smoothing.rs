//! Exponential smoothing: EWMA and Holt's linear (trend) method.

use sa_core::codec::{ByteReader, ByteWriter};
use sa_core::{Merge, Result, SaError, Synopsis};

/// Exponentially weighted moving average with optional variance tracking.
///
/// `level ← α·x + (1−α)·level`. The companion EWM variance uses the
/// standard recursive form, giving a drift-adaptive mean ± deviation
/// band that the anomaly detectors consume.
#[derive(Clone, Debug)]
pub struct Ewma {
    alpha: f64,
    level: f64,
    var: f64,
    n: u64,
}

impl Ewma {
    /// Smoothing factor `α ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Result<Self> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(SaError::invalid("alpha", "must be in (0,1]"));
        }
        Ok(Self { alpha, level: 0.0, var: 0.0, n: 0 })
    }

    /// Update with the next observation; returns the new level.
    pub fn update(&mut self, x: f64) -> f64 {
        self.n += 1;
        if self.n == 1 {
            self.level = x;
            self.var = 0.0;
            return self.level;
        }
        let diff = x - self.level;
        // Update variance before the level so it measures surprise
        // against the pre-update prediction.
        self.var = (1.0 - self.alpha) * (self.var + self.alpha * diff * diff);
        self.level += self.alpha * diff;
        self.level
    }

    /// Current smoothed level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Current EWM standard deviation.
    pub fn stddev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Observations consumed.
    pub fn count(&self) -> u64 {
        self.n
    }
}

impl Merge for Ewma {
    /// Combine two same-α trackers over disjoint shards of one stream:
    /// the merged level/variance is the observation-count-weighted
    /// average — each shard's state summarizes its share of the stream,
    /// so weighting by count recovers an unbiased whole-stream view.
    /// Commutative to the bit (the weighted sum's operands are
    /// symmetric); an empty side is the identity.
    fn merge(&mut self, other: &Self) -> Result<()> {
        if (self.alpha - other.alpha).abs() > f64::EPSILON {
            return Err(SaError::IncompatibleMerge(format!(
                "EWMA alpha mismatch: {} vs {}",
                self.alpha, other.alpha
            )));
        }
        if other.n == 0 {
            return Ok(());
        }
        if self.n == 0 {
            self.level = other.level;
            self.var = other.var;
            self.n = other.n;
            return Ok(());
        }
        let (wa, wb) = (self.n as f64, other.n as f64);
        let total = wa + wb;
        self.level = (wa * self.level + wb * other.level) / total;
        self.var = (wa * self.var + wb * other.var) / total;
        self.n += other.n;
        Ok(())
    }
}

const EWMA_SNAPSHOT_TAG: u8 = b'E';

impl Synopsis for Ewma {
    fn snapshot(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(1 + 8 * 4);
        w.tag(EWMA_SNAPSHOT_TAG)
            .put_f64(self.alpha)
            .put_f64(self.level)
            .put_f64(self.var)
            .put_u64(self.n);
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = ByteReader::new(bytes);
        r.expect_tag(EWMA_SNAPSHOT_TAG, "Ewma")?;
        let alpha = r.get_f64()?;
        let level = r.get_f64()?;
        let var = r.get_f64()?;
        let n = r.get_u64()?;
        r.finish()?;
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(SaError::Codec(format!("EWMA snapshot has alpha {alpha}")));
        }
        *self = Self { alpha, level, var, n };
        Ok(())
    }
}

/// Holt's double exponential smoothing: level + trend, forecasting
/// `h` steps ahead as `level + h·trend`.
#[derive(Clone, Debug)]
pub struct Holt {
    alpha: f64,
    beta: f64,
    level: f64,
    trend: f64,
    n: u64,
}

impl Holt {
    /// Level factor `α ∈ (0,1]`, trend factor `β ∈ (0,1]`.
    pub fn new(alpha: f64, beta: f64) -> Result<Self> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(SaError::invalid("alpha", "must be in (0,1]"));
        }
        if !(beta > 0.0 && beta <= 1.0) {
            return Err(SaError::invalid("beta", "must be in (0,1]"));
        }
        Ok(Self { alpha, beta, level: 0.0, trend: 0.0, n: 0 })
    }

    /// Update with the next observation.
    pub fn update(&mut self, x: f64) {
        self.n += 1;
        match self.n {
            1 => self.level = x,
            2 => {
                self.trend = x - self.level;
                self.level = x;
            }
            _ => {
                let prev_level = self.level;
                self.level = self.alpha * x + (1.0 - self.alpha) * (self.level + self.trend);
                self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
            }
        }
    }

    /// Forecast `h` steps ahead.
    pub fn forecast(&self, h: u64) -> f64 {
        self.level + h as f64 * self.trend
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Current trend per step.
    pub fn trend(&self) -> f64 {
        self.trend
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_snapshot_restore_resumes_exactly() {
        let mut s = Ewma::new(0.3).unwrap();
        for i in 0..500 {
            s.update((i as f64).sin() * 10.0);
        }
        let mut t = Ewma::new(0.9).unwrap(); // differently configured
        t.restore(&s.snapshot()).unwrap();
        assert_eq!(t.level(), s.level());
        assert_eq!(t.count(), s.count());
        for i in 500..800 {
            let x = (i as f64).sin() * 10.0;
            s.update(x);
            t.update(x);
        }
        assert_eq!(t.level(), s.level());
        assert_eq!(t.stddev(), s.stddev());
        let snap = s.snapshot();
        assert!(t.restore(&snap[..10]).is_err());
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.2).unwrap();
        for _ in 0..200 {
            e.update(5.0);
        }
        assert!((e.level() - 5.0).abs() < 1e-9);
        assert!(e.stddev() < 1e-6);
    }

    #[test]
    fn ewma_tracks_step_change() {
        let mut e = Ewma::new(0.3).unwrap();
        for _ in 0..100 {
            e.update(0.0);
        }
        for _ in 0..50 {
            e.update(10.0);
        }
        assert!((e.level() - 10.0).abs() < 0.01);
    }

    #[test]
    fn ewma_stddev_reflects_noise() {
        let mut e = Ewma::new(0.1).unwrap();
        let mut rng = sa_core::rng::SplitMix64::new(1);
        for _ in 0..5_000 {
            e.update(if rng.bernoulli(0.5) { 1.0 } else { -1.0 });
        }
        // Values are ±1 around mean 0: stddev ≈ 1.
        assert!((e.stddev() - 1.0).abs() < 0.3, "stddev = {}", e.stddev());
    }

    #[test]
    fn holt_learns_linear_trend() {
        let mut h = Holt::new(0.5, 0.3).unwrap();
        for t in 0..300 {
            h.update(2.0 * t as f64 + 10.0);
        }
        assert!((h.trend() - 2.0).abs() < 0.05, "trend = {}", h.trend());
        let f = h.forecast(10);
        let expected = 2.0 * 309.0 + 10.0;
        assert!((f - expected).abs() < 2.0, "forecast {f} vs {expected}");
    }

    #[test]
    fn invalid_params() {
        assert!(Ewma::new(0.0).is_err());
        assert!(Ewma::new(1.1).is_err());
        assert!(Holt::new(0.5, 0.0).is_err());
    }
}
