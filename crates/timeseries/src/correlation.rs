//! Streaming correlation — the Table-1 **Correlation** row ("find data
//! subsets highly correlated to a given data set"; application: fraud
//! detection).
//!
//! * [`StreamingPearson`] — exact all-history Pearson from O(1) sufficient
//!   statistics.
//! * [`WindowedCorrelation`] — Pearson over a sliding window (the
//!   StatStream-style "correlated aggregates" primitive, \[163, 165\]).
//! * [`CorrelationMatrix`] — all-pairs windowed correlations over `d`
//!   streams with a top-pairs query (fraud-ring discovery, \[99\]).
//! * [`LaggedCorrelation`] — best lead/lag alignment within `±L`
//!   (the lagged-correlation search of \[146\]).

use sa_core::{Result, SaError};
use std::collections::VecDeque;

/// Exact Pearson correlation of a pair of co-arriving streams from five
/// running sums.
#[derive(Clone, Debug, Default)]
pub struct StreamingPearson {
    n: u64,
    sx: f64,
    sy: f64,
    sxx: f64,
    syy: f64,
    sxy: f64,
}

impl StreamingPearson {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe an aligned pair.
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.syy += y * y;
        self.sxy += x * y;
    }

    /// Current correlation (`None` below 2 points or zero variance).
    pub fn correlation(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let cov = self.sxy - self.sx * self.sy / n;
        let vx = self.sxx - self.sx * self.sx / n;
        let vy = self.syy - self.sy * self.sy / n;
        if vx <= 0.0 || vy <= 0.0 {
            return None;
        }
        Some(cov / (vx * vy).sqrt())
    }

    /// Pairs observed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Combine with another accumulator (distributes across partitions).
    pub fn merge(&mut self, other: &Self) {
        self.n += other.n;
        self.sx += other.sx;
        self.sy += other.sy;
        self.sxx += other.sxx;
        self.syy += other.syy;
        self.sxy += other.sxy;
    }
}

/// Pearson over the last `w` aligned pairs.
#[derive(Clone, Debug)]
pub struct WindowedCorrelation {
    window: VecDeque<(f64, f64)>,
    capacity: usize,
    sums: StreamingPearson,
}

impl WindowedCorrelation {
    /// Window of `w ≥ 2` pairs.
    pub fn new(w: usize) -> Result<Self> {
        if w < 2 {
            return Err(SaError::invalid("w", "must be at least 2"));
        }
        Ok(Self { window: VecDeque::with_capacity(w), capacity: w, sums: StreamingPearson::new() })
    }

    /// Observe an aligned pair; evicts the oldest beyond the window.
    pub fn push(&mut self, x: f64, y: f64) {
        self.window.push_back((x, y));
        self.sums.push(x, y);
        if self.window.len() > self.capacity {
            let (ox, oy) = self.window.pop_front().unwrap();
            // Downdate the sums (exact since we store the raw pairs).
            self.sums.n -= 1;
            self.sums.sx -= ox;
            self.sums.sy -= oy;
            self.sums.sxx -= ox * ox;
            self.sums.syy -= oy * oy;
            self.sums.sxy -= ox * oy;
        }
    }

    /// Correlation over the live window.
    pub fn correlation(&self) -> Option<f64> {
        self.sums.correlation()
    }

    /// Live pairs.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

/// All-pairs windowed correlation over `d` streams.
#[derive(Clone, Debug)]
pub struct CorrelationMatrix {
    d: usize,
    window: VecDeque<Vec<f64>>,
    capacity: usize,
}

impl CorrelationMatrix {
    /// `d ≥ 2` streams, window of `w ≥ 2` ticks.
    pub fn new(d: usize, w: usize) -> Result<Self> {
        if d < 2 {
            return Err(SaError::invalid("d", "need at least 2 streams"));
        }
        if w < 2 {
            return Err(SaError::invalid("w", "must be at least 2"));
        }
        Ok(Self { d, window: VecDeque::with_capacity(w), capacity: w })
    }

    /// Push one tick: a value per stream.
    ///
    /// # Panics
    /// Panics if `values.len() != d`.
    pub fn push(&mut self, values: Vec<f64>) {
        assert_eq!(values.len(), self.d, "tick arity mismatch");
        self.window.push_back(values);
        if self.window.len() > self.capacity {
            self.window.pop_front();
        }
    }

    /// Correlation of streams `i` and `j` over the window.
    pub fn correlation(&self, i: usize, j: usize) -> Option<f64> {
        let x: Vec<f64> = self.window.iter().map(|t| t[i]).collect();
        let y: Vec<f64> = self.window.iter().map(|t| t[j]).collect();
        sa_core::stats::exact_pearson(&x, &y)
    }

    /// Pairs with |correlation| ≥ `threshold`, sorted by descending |r| —
    /// the "find highly correlated subsets" query of the Table-1 row.
    pub fn correlated_pairs(&self, threshold: f64) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for i in 0..self.d {
            for j in (i + 1)..self.d {
                if let Some(r) = self.correlation(i, j) {
                    if r.abs() >= threshold {
                        out.push((i, j, r));
                    }
                }
            }
        }
        out.sort_by(|a, b| b.2.abs().partial_cmp(&a.2.abs()).unwrap());
        out
    }

    /// Number of streams.
    pub fn dims(&self) -> usize {
        self.d
    }
}

/// Best lead/lag correlation within `±max_lag` over a rolling buffer.
#[derive(Clone, Debug)]
pub struct LaggedCorrelation {
    x: VecDeque<f64>,
    y: VecDeque<f64>,
    capacity: usize,
    max_lag: usize,
}

impl LaggedCorrelation {
    /// Buffer `w` pairs, search lags in `[-max_lag, +max_lag]`
    /// (positive lag = y follows x).
    pub fn new(w: usize, max_lag: usize) -> Result<Self> {
        if w < 2 * max_lag + 4 {
            return Err(SaError::invalid("w", "window too small for max_lag"));
        }
        Ok(Self {
            x: VecDeque::with_capacity(w),
            y: VecDeque::with_capacity(w),
            capacity: w,
            max_lag,
        })
    }

    /// Observe an aligned pair.
    pub fn push(&mut self, x: f64, y: f64) {
        self.x.push_back(x);
        self.y.push_back(y);
        if self.x.len() > self.capacity {
            self.x.pop_front();
            self.y.pop_front();
        }
    }

    /// `(best_lag, correlation)` maximizing |r|; positive lag means y
    /// lags x by that many ticks.
    pub fn best_lag(&self) -> Option<(i64, f64)> {
        if self.x.len() < 2 * self.max_lag + 4 {
            return None;
        }
        let xs: Vec<f64> = self.x.iter().copied().collect();
        let ys: Vec<f64> = self.y.iter().copied().collect();
        let n = xs.len();
        let mut best: Option<(i64, f64)> = None;
        for lag in -(self.max_lag as i64)..=(self.max_lag as i64) {
            let (xa, ya) = if lag >= 0 {
                (&xs[..n - lag as usize], &ys[lag as usize..])
            } else {
                (&xs[(-lag) as usize..], &ys[..n - (-lag) as usize])
            };
            if let Some(r) = sa_core::stats::exact_pearson(xa, ya) {
                if best.is_none_or(|(_, b)| r.abs() > b.abs()) {
                    best = Some((lag, r));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_matches_exact() {
        let mut sp = StreamingPearson::new();
        let mut rng = sa_core::rng::SplitMix64::new(1);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..5_000 {
            let x = rng.next_f64();
            let y = 0.7 * x + 0.3 * rng.next_f64();
            sp.push(x, y);
            xs.push(x);
            ys.push(y);
        }
        let exact = sa_core::stats::exact_pearson(&xs, &ys).unwrap();
        let est = sp.correlation().unwrap();
        assert!((est - exact).abs() < 1e-9, "{est} vs {exact}");
    }

    #[test]
    fn streaming_merge_equals_whole() {
        let mut a = StreamingPearson::new();
        let mut b = StreamingPearson::new();
        let mut whole = StreamingPearson::new();
        for i in 0..1000 {
            let x = (i as f64).sin();
            let y = (i as f64).cos();
            if i % 2 == 0 {
                a.push(x, y);
            } else {
                b.push(x, y);
            }
            whole.push(x, y);
        }
        a.merge(&b);
        assert!((a.correlation().unwrap() - whole.correlation().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn windowed_tracks_regime_change() {
        let mut wc = WindowedCorrelation::new(200).unwrap();
        let mut rng = sa_core::rng::SplitMix64::new(2);
        // Phase 1: positively correlated.
        for _ in 0..1_000 {
            let x = rng.next_f64();
            wc.push(x, x + 0.05 * rng.next_f64());
        }
        assert!(wc.correlation().unwrap() > 0.9);
        // Phase 2: anti-correlated; the window must flip sign.
        for _ in 0..1_000 {
            let x = rng.next_f64();
            wc.push(x, -x + 0.05 * rng.next_f64());
        }
        assert!(wc.correlation().unwrap() < -0.9);
        assert_eq!(wc.len(), 200);
    }

    #[test]
    fn matrix_finds_the_correlated_pair() {
        let mut cm = CorrelationMatrix::new(5, 256).unwrap();
        let mut rng = sa_core::rng::SplitMix64::new(3);
        for t in 0..1_000 {
            let base = (t as f64 / 10.0).sin();
            let mut tick = vec![0.0; 5];
            // Streams 1 and 3 follow the same signal; others are noise.
            tick[0] = rng.next_f64();
            tick[1] = base + 0.05 * rng.next_f64();
            tick[2] = rng.next_f64();
            tick[3] = base + 0.05 * rng.next_f64();
            tick[4] = rng.next_f64();
            cm.push(tick);
        }
        let pairs = cm.correlated_pairs(0.8);
        assert_eq!(pairs.len(), 1, "pairs = {pairs:?}");
        assert_eq!((pairs[0].0, pairs[0].1), (1, 3));
        assert!(pairs[0].2 > 0.9);
    }

    #[test]
    fn lagged_recovers_known_lag() {
        let mut lc = LaggedCorrelation::new(400, 20).unwrap();
        let mut history = VecDeque::new();
        let mut rng = sa_core::rng::SplitMix64::new(4);
        for t in 0..2_000u64 {
            let x = (t as f64 / 7.0).sin() + 0.1 * rng.next_f64();
            history.push_back(x);
            // y is x delayed by 8 ticks.
            let y = if history.len() > 8 { history[history.len() - 9] } else { 0.0 };
            lc.push(x, y);
        }
        let (lag, r) = lc.best_lag().unwrap();
        assert_eq!(lag, 8, "lag = {lag}, r = {r}");
        assert!(r > 0.9);
    }

    #[test]
    fn degenerate_inputs() {
        let sp = StreamingPearson::new();
        assert_eq!(sp.correlation(), None);
        let mut c = StreamingPearson::new();
        c.push(1.0, 1.0);
        c.push(1.0, 2.0); // zero x-variance
        assert_eq!(c.correlation(), None);
        assert!(WindowedCorrelation::new(1).is_err());
        assert!(CorrelationMatrix::new(1, 10).is_err());
        assert!(LaggedCorrelation::new(10, 10).is_err());
    }
}
