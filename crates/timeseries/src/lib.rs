//! # sa-timeseries
//!
//! Streaming time-series analytics covering four Table-1 rows:
//!
//! * **Anomaly Detection** ([`anomaly`]) — robust z-score over a rolling
//!   MAD window, CUSUM change detection, seasonal decomposition, and a
//!   distance-based detector (the \[135, 151, 150, …\] family; "sensor
//!   networks").
//! * **Data Prediction** ([`predict`]) — Kalman filters (the paper cites
//!   Kalman \[111\] and Kalman-filter event prediction \[160\]) and
//!   online AR/RLS regression for imputing missing sensor values.
//! * **Correlation** ([`correlation`]) — streaming Pearson, windowed
//!   correlation matrices and lagged correlation search (the
//!   StatStream/\[163, 165, 99\] line; "fraud detection").
//! * **Temporal Pattern Analysis** ([`patterns`]) — SAX-style
//!   discretization, motif discovery, and subsequence matching under
//!   z-normalized distance (\[60, 168, 38\]; "traffic analysis").
//!
//! Plus [`smoothing`] — EWMA and Holt's double exponential smoothing,
//! the substrate the detectors build on.

pub mod anomaly;
pub mod correlation;
pub mod patterns;
pub mod predict;
pub mod smoothing;
