//! Haar wavelet synopsis (§2 **Wavelets**): keep the `k` largest
//! normalized coefficients; reconstruction from them is the best k-term
//! L₂ approximation (Parseval).

use sa_core::{Result, SaError};

/// Forward Haar transform (orthonormal). Input length must be a power
/// of two; returns the coefficient vector.
pub fn haar_forward(values: &[f64]) -> Result<Vec<f64>> {
    let n = values.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(SaError::invalid("values", "length must be a power of two"));
    }
    let mut data = values.to_vec();
    let mut len = n;
    let sqrt2 = std::f64::consts::SQRT_2;
    while len > 1 {
        let half = len / 2;
        let mut tmp = vec![0.0; len];
        for i in 0..half {
            tmp[i] = (data[2 * i] + data[2 * i + 1]) / sqrt2;
            tmp[half + i] = (data[2 * i] - data[2 * i + 1]) / sqrt2;
        }
        data[..len].copy_from_slice(&tmp);
        len = half;
    }
    Ok(data)
}

/// Inverse Haar transform.
pub fn haar_inverse(coeffs: &[f64]) -> Result<Vec<f64>> {
    let n = coeffs.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(SaError::invalid("coeffs", "length must be a power of two"));
    }
    let mut data = coeffs.to_vec();
    let mut len = 2;
    let sqrt2 = std::f64::consts::SQRT_2;
    while len <= n {
        let half = len / 2;
        let mut tmp = vec![0.0; len];
        for i in 0..half {
            tmp[2 * i] = (data[i] + data[half + i]) / sqrt2;
            tmp[2 * i + 1] = (data[i] - data[half + i]) / sqrt2;
        }
        data[..len].copy_from_slice(&tmp);
        len *= 2;
    }
    Ok(data)
}

/// A k-term wavelet synopsis: the `k` largest-magnitude coefficients.
#[derive(Clone, Debug)]
pub struct WaveletSynopsis {
    /// (index, coefficient) pairs kept.
    pub coeffs: Vec<(usize, f64)>,
    /// Original signal length.
    pub n: usize,
}

impl WaveletSynopsis {
    /// Build from a signal (length must be a power of two), keeping `k`
    /// coefficients.
    pub fn build(values: &[f64], k: usize) -> Result<Self> {
        if k == 0 {
            return Err(SaError::invalid("k", "must be positive"));
        }
        let all = haar_forward(values)?;
        let mut indexed: Vec<(usize, f64)> = all.into_iter().enumerate().collect();
        indexed.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
        indexed.truncate(k);
        Ok(Self { coeffs: indexed, n: values.len() })
    }

    /// Reconstruct the approximate signal.
    pub fn reconstruct(&self) -> Vec<f64> {
        let mut coeffs = vec![0.0; self.n];
        for &(i, c) in &self.coeffs {
            coeffs[i] = c;
        }
        haar_inverse(&coeffs).expect("valid length")
    }

    /// L₂ error of the reconstruction against the original.
    pub fn l2_error(&self, original: &[f64]) -> f64 {
        let rec = self.reconstruct();
        original.iter().zip(&rec).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_identity() {
        let mut rng = sa_core::rng::SplitMix64::new(1);
        let values: Vec<f64> = (0..256).map(|_| rng.next_f64() * 10.0).collect();
        let coeffs = haar_forward(&values).unwrap();
        let back = haar_inverse(&coeffs).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut rng = sa_core::rng::SplitMix64::new(2);
        let values: Vec<f64> = (0..128).map(|_| rng.next_f64() - 0.5).collect();
        let coeffs = haar_forward(&values).unwrap();
        let e1: f64 = values.iter().map(|x| x * x).sum();
        let e2: f64 = coeffs.iter().map(|x| x * x).sum();
        assert!((e1 - e2).abs() < 1e-9, "{e1} vs {e2}");
    }

    #[test]
    fn constant_signal_needs_one_coefficient() {
        let values = vec![7.0; 64];
        let syn = WaveletSynopsis::build(&values, 1).unwrap();
        assert!(syn.l2_error(&values) < 1e-9);
        assert_eq!(syn.coeffs[0].0, 0, "energy must sit in the DC coefficient");
    }

    #[test]
    fn step_signal_compresses_well() {
        let mut values = vec![1.0; 32];
        values.extend(vec![9.0; 32]);
        // A dyadic-aligned step needs 2 coefficients.
        let syn = WaveletSynopsis::build(&values, 2).unwrap();
        assert!(syn.l2_error(&values) < 1e-9);
    }

    #[test]
    fn error_decreases_with_k_and_topk_is_optimal() {
        let mut rng = sa_core::rng::SplitMix64::new(3);
        let values: Vec<f64> =
            (0..256).map(|i| (i as f64 / 25.0).sin() * 5.0 + rng.next_f64()).collect();
        let mut last = f64::INFINITY;
        for k in [4, 16, 64, 256] {
            let syn = WaveletSynopsis::build(&values, k).unwrap();
            let err = syn.l2_error(&values);
            assert!(err <= last + 1e-9, "k={k}: {err} > {last}");
            last = err;
        }
        // Parseval optimality: error² = energy of dropped coefficients.
        let all = haar_forward(&values).unwrap();
        let mut mags: Vec<f64> = all.iter().map(|c| c * c).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let dropped: f64 = mags[16..].iter().sum();
        let syn = WaveletSynopsis::build(&values, 16).unwrap();
        assert!((syn.l2_error(&values).powi(2) - dropped).abs() < 1e-6, "top-k not optimal");
    }

    #[test]
    fn invalid_inputs() {
        assert!(haar_forward(&[]).is_err());
        assert!(haar_forward(&[1.0, 2.0, 3.0]).is_err());
        assert!(WaveletSynopsis::build(&[1.0, 2.0], 0).is_err());
    }
}
