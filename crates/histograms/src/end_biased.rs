//! End-biased histogram: exact counts for frequent values, a uniform
//! model for the rest — §2's third histogram flavour, built on the
//! SpaceSaving summary so it works on unbounded streams.

use sa_core::{Result, SaError};
use sa_sketches::heavy_hitters::SpaceSaving;
use std::collections::HashSet;
use std::hash::Hash;

/// Frequency model: exact head + uniform tail.
///
/// Values whose frequency exceeds `theta·n` keep (approximately) exact
/// counts via SpaceSaving; every other value's frequency is modelled as
/// `tail_mass / tail_distinct`. Point-frequency queries on skewed data
/// get the head exactly right while storing O(1/θ) counters.
#[derive(Clone, Debug)]
pub struct EndBiasedHistogram<T: Eq + Hash + Clone> {
    summary: SpaceSaving<T>,
    /// Distinct-count tracker for the tail model (exact set up to a cap,
    /// then a counter — callers needing huge domains should plug an HLL).
    distinct: HashSet<T>,
    theta: f64,
}

impl<T: Eq + Hash + Clone> EndBiasedHistogram<T> {
    /// Head threshold `theta ∈ (0,1)`; counters sized at `2/θ`.
    pub fn new(theta: f64) -> Result<Self> {
        if !(theta > 0.0 && theta < 1.0) {
            return Err(SaError::invalid("theta", "must be in (0,1)"));
        }
        let k = (2.0 / theta).ceil() as usize;
        Ok(Self { summary: SpaceSaving::new(k)?, distinct: HashSet::new(), theta })
    }

    /// Observe one value.
    pub fn insert(&mut self, item: T) {
        self.distinct.insert(item.clone());
        self.summary.insert(item);
    }

    /// The exact-count head: values above `θ·n` with their counts.
    pub fn head(&self) -> Vec<(T, u64)> {
        self.summary.heavy_hitters(self.theta).into_iter().map(|h| (h.item, h.count)).collect()
    }

    /// Estimated frequency of a value: head count if frequent, else the
    /// uniform tail model.
    pub fn estimate(&self, item: &T) -> f64 {
        let n = self.summary.n() as f64;
        let head = self.head();
        if let Some((_, c)) = head.iter().find(|(i, _)| i == item) {
            return *c as f64;
        }
        let head_mass: u64 = head.iter().map(|(_, c)| c).sum();
        let head_count = head.len();
        let tail_mass = n - head_mass as f64;
        let tail_distinct = (self.distinct.len() - head_count).max(1) as f64;
        if self.distinct.contains(item) {
            (tail_mass / tail_distinct).max(0.0)
        } else {
            0.0
        }
    }

    /// Values seen.
    pub fn n(&self) -> u64 {
        self.summary.n()
    }

    /// Distinct values seen.
    pub fn distinct(&self) -> usize {
        self.distinct.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::generators::ZipfStream;
    use sa_core::stats::exact_counts;

    #[test]
    fn head_is_near_exact_tail_is_uniform() {
        let mut g = ZipfStream::new(1_000, 1.3, 41);
        let items = g.take_vec(100_000);
        let mut h = EndBiasedHistogram::new(0.02).unwrap();
        for &it in &items {
            h.insert(it);
        }
        let truth = exact_counts(&items);
        // Head values: within SpaceSaving's n/k error of the truth.
        let bound = 100_000.0 * 0.02 / 2.0;
        for (item, c) in h.head() {
            let t = truth[&item] as f64;
            assert!((c as f64 - t).abs() <= bound, "head {item}: {c} vs {t}");
        }
        // A mid-tail item is modelled, not zero — and within an order of
        // magnitude on Zipf data.
        let mid = 500u64; // rank-500 item: clearly tail
        if truth.contains_key(&mid) {
            let est = h.estimate(&mid);
            let t = truth[&mid] as f64;
            assert!(est > 0.0);
            assert!(est / t < 20.0 && t / est < 20.0, "est {est} vs {t}");
        }
        // Never-seen items estimate zero.
        assert_eq!(h.estimate(&999_999), 0.0);
    }

    #[test]
    fn uniform_stream_has_no_head() {
        let mut h = EndBiasedHistogram::new(0.05).unwrap();
        for i in 0..10_000u64 {
            h.insert(i % 100);
        }
        // Every value has frequency 1% < θ: head empty, tail uniform.
        assert!(h.head().is_empty());
        let est = h.estimate(&42);
        assert!((est - 100.0).abs() < 30.0, "est {est}");
    }

    #[test]
    fn invalid_theta() {
        assert!(EndBiasedHistogram::<u64>::new(0.0).is_err());
        assert!(EndBiasedHistogram::<u64>::new(1.0).is_err());
    }
}
