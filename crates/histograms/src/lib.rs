//! # sa-histograms
//!
//! Distribution synopses — Section 2's **Histograms** and **Wavelets**
//! techniques, quoted directly from the paper:
//!
//! * [`EquiWidthHistogram`] — "partition the domain into buckets such
//!   that the number of values falling into each bucket is uniform
//!   across all buckets" (equi-width over a fixed domain; streaming
//!   updates).
//! * [`EndBiasedHistogram`] — "maintain exact counts of items that occur
//!   with frequency above a threshold, and approximate the other counts
//!   by a uniform distribution".
//! * [`VOptimalHistogram`] — "approximates the distribution … by a
//!   piecewise-constant function, so as to minimize the sum of squared
//!   error" (exact O(n²B) dynamic program, the offline reference of the
//!   Guha–Koudas–Shim \[96\] line, plus a streaming block-wise variant).
//! * [`wavelet`] — Haar wavelet synopsis: "the signal reconstructed from
//!   the top few wavelet coefficients best approximates the original
//!   signal in terms of the L₂ norm" (\[91\]).

mod end_biased;
mod equiwidth;
mod voptimal;
pub mod wavelet;

pub use end_biased::EndBiasedHistogram;
pub use equiwidth::EquiWidthHistogram;
pub use voptimal::{v_optimal, Bucket, VOptimalHistogram};
