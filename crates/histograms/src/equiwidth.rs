//! Equi-width histogram over a fixed numeric domain.

use sa_core::{Merge, Result, SaError};

/// `b` equal-width buckets over `[lo, hi)`; out-of-range values clamp to
/// the edge buckets. O(1) updates, mergeable across partitions.
#[derive(Clone, Debug)]
pub struct EquiWidthHistogram {
    counts: Vec<u64>,
    lo: f64,
    hi: f64,
    n: u64,
}

impl EquiWidthHistogram {
    /// `b ≥ 1` buckets over `lo < hi`.
    pub fn new(lo: f64, hi: f64, b: usize) -> Result<Self> {
        if b == 0 {
            return Err(SaError::invalid("b", "must be positive"));
        }
        if lo.is_nan() || hi.is_nan() || lo >= hi {
            return Err(SaError::invalid("lo", "must be below hi"));
        }
        Ok(Self { counts: vec![0; b], lo, hi, n: 0 })
    }

    /// Bucket index for a value.
    pub fn bucket_of(&self, x: f64) -> usize {
        let b = self.counts.len();
        if x < self.lo {
            return 0;
        }
        let idx = ((x - self.lo) / (self.hi - self.lo) * b as f64) as usize;
        idx.min(b - 1)
    }

    /// Observe one value.
    pub fn insert(&mut self, x: f64) {
        let i = self.bucket_of(x);
        self.counts[i] += 1;
        self.n += 1;
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimated density (fraction of mass) of the bucket holding `x`.
    pub fn density_at(&self, x: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.counts[self.bucket_of(x)] as f64 / self.n as f64
    }

    /// Estimated count of values in `[a, b)` assuming uniform spread
    /// within buckets.
    pub fn range_count(&self, a: f64, b: f64) -> f64 {
        if self.n == 0 || a >= b {
            return 0.0;
        }
        let nb = self.counts.len() as f64;
        let width = (self.hi - self.lo) / nb;
        let mut total = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let blo = self.lo + i as f64 * width;
            let bhi = blo + width;
            let overlap = (b.min(bhi) - a.max(blo)).max(0.0);
            total += c as f64 * overlap / width;
        }
        total
    }

    /// Values seen.
    pub fn n(&self) -> u64 {
        self.n
    }
}

impl Merge for EquiWidthHistogram {
    fn merge(&mut self, other: &Self) -> Result<()> {
        if self.lo != other.lo || self.hi != other.hi || self.counts.len() != other.counts.len() {
            return Err(SaError::IncompatibleMerge("histogram shape mismatch".into()));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.n += other.n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment() {
        let h = EquiWidthHistogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bucket_of(0.0), 0);
        assert_eq!(h.bucket_of(1.99), 0);
        assert_eq!(h.bucket_of(2.0), 1);
        assert_eq!(h.bucket_of(9.99), 4);
        assert_eq!(h.bucket_of(10.0), 4); // clamp
        assert_eq!(h.bucket_of(-5.0), 0); // clamp
    }

    #[test]
    fn uniform_data_fills_uniformly() {
        let mut h = EquiWidthHistogram::new(0.0, 1.0, 10).unwrap();
        let mut rng = sa_core::rng::SplitMix64::new(1);
        for _ in 0..100_000 {
            h.insert(rng.next_f64());
        }
        for &c in h.counts() {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn range_count_interpolates() {
        let mut h = EquiWidthHistogram::new(0.0, 10.0, 10).unwrap();
        let mut rng = sa_core::rng::SplitMix64::new(2);
        for _ in 0..50_000 {
            h.insert(rng.next_f64() * 10.0);
        }
        let est = h.range_count(2.5, 7.5);
        assert!((est - 25_000.0).abs() < 1_500.0, "est {est}");
        assert_eq!(h.range_count(5.0, 5.0), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = EquiWidthHistogram::new(0.0, 1.0, 4).unwrap();
        let mut b = EquiWidthHistogram::new(0.0, 1.0, 4).unwrap();
        a.insert(0.1);
        b.insert(0.9);
        a.merge(&b).unwrap();
        assert_eq!(a.n(), 2);
        assert_eq!(a.counts()[0], 1);
        assert_eq!(a.counts()[3], 1);
        let c = EquiWidthHistogram::new(0.0, 2.0, 4).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn invalid_params() {
        assert!(EquiWidthHistogram::new(0.0, 1.0, 0).is_err());
        assert!(EquiWidthHistogram::new(1.0, 1.0, 4).is_err());
        assert!(EquiWidthHistogram::new(2.0, 1.0, 4).is_err());
    }
}
