//! V-optimal histogram: piecewise-constant approximation minimizing the
//! sum of squared errors (§2; the Guha–Koudas–Shim \[96\] problem).

use sa_core::{Result, SaError};

/// One histogram bucket over `values[start..end)` approximated by its
/// mean.
#[derive(Clone, Debug, PartialEq)]
pub struct Bucket {
    /// Inclusive start index.
    pub start: usize,
    /// Exclusive end index.
    pub end: usize,
    /// Bucket mean (the piecewise-constant value).
    pub mean: f64,
    /// Sum of squared errors within the bucket.
    pub sse: f64,
}

/// Exact V-optimal bucketing via dynamic programming: O(n²·B) time,
/// O(n·B) space. Returns the optimal buckets and total SSE.
pub fn v_optimal(values: &[f64], b: usize) -> Result<(Vec<Bucket>, f64)> {
    let n = values.len();
    if n == 0 {
        return Err(SaError::InsufficientData("empty input".into()));
    }
    if b == 0 {
        return Err(SaError::invalid("b", "must be positive"));
    }
    let b = b.min(n);
    // Prefix sums for O(1) segment SSE.
    let mut pre = vec![0.0; n + 1];
    let mut pre2 = vec![0.0; n + 1];
    for (i, &v) in values.iter().enumerate() {
        pre[i + 1] = pre[i] + v;
        pre2[i + 1] = pre2[i] + v * v;
    }
    let seg_sse = |i: usize, j: usize| -> f64 {
        // SSE of values[i..j] around its mean.
        let len = (j - i) as f64;
        let s = pre[j] - pre[i];
        let s2 = pre2[j] - pre2[i];
        (s2 - s * s / len).max(0.0)
    };
    // dp[k][j] = min SSE of values[..j] with k buckets.
    let mut dp = vec![vec![f64::INFINITY; n + 1]; b + 1];
    let mut cut = vec![vec![0usize; n + 1]; b + 1];
    dp[0][0] = 0.0;
    for k in 1..=b {
        for j in k..=n {
            for i in (k - 1)..j {
                let cand = dp[k - 1][i] + seg_sse(i, j);
                if cand < dp[k][j] {
                    dp[k][j] = cand;
                    cut[k][j] = i;
                }
            }
        }
    }
    // Choose the bucket count (≤ b) achieving the minimum (more buckets
    // never hurt, so this is dp[b][n], but guard against n < b).
    let total = dp[b][n];
    let mut buckets = Vec::with_capacity(b);
    let mut j = n;
    let mut k = b;
    while k > 0 {
        let i = cut[k][j];
        let len = (j - i) as f64;
        let mean = (pre[j] - pre[i]) / len;
        buckets.push(Bucket { start: i, end: j, mean, sse: seg_sse(i, j) });
        j = i;
        k -= 1;
    }
    buckets.reverse();
    Ok((buckets, total))
}

/// Streaming (block-wise) V-optimal approximation.
///
/// Buffers `block` values, compresses each block with an exact
/// `v_optimal` into `b` buckets, and keeps the concatenated
/// piecewise-constant model — the buffer-and-compress scheme behind the
/// "fast, small-space approximate histogram maintenance" line (\[91\]).
#[derive(Clone, Debug)]
pub struct VOptimalHistogram {
    block: usize,
    b: usize,
    buffer: Vec<f64>,
    /// Compressed representation: (length, mean) runs.
    runs: Vec<(usize, f64)>,
    n: u64,
}

impl VOptimalHistogram {
    /// Compress every `block ≥ 4` values into `b ≥ 1` buckets.
    pub fn new(block: usize, b: usize) -> Result<Self> {
        if block < 4 {
            return Err(SaError::invalid("block", "must be at least 4"));
        }
        if b == 0 || b > block {
            return Err(SaError::invalid("b", "must be in [1, block]"));
        }
        Ok(Self { block, b, buffer: Vec::with_capacity(block), runs: Vec::new(), n: 0 })
    }

    /// Observe one value.
    pub fn insert(&mut self, x: f64) {
        self.n += 1;
        self.buffer.push(x);
        if self.buffer.len() >= self.block {
            let vals = std::mem::take(&mut self.buffer);
            let (buckets, _) = v_optimal(&vals, self.b).expect("non-empty block");
            for bk in buckets {
                self.runs.push((bk.end - bk.start, bk.mean));
            }
        }
    }

    /// Reconstruct the approximate value at stream position `i`.
    pub fn value_at(&self, i: u64) -> Option<f64> {
        let mut pos = 0u64;
        for &(len, mean) in &self.runs {
            pos += len as u64;
            if i < pos {
                return Some(mean);
            }
        }
        let off = (i - pos) as usize;
        self.buffer.get(off).copied()
    }

    /// Stored runs + buffered values (space diagnostic).
    pub fn stored(&self) -> usize {
        self.runs.len() + self.buffer.len()
    }

    /// Values seen.
    pub fn n(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piecewise_constant_input_recovered_exactly() {
        let mut values = Vec::new();
        values.extend(std::iter::repeat_n(5.0, 20));
        values.extend(std::iter::repeat_n(-3.0, 15));
        values.extend(std::iter::repeat_n(9.0, 25));
        let (buckets, sse) = v_optimal(&values, 3).unwrap();
        assert_eq!(buckets.len(), 3);
        assert_eq!(sse, 0.0);
        assert_eq!(buckets[0].end, 20);
        assert_eq!(buckets[1].end, 35);
        assert_eq!(buckets[0].mean, 5.0);
        assert_eq!(buckets[1].mean, -3.0);
        assert_eq!(buckets[2].mean, 9.0);
    }

    #[test]
    fn more_buckets_never_increase_sse() {
        let mut rng = sa_core::rng::SplitMix64::new(5);
        let values: Vec<f64> = (0..80).map(|_| rng.next_f64() * 10.0).collect();
        let mut last = f64::INFINITY;
        for b in 1..=10 {
            let (_, sse) = v_optimal(&values, b).unwrap();
            assert!(sse <= last + 1e-9, "b={b}: {sse} > {last}");
            last = sse;
        }
    }

    #[test]
    fn beats_equal_width_split_on_skewed_breakpoints() {
        // One step not aligned with halves: V-optimal must find it.
        let mut values = vec![0.0; 30];
        values.extend(vec![100.0; 10]);
        let (buckets, sse) = v_optimal(&values, 2).unwrap();
        assert_eq!(sse, 0.0);
        assert_eq!(buckets[0].end, 30);
    }

    #[test]
    fn dp_matches_brute_force_small() {
        let values = [1.0, 2.0, 8.0, 9.0, 3.0, 4.0];
        let (_, sse) = v_optimal(&values, 3).unwrap();
        // Brute force all 2-cut positions.
        let mut best = f64::INFINITY;
        let seg = |i: usize, j: usize| -> f64 {
            let s: f64 = values[i..j].iter().sum();
            let m = s / (j - i) as f64;
            values[i..j].iter().map(|v| (v - m) * (v - m)).sum()
        };
        for c1 in 1..5 {
            for c2 in (c1 + 1)..6 {
                best = best.min(seg(0, c1) + seg(c1, c2) + seg(c2, 6));
            }
        }
        assert!((sse - best).abs() < 1e-9, "dp {sse} vs brute {best}");
    }

    #[test]
    fn streaming_variant_reconstructs_blocks() {
        let mut h = VOptimalHistogram::new(16, 4).unwrap();
        // Step signal aligned with nothing in particular.
        for i in 0..160u64 {
            h.insert(if (i / 10) % 2 == 0 { 1.0 } else { 5.0 });
        }
        // Reconstruction error should be small relative to signal range.
        let mut err = 0.0;
        for i in 0..160u64 {
            let truth = if (i / 10) % 2 == 0 { 1.0 } else { 5.0 };
            err += (h.value_at(i).unwrap() - truth).abs();
        }
        assert!(err / 160.0 < 1.0, "mean abs err {}", err / 160.0);
        assert!(h.stored() < 160, "no compression: {}", h.stored());
    }

    #[test]
    fn invalid_params() {
        assert!(v_optimal(&[], 3).is_err());
        assert!(v_optimal(&[1.0], 0).is_err());
        assert!(VOptimalHistogram::new(2, 1).is_err());
        assert!(VOptimalHistogram::new(16, 0).is_err());
        assert!(VOptimalHistogram::new(16, 17).is_err());
    }
}
