//! Offline stand-in for the `rand` crate.
//!
//! The build environment vendors no external crates, so the workspace
//! ships the subset of the `rand` 0.8 API it actually uses, backed by
//! SplitMix64. Statistical quality is ample for workload generation and
//! tests; nothing here is cryptographic. Swap back to upstream `rand`
//! by deleting this package and restoring the registry dependency —
//! call sites need no changes.

/// Low-level source of uniform 64-bit words.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed (the only constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Seeded constructor; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    // Lemire multiply-shift; bias < 2^-64 per draw.
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, width) as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64, i32, u8);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn draw<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing RNG methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.draw(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64 (full period 2^64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::RngCore;

    /// Fisher–Yates shuffling for slices.
    pub trait SliceRandom {
        /// Shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let bound = (i + 1) as u64;
                let j = ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..10_000 {
            let x: f64 = a.gen();
            assert!((0.0..1.0).contains(&x));
            let n = a.gen_range(3..10u64);
            assert!((3..10).contains(&n));
            let m = a.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&m));
            let f = a.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left input sorted");
    }
}
