//! Sequential (online) k-means — MacQueen's update with per-centroid
//! counts, plus an optional decay for drifting streams.

use crate::nearest;
use sa_core::codec::{ByteReader, ByteWriter};
use sa_core::{Merge, Result, SaError, Synopsis};

/// One-point-at-a-time k-means.
///
/// Each arrival moves its nearest centroid by `η = 1/(count+1)` (or a
/// fixed rate under decay) toward the point. O(k·d) per point, no
/// buffer — the cheapest streaming clusterer and the baseline for t14.
#[derive(Clone, Debug)]
pub struct OnlineKMeans {
    centers: Vec<Vec<f64>>,
    counts: Vec<u64>,
    k: usize,
    dim: usize,
    /// Fixed learning rate; `None` = MacQueen's 1/n schedule.
    rate: Option<f64>,
    seen: u64,
}

impl OnlineKMeans {
    /// `k ≥ 1` clusters in `dim ≥ 1` dimensions.
    pub fn new(k: usize, dim: usize) -> Result<Self> {
        if k == 0 {
            return Err(SaError::invalid("k", "must be positive"));
        }
        if dim == 0 {
            return Err(SaError::invalid("dim", "must be positive"));
        }
        Ok(Self {
            centers: Vec::with_capacity(k),
            counts: Vec::with_capacity(k),
            k,
            dim,
            rate: None,
            seen: 0,
        })
    }

    /// Use a fixed learning rate (tracks drift; forgets the far past).
    pub fn with_fixed_rate(mut self, rate: f64) -> Result<Self> {
        if !(rate > 0.0 && rate < 1.0) {
            return Err(SaError::invalid("rate", "must be in (0,1)"));
        }
        self.rate = Some(rate);
        Ok(self)
    }

    /// Feed one point; returns the index of the cluster it joined.
    ///
    /// # Panics
    /// Panics if `point.len() != dim`.
    pub fn push(&mut self, point: &[f64]) -> usize {
        assert_eq!(point.len(), self.dim, "dimension mismatch");
        self.seen += 1;
        // The first k distinct points become the initial centroids.
        if self.centers.len() < self.k {
            self.centers.push(point.to_vec());
            self.counts.push(1);
            return self.centers.len() - 1;
        }
        let (ci, _) = nearest(point, &self.centers);
        self.counts[ci] += 1;
        let eta = self.rate.unwrap_or(1.0 / self.counts[ci] as f64);
        for (c, &x) in self.centers[ci].iter_mut().zip(point) {
            *c += eta * (x - *c);
        }
        ci
    }

    /// Current centroids.
    pub fn centers(&self) -> &[Vec<f64>] {
        &self.centers
    }

    /// Points assigned per centroid.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Points seen.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl Merge for OnlineKMeans {
    /// Fold the other clusterer's centroids in as count-weighted
    /// points: while this side has spare capacity they seed new
    /// centroids; otherwise each moves its nearest centroid by the
    /// count-proportional step `η = count/(count_here + count)` — the
    /// exact weighted mean of the two centroids. Conserves the total
    /// assigned count and `seen`, never exceeds `k` centroids, and
    /// keeps every centroid inside the convex hull of the inputs.
    fn merge(&mut self, other: &Self) -> Result<()> {
        if self.k != other.k || self.dim != other.dim || self.rate != other.rate {
            return Err(SaError::IncompatibleMerge(format!(
                "k-means shape mismatch: (k {}, dim {}, rate {:?}) vs (k {}, dim {}, rate {:?})",
                self.k, self.dim, self.rate, other.k, other.dim, other.rate
            )));
        }
        for (center, &count) in other.centers.iter().zip(&other.counts) {
            if self.centers.len() < self.k {
                self.centers.push(center.clone());
                self.counts.push(count);
                continue;
            }
            let (ci, _) = nearest(center, &self.centers);
            let eta = count as f64 / (self.counts[ci] + count) as f64;
            for (c, &x) in self.centers[ci].iter_mut().zip(center) {
                *c += eta * (x - *c);
            }
            self.counts[ci] += count;
        }
        self.seen += other.seen;
        Ok(())
    }
}

const SNAPSHOT_TAG: u8 = b'K';

impl Synopsis for OnlineKMeans {
    fn snapshot(&self) -> Vec<u8> {
        let mut w =
            ByteWriter::with_capacity(1 + 8 * 4 + 9 + self.centers.len() * (self.dim + 1) * 8);
        w.tag(SNAPSHOT_TAG).put_u64(self.k as u64).put_u64(self.dim as u64).put_u64(self.seen);
        match self.rate {
            Some(r) => w.put_bool(true).put_f64(r),
            None => w.put_bool(false),
        };
        w.put_u64(self.centers.len() as u64);
        for (center, &count) in self.centers.iter().zip(&self.counts) {
            w.put_u64(count);
            for &c in center {
                w.put_f64(c);
            }
        }
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = ByteReader::new(bytes);
        r.expect_tag(SNAPSHOT_TAG, "OnlineKMeans")?;
        let k = r.get_u64()? as usize;
        let dim = r.get_u64()? as usize;
        let seen = r.get_u64()?;
        let rate = if r.get_bool()? { Some(r.get_f64()?) } else { None };
        if k == 0 || dim == 0 {
            return Err(SaError::Codec(format!("k-means snapshot has k={k}, dim={dim}")));
        }
        let len = r.get_len(8 * (dim + 1))?;
        if len > k {
            return Err(SaError::Codec(format!("k-means snapshot has {len} centers for k={k}")));
        }
        let mut centers = Vec::with_capacity(k);
        let mut counts = Vec::with_capacity(k);
        for _ in 0..len {
            counts.push(r.get_u64()?);
            let mut center = Vec::with_capacity(dim);
            for _ in 0..dim {
                center.push(r.get_f64()?);
            }
            centers.push(center);
        }
        r.finish()?;
        *self = Self { centers, counts, k, dim, rate, seen };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::generators::GaussianMixtureGen;

    #[test]
    fn converges_on_separated_mixture() {
        let mut g = GaussianMixtureGen::new(3, 2, 50.0, 1.0, 11);
        let truth = g.centers.clone();
        let mut km = OnlineKMeans::new(3, 2).unwrap();
        for p in g.take_vec(10_000) {
            km.push(&p.coords);
        }
        for t in &truth {
            let (_, d2) = crate::nearest(t, km.centers());
            assert!(d2.sqrt() < 8.0, "missed {t:?} by {}", d2.sqrt());
        }
    }

    #[test]
    fn fixed_rate_tracks_drift() {
        let mut km = OnlineKMeans::new(1, 1).unwrap().with_fixed_rate(0.05).unwrap();
        for _ in 0..2_000 {
            km.push(&[0.0]);
        }
        for _ in 0..2_000 {
            km.push(&[100.0]);
        }
        // A 1/n scheme would sit near 50; fixed rate follows the drift.
        assert!((km.centers()[0][0] - 100.0).abs() < 1.0, "center = {:?}", km.centers()[0]);
    }

    #[test]
    fn macqueen_rate_averages_history() {
        let mut km = OnlineKMeans::new(1, 1).unwrap();
        for i in 0..1_000 {
            km.push(&[if i % 2 == 0 { 0.0 } else { 10.0 }]);
        }
        assert!((km.centers()[0][0] - 5.0).abs() < 0.5, "center = {:?}", km.centers()[0]);
    }

    #[test]
    fn assignment_indices_returned() {
        let mut km = OnlineKMeans::new(2, 1).unwrap();
        let a = km.push(&[0.0]);
        let b = km.push(&[100.0]);
        assert_ne!(a, b);
        let c = km.push(&[1.0]);
        assert_eq!(c, a);
    }

    #[test]
    fn invalid_params() {
        assert!(OnlineKMeans::new(0, 2).is_err());
        assert!(OnlineKMeans::new(2, 0).is_err());
        assert!(OnlineKMeans::new(2, 2).unwrap().with_fixed_rate(1.0).is_err());
    }

    #[test]
    fn snapshot_restore_resumes_exactly() {
        let mut g = GaussianMixtureGen::new(3, 2, 50.0, 1.0, 12);
        let mut s = OnlineKMeans::new(3, 2).unwrap();
        for p in g.take_vec(2_000) {
            s.push(&p.coords);
        }
        let mut t = OnlineKMeans::new(1, 1).unwrap(); // differently configured
        t.restore(&s.snapshot()).unwrap();
        assert_eq!(t.centers(), s.centers());
        assert_eq!(t.counts(), s.counts());
        for p in g.take_vec(1_000) {
            s.push(&p.coords);
            t.push(&p.coords);
        }
        assert_eq!(t.centers(), s.centers());
        assert_eq!(t.seen(), s.seen());
        // Fixed-rate variant round-trips too.
        let fixed = OnlineKMeans::new(2, 1).unwrap().with_fixed_rate(0.1).unwrap();
        let mut back = OnlineKMeans::new(2, 1).unwrap();
        back.restore(&fixed.snapshot()).unwrap();
        assert_eq!(back.snapshot(), fixed.snapshot());
        let snap = s.snapshot();
        assert!(back.restore(&snap[..snap.len() - 6]).is_err());
    }
}
