//! CluStream-style micro-clusters (Aggarwal's stream-clustering survey
//! line, the paper's \[34\]): the online phase maintains many small
//! cluster-feature vectors; an offline phase reclusters them on demand.

use crate::kmeans::weighted_kmeans;
use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};

/// A cluster feature vector: (N, LS, SS) with a last-update timestamp.
#[derive(Clone, Debug)]
pub struct MicroCluster {
    /// Decayed point count.
    pub n: f64,
    /// Decayed linear sum per dimension.
    pub ls: Vec<f64>,
    /// Decayed squared sum per dimension.
    pub ss: Vec<f64>,
    /// Time of last absorption.
    pub last_update: u64,
}

impl MicroCluster {
    fn new(point: &[f64], t: u64) -> Self {
        Self {
            n: 1.0,
            ls: point.to_vec(),
            ss: point.iter().map(|x| x * x).collect(),
            last_update: t,
        }
    }

    /// Centroid.
    pub fn center(&self) -> Vec<f64> {
        self.ls.iter().map(|s| s / self.n).collect()
    }

    /// RMS radius (average per-dimension deviation).
    pub fn radius(&self) -> f64 {
        let mut var = 0.0;
        for d in 0..self.ls.len() {
            let mean = self.ls[d] / self.n;
            var += (self.ss[d] / self.n - mean * mean).max(0.0);
        }
        (var / self.ls.len() as f64).sqrt()
    }

    fn decay(&mut self, now: u64, lambda: f64) {
        let dt = now.saturating_sub(self.last_update) as f64;
        if dt > 0.0 {
            let f = (-lambda * dt).exp();
            self.n *= f;
            for v in &mut self.ls {
                *v *= f;
            }
            for v in &mut self.ss {
                *v *= f;
            }
            self.last_update = now;
        }
    }

    fn absorb(&mut self, point: &[f64], t: u64, lambda: f64) {
        self.decay(t, lambda);
        self.n += 1.0;
        for (s, &x) in self.ls.iter_mut().zip(point) {
            *s += x;
        }
        for (s, &x) in self.ss.iter_mut().zip(point) {
            *s += x * x;
        }
    }

    fn merge(&mut self, other: &MicroCluster) {
        self.n += other.n;
        for (a, b) in self.ls.iter_mut().zip(&other.ls) {
            *a += b;
        }
        for (a, b) in self.ss.iter_mut().zip(&other.ss) {
            *a += b;
        }
        self.last_update = self.last_update.max(other.last_update);
    }
}

/// The online micro-clustering phase.
///
/// A point joins its nearest micro-cluster when within
/// `radius_factor ×` that cluster's radius; otherwise it founds a new
/// one. At capacity, the two closest micro-clusters merge (or a faded
/// one is dropped). `macro_clusters(k)` runs the offline phase.
#[derive(Clone, Debug)]
pub struct MicroClusters {
    clusters: Vec<MicroCluster>,
    max_clusters: usize,
    radius_factor: f64,
    /// Exponential decay rate per tick (0 = no fading).
    lambda: f64,
    now: u64,
    rng: SplitMix64,
    /// Bootstrap buffer: CluStream seeds its micro-clusters with an
    /// offline k-means over the first points, because before any radius
    /// statistics exist there is no sound absorb/spawn rule.
    init_buffer: Vec<Vec<f64>>,
}

impl MicroClusters {
    /// At most `max_clusters ≥ 4` micro-clusters; joining radius factor
    /// (typically 2–3), decay `lambda ≥ 0` per tick.
    pub fn new(max_clusters: usize, radius_factor: f64, lambda: f64) -> Result<Self> {
        if max_clusters < 4 {
            return Err(SaError::invalid("max_clusters", "must be at least 4"));
        }
        if radius_factor <= 0.0 {
            return Err(SaError::invalid("radius_factor", "must be positive"));
        }
        if lambda < 0.0 {
            return Err(SaError::invalid("lambda", "must be non-negative"));
        }
        Ok(Self {
            clusters: Vec::with_capacity(max_clusters),
            max_clusters,
            radius_factor,
            lambda,
            now: 0,
            rng: SplitMix64::new(0x71C),
            init_buffer: Vec::new(),
        })
    }

    /// Offline bootstrap: k-means the buffered points into
    /// `max_clusters/2` seed micro-clusters.
    fn bootstrap(&mut self) {
        let pts = std::mem::take(&mut self.init_buffer);
        let ws = vec![1.0; pts.len()];
        let k = (self.max_clusters / 2).max(2).min(pts.len());
        let centers = weighted_kmeans(&pts, &ws, k, &mut self.rng).expect("non-empty");
        let mut seeds: Vec<Option<MicroCluster>> = vec![None; centers.len()];
        for p in &pts {
            let (ci, _) = crate::nearest(p, &centers);
            match &mut seeds[ci] {
                None => seeds[ci] = Some(MicroCluster::new(p, self.now)),
                Some(mc) => mc.absorb(p, self.now, 0.0),
            }
        }
        self.clusters = seeds.into_iter().flatten().collect();
    }

    /// Feed one point.
    pub fn push(&mut self, point: &[f64]) {
        self.now += 1;
        if self.clusters.is_empty() {
            // Bootstrap phase: buffer until 5·max_clusters points, then
            // seed micro-clusters offline (as CluStream does).
            self.init_buffer.push(point.to_vec());
            if self.init_buffer.len() >= 5 * self.max_clusters {
                self.bootstrap();
            }
            return;
        }
        // Nearest micro-cluster by centroid distance.
        let mut best = (0usize, f64::INFINITY);
        for (i, mc) in self.clusters.iter().enumerate() {
            let d2 = crate::dist2(point, &mc.center());
            if d2 < best.1 {
                best = (i, d2);
            }
        }
        let (bi, bd2) = best;
        let mc = &self.clusters[bi];
        // Boundary: factor × radius. A singleton has no radius yet, so
        // CluStream falls back to half its distance to the nearest other
        // micro-cluster.
        let boundary = if mc.n < 2.0 {
            let c = mc.center();
            let mut nn = f64::INFINITY;
            for (j, other) in self.clusters.iter().enumerate() {
                if j != bi {
                    nn = nn.min(crate::dist2(&c, &other.center()));
                }
            }
            if nn.is_finite() {
                nn.sqrt() / 2.0
            } else {
                // Lone singleton: only absorb exact duplicates; anything
                // else founds the second cluster.
                0.0
            }
        } else {
            (self.radius_factor * mc.radius()).max(1e-3)
        };
        if bd2.sqrt() <= boundary {
            let lambda = self.lambda;
            let now = self.now;
            self.clusters[bi].absorb(point, now, lambda);
        } else {
            self.clusters.push(MicroCluster::new(point, self.now));
            if self.clusters.len() > self.max_clusters {
                self.compact();
            }
        }
    }

    /// Drop the most faded cluster or merge the two closest.
    fn compact(&mut self) {
        // Prefer dropping clusters faded to < 1 effective point.
        for mc in &mut self.clusters {
            mc.decay(self.now, self.lambda);
        }
        if let Some((i, _)) =
            self.clusters.iter().enumerate().min_by(|a, b| a.1.n.partial_cmp(&b.1.n).unwrap())
        {
            if self.clusters[i].n < 1.0 {
                self.clusters.swap_remove(i);
                return;
            }
        }
        // Merge the closest pair — but only if they are genuinely close
        // relative to their radii. Merging distant clusters would create
        // a fat cluster whose boundary swallows whole regions (runaway
        // absorption); in that case the least-relevant (lowest-weight)
        // cluster is dropped instead, which is how CluStream sheds
        // outlier singletons.
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..self.clusters.len() {
            let ci = self.clusters[i].center();
            for j in (i + 1)..self.clusters.len() {
                let d = crate::dist2(&ci, &self.clusters[j].center());
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, d2) = best;
        let scale = self.clusters[i].radius() + self.clusters[j].radius();
        if d2.sqrt() <= 4.0 * scale {
            let other = self.clusters.swap_remove(j);
            self.clusters[i].merge(&other);
        } else if let Some((w, _)) =
            self.clusters.iter().enumerate().min_by(|a, b| a.1.n.partial_cmp(&b.1.n).unwrap())
        {
            self.clusters.swap_remove(w);
        }
    }

    /// Offline phase: recluster micro-cluster centroids (weighted by
    /// effective counts) into `k` macro-centers.
    pub fn macro_clusters(&mut self, k: usize) -> Result<Vec<Vec<f64>>> {
        if self.clusters.is_empty() && !self.init_buffer.is_empty() {
            // Still in the bootstrap phase: cluster the raw buffer.
            let ws = vec![1.0; self.init_buffer.len()];
            let pts = self.init_buffer.clone();
            return weighted_kmeans(&pts, &ws, k, &mut self.rng);
        }
        if self.clusters.is_empty() {
            return Err(SaError::InsufficientData("no clusters".into()));
        }
        // Bring every cluster's decay up to date so stale regimes carry
        // their faded weight into the reclustering.
        let (now, lambda) = (self.now, self.lambda);
        for mc in &mut self.clusters {
            mc.decay(now, lambda);
        }
        self.clusters.retain(|c| c.n > 1e-6);
        let pts: Vec<Vec<f64>> = self.clusters.iter().map(MicroCluster::center).collect();
        let ws: Vec<f64> = self.clusters.iter().map(|c| c.n).collect();
        weighted_kmeans(&pts, &ws, k, &mut self.rng)
    }

    /// Live micro-clusters.
    pub fn micro(&self) -> &[MicroCluster] {
        &self.clusters
    }

    /// Ticks consumed.
    pub fn now(&self) -> u64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::generators::GaussianMixtureGen;

    #[test]
    fn macro_clusters_recover_mixture() {
        let mut g = GaussianMixtureGen::new(4, 2, 80.0, 1.0, 34);
        let truth = g.centers.clone();
        let mut mc = MicroClusters::new(40, 3.0, 0.0).unwrap();
        for p in g.take_vec(10_000) {
            mc.push(&p.coords);
        }
        let centers = mc.macro_clusters(4).unwrap();
        for t in &truth {
            let (_, d2) = crate::nearest(t, &centers);
            assert!(d2.sqrt() < 6.0, "missed {t:?} by {}", d2.sqrt());
        }
    }

    #[test]
    fn micro_cluster_count_bounded() {
        let mut g = GaussianMixtureGen::new(8, 2, 100.0, 2.0, 32);
        let mut mc = MicroClusters::new(30, 2.5, 0.0).unwrap();
        for p in g.take_vec(20_000) {
            mc.push(&p.coords);
            assert!(mc.micro().len() <= 30);
        }
    }

    #[test]
    fn decay_forgets_old_regime() {
        let mut mc = MicroClusters::new(20, 2.5, 0.01).unwrap();
        // Old regime around (0,0), then new regime around (100,100).
        for _ in 0..2_000 {
            mc.push(&[0.0, 0.0]);
        }
        for _ in 0..2_000 {
            mc.push(&[100.0, 100.0]);
        }
        let centers = mc.macro_clusters(1).unwrap();
        let d = crate::dist2(&centers[0], &[100.0, 100.0]).sqrt();
        assert!(d < 5.0, "macro center {:?} still near old regime", centers[0]);
    }

    #[test]
    fn cluster_feature_statistics() {
        let mut c = MicroCluster::new(&[1.0, 2.0], 1);
        c.absorb(&[3.0, 4.0], 2, 0.0);
        assert_eq!(c.n, 2.0);
        assert_eq!(c.center(), vec![2.0, 3.0]);
        assert!(c.radius() > 0.9 && c.radius() < 1.1, "r = {}", c.radius());
    }

    #[test]
    fn invalid_params() {
        assert!(MicroClusters::new(2, 2.0, 0.0).is_err());
        assert!(MicroClusters::new(10, 0.0, 0.0).is_err());
        assert!(MicroClusters::new(10, 2.0, -0.1).is_err());
    }
}
