//! STREAM k-median (Guha, Mishra, Motwani, O'Callaghan — FOCS 2000;
//! O'Callaghan et al. — ICDE 2002).

use crate::kmeans::weighted_kmeans;
use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};

/// The divide-and-conquer STREAM algorithm.
///
/// Points are buffered in chunks of size `m`; each full chunk is
/// clustered to `k` *weighted* centers (weight = points absorbed), which
/// are pushed to the next level. When a level accumulates `m/k` centers
/// it is reclustered recursively. A final query clusters all live
/// centers to k. Space is `O(m·log(n/m))`; the constant-factor
/// approximation of the paper carries through each level.
#[derive(Clone, Debug)]
pub struct StreamKMedian {
    k: usize,
    chunk: usize,
    buffer: Vec<Vec<f64>>,
    /// levels[i] = weighted centers produced by level i.
    levels: Vec<Vec<(Vec<f64>, f64)>>,
    rng: SplitMix64,
    n: u64,
}

impl StreamKMedian {
    /// `k ≥ 1` clusters, chunk size `m ≥ 10·k`.
    pub fn new(k: usize, chunk: usize) -> Result<Self> {
        if k == 0 {
            return Err(SaError::invalid("k", "must be positive"));
        }
        if chunk < 10 * k {
            return Err(SaError::invalid("chunk", "must be at least 10·k"));
        }
        Ok(Self {
            k,
            chunk,
            buffer: Vec::with_capacity(chunk),
            levels: Vec::new(),
            rng: SplitMix64::new(0x57EA),
            n: 0,
        })
    }

    /// Feed one point.
    pub fn push(&mut self, point: Vec<f64>) {
        self.n += 1;
        self.buffer.push(point);
        if self.buffer.len() >= self.chunk {
            let pts = std::mem::take(&mut self.buffer);
            let weights = vec![1.0; pts.len()];
            let centers = self.cluster_weighted(&pts, &weights);
            self.add_to_level(0, centers);
        }
    }

    fn cluster_weighted(&mut self, pts: &[Vec<f64>], weights: &[f64]) -> Vec<(Vec<f64>, f64)> {
        let centers = weighted_kmeans(pts, weights, self.k, &mut self.rng).unwrap();
        // Weight of each center = total weight assigned to it.
        let mut wsum = vec![0.0; centers.len()];
        for (p, &w) in pts.iter().zip(weights) {
            let (ci, _) = crate::nearest(p, &centers);
            wsum[ci] += w;
        }
        centers.into_iter().zip(wsum).filter(|(_, w)| *w > 0.0).collect()
    }

    fn add_to_level(&mut self, level: usize, centers: Vec<(Vec<f64>, f64)>) {
        if self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
        self.levels[level].extend(centers);
        // Recluster a level once it holds as many centers as a chunk.
        if self.levels[level].len() >= self.chunk {
            let batch = std::mem::take(&mut self.levels[level]);
            let (pts, ws): (Vec<Vec<f64>>, Vec<f64>) = batch.into_iter().unzip();
            let up = self.cluster_weighted(&pts, &ws);
            self.add_to_level(level + 1, up);
        }
    }

    /// Final clustering of everything seen so far into k centers.
    pub fn centers(&mut self) -> Result<Vec<Vec<f64>>> {
        let mut pts: Vec<Vec<f64>> = Vec::new();
        let mut ws: Vec<f64> = Vec::new();
        for level in &self.levels {
            for (c, w) in level {
                pts.push(c.clone());
                ws.push(*w);
            }
        }
        for p in &self.buffer {
            pts.push(p.clone());
            ws.push(1.0);
        }
        if pts.is_empty() {
            return Err(SaError::InsufficientData("no points seen".into()));
        }
        weighted_kmeans(&pts, &ws, self.k, &mut self.rng)
    }

    /// Points seen.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Retained weighted centers + buffered points (space diagnostic).
    pub fn retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum::<usize>() + self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sse;
    use sa_core::generators::GaussianMixtureGen;

    #[test]
    fn recovers_mixture_centers() {
        let mut g = GaussianMixtureGen::new(5, 3, 100.0, 1.5, 21);
        let truth = g.centers.clone();
        let mut skm = StreamKMedian::new(5, 200).unwrap();
        for p in g.take_vec(20_000) {
            skm.push(p.coords);
        }
        let centers = skm.centers().unwrap();
        assert_eq!(centers.len(), 5);
        for t in &truth {
            let (_, d2) = crate::nearest(t, &centers);
            assert!(d2.sqrt() < 6.0, "missed {t:?} by {}", d2.sqrt());
        }
    }

    #[test]
    fn sse_close_to_batch_kmeans() {
        let mut g = GaussianMixtureGen::new(4, 2, 60.0, 2.0, 22);
        let pts: Vec<Vec<f64>> = g.take_vec(8_000).into_iter().map(|p| p.coords).collect();
        let mut skm = StreamKMedian::new(4, 160).unwrap();
        for p in &pts {
            skm.push(p.clone());
        }
        let stream_centers = skm.centers().unwrap();
        let w = vec![1.0; pts.len()];
        let mut rng = SplitMix64::new(9);
        let batch_centers = weighted_kmeans(&pts, &w, 4, &mut rng).unwrap();
        let stream_sse = sse(&pts, &stream_centers);
        let batch_sse = sse(&pts, &batch_centers);
        assert!(stream_sse < batch_sse * 2.0, "stream SSE {stream_sse} vs batch {batch_sse}");
    }

    #[test]
    fn space_is_sublinear() {
        let mut g = GaussianMixtureGen::new(3, 2, 50.0, 1.0, 23);
        let mut skm = StreamKMedian::new(3, 100).unwrap();
        for p in g.take_vec(50_000) {
            skm.push(p.coords);
        }
        assert!(skm.retained() < 1_000, "retained {}", skm.retained());
        assert_eq!(skm.n(), 50_000);
    }

    #[test]
    fn empty_query_errors() {
        let mut skm = StreamKMedian::new(2, 20).unwrap();
        assert!(skm.centers().is_err());
    }

    #[test]
    fn partial_buffer_still_clusters() {
        let mut skm = StreamKMedian::new(2, 50).unwrap();
        for i in 0..10 {
            skm.push(vec![i as f64]);
        }
        let centers = skm.centers().unwrap();
        assert_eq!(centers.len(), 2);
    }

    #[test]
    fn invalid_params() {
        assert!(StreamKMedian::new(0, 100).is_err());
        assert!(StreamKMedian::new(5, 20).is_err());
    }
}
