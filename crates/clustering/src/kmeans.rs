//! Weighted k-means++ seeding and Lloyd iterations — the in-memory
//! primitive the streaming schemes call on buffers of (weighted) points.

use crate::{dist2, nearest};
use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};

/// k-means++ seeding over weighted points: the first center is drawn
/// weight-proportionally, each next one proportional to
/// `weight · D²(point)`.
pub fn kmeanspp_seed(
    points: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    rng: &mut SplitMix64,
) -> Result<Vec<Vec<f64>>> {
    if points.is_empty() {
        return Err(SaError::InsufficientData("no points to seed from".into()));
    }
    if points.len() != weights.len() {
        return Err(SaError::invalid("weights", "length mismatch with points"));
    }
    if k == 0 {
        return Err(SaError::invalid("k", "must be positive"));
    }
    let k = k.min(points.len());
    let total_w: f64 = weights.iter().sum();
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    // First center: weight-proportional draw.
    let mut target = rng.next_f64() * total_w;
    let mut first = 0;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            first = i;
            break;
        }
    }
    centers.push(points[first].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().zip(weights).map(|(d, w)| d * w).sum();
        if total <= 0.0 {
            // All remaining mass sits on existing centers: duplicate one.
            centers.push(centers[0].clone());
            continue;
        }
        let mut target = rng.next_f64() * total;
        let mut chosen = points.len() - 1;
        for (i, (&d, &w)) in d2.iter().zip(weights).enumerate() {
            target -= d * w;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centers.push(points[chosen].clone());
        let newc = centers.last().unwrap();
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(dist2(p, newc));
        }
    }
    Ok(centers)
}

/// Weighted Lloyd iterations until movement < `tol` or `max_iter`.
/// Returns `(centers, weighted SSE)`.
pub fn lloyd(
    points: &[Vec<f64>],
    weights: &[f64],
    mut centers: Vec<Vec<f64>>,
    max_iter: usize,
    tol: f64,
) -> (Vec<Vec<f64>>, f64) {
    let dim = points.first().map_or(0, Vec::len);
    let k = centers.len();
    let mut sse = f64::INFINITY;
    for _ in 0..max_iter {
        let mut sums = vec![vec![0.0; dim]; k];
        let mut wsum = vec![0.0; k];
        let mut new_sse = 0.0;
        for (p, &w) in points.iter().zip(weights) {
            let (ci, d) = nearest(p, &centers);
            new_sse += w * d;
            wsum[ci] += w;
            for (s, x) in sums[ci].iter_mut().zip(p) {
                *s += w * x;
            }
        }
        let mut moved: f64 = 0.0;
        for ci in 0..k {
            if wsum[ci] > 0.0 {
                let newc: Vec<f64> = sums[ci].iter().map(|s| s / wsum[ci]).collect();
                moved = moved.max(dist2(&newc, &centers[ci]));
                centers[ci] = newc;
            }
        }
        sse = new_sse;
        if moved < tol * tol {
            break;
        }
    }
    (centers, sse)
}

/// k-means++ seed + Lloyd with 5 restarts, keeping the lowest-SSE run —
/// the standard defence against local optima.
pub fn weighted_kmeans(
    points: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    rng: &mut SplitMix64,
) -> Result<Vec<Vec<f64>>> {
    let mut best: Option<(Vec<Vec<f64>>, f64)> = None;
    for _ in 0..5 {
        let seed = kmeanspp_seed(points, weights, k, rng)?;
        let (centers, sse) = lloyd(points, weights, seed, 50, 1e-9);
        if best.as_ref().is_none_or(|(_, b)| sse < *b) {
            best = Some((centers, sse));
        }
    }
    Ok(best.expect("at least one restart ran").0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::generators::GaussianMixtureGen;

    #[test]
    fn recovers_well_separated_mixture() {
        let mut g = GaussianMixtureGen::new(4, 2, 100.0, 1.0, 7);
        let pts: Vec<Vec<f64>> = g.take_vec(2_000).into_iter().map(|p| p.coords).collect();
        let w = vec![1.0; pts.len()];
        let mut rng = SplitMix64::new(1);
        let centers = weighted_kmeans(&pts, &w, 4, &mut rng).unwrap();
        // Every true center has a found center within a few σ.
        for truth in &g.centers {
            let (_, d2) = crate::nearest(truth, &centers);
            assert!(d2.sqrt() < 5.0, "missed center {truth:?} (d = {})", d2.sqrt());
        }
    }

    #[test]
    fn weights_pull_centers() {
        // Two points; weight 99 vs 1 with k=1 → center near the heavy one.
        let pts = vec![vec![0.0], vec![10.0]];
        let w = vec![99.0, 1.0];
        let mut rng = SplitMix64::new(2);
        let centers = weighted_kmeans(&pts, &w, 1, &mut rng).unwrap();
        assert!((centers[0][0] - 0.1).abs() < 1e-9, "center = {:?}", centers[0]);
    }

    #[test]
    fn k_larger_than_points_clamps() {
        let pts = vec![vec![1.0], vec![2.0]];
        let w = vec![1.0, 1.0];
        let mut rng = SplitMix64::new(3);
        let centers = kmeanspp_seed(&pts, &w, 10, &mut rng).unwrap();
        assert_eq!(centers.len(), 2);
    }

    #[test]
    fn seeding_prefers_spread_points() {
        // Points: tight cluster at 0 and one far point. With k=2 the far
        // point must be a seed essentially always.
        let mut pts: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.01]).collect();
        pts.push(vec![1000.0]);
        let w = vec![1.0; pts.len()];
        let mut hits = 0;
        for seed in 0..50 {
            let mut rng = SplitMix64::new(seed);
            let centers = kmeanspp_seed(&pts, &w, 2, &mut rng).unwrap();
            if centers.iter().any(|c| c[0] == 1000.0) {
                hits += 1;
            }
        }
        assert!(hits >= 48, "far point seeded only {hits}/50 times");
    }

    #[test]
    fn errors_on_bad_input() {
        let mut rng = SplitMix64::new(4);
        assert!(kmeanspp_seed(&[], &[], 2, &mut rng).is_err());
        assert!(kmeanspp_seed(&[vec![1.0]], &[1.0, 2.0], 1, &mut rng).is_err());
        assert!(kmeanspp_seed(&[vec![1.0]], &[1.0], 0, &mut rng).is_err());
    }
}
