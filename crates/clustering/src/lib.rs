//! # sa-clustering
//!
//! Stream clustering — the Table-1 **Clustering** row ("cluster a data
//! stream"; application: medical imaging) and Section 2's clustering
//! synopsis ("choose k representative points minimizing the sum of
//! errors").
//!
//! * [`kmeans`] — weighted k-means++ seeding and Lloyd iterations: the
//!   in-memory primitive every streaming scheme reduces to.
//! * [`OnlineKMeans`] — sequential (MacQueen-style) k-means with
//!   per-centroid learning rates, the cheapest drift-tracking baseline.
//! * [`StreamKMedian`] — the divide-and-conquer STREAM algorithm of
//!   Guha–Mishra–Motwani–O'Callaghan (FOCS'00 \[98\]) and O'Callaghan
//!   et al. (ICDE'02 \[132\]): cluster chunks to weighted centers,
//!   recursively recluster the centers.
//! * [`MicroClusters`] — CluStream-style cluster-feature vectors with
//!   exponential decay (the Aggarwal \[34\] online phase): micro-clusters
//!   absorb points, merge when close, fade when stale; an offline query
//!   reclusters them to k macro-centers.

pub mod kmeans;
mod microclusters;
mod online;
mod stream_kmedian;

pub use microclusters::MicroClusters;
pub use online::OnlineKMeans;
pub use stream_kmedian::StreamKMedian;

/// Squared Euclidean distance.
pub(crate) fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index of the nearest center and its squared distance.
pub(crate) fn nearest(point: &[f64], centers: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centers.iter().enumerate() {
        let d = dist2(point, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// Sum of squared distances of points to their nearest centers (SSE) —
/// the clustering quality metric used across tests and experiment t14.
pub fn sse(points: &[Vec<f64>], centers: &[Vec<f64>]) -> f64 {
    points.iter().map(|p| nearest(p, centers).1).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_and_nearest() {
        let a = vec![0.0, 0.0];
        let b = vec![3.0, 4.0];
        assert_eq!(dist2(&a, &b), 25.0);
        let centers = vec![vec![0.0, 0.0], vec![10.0, 0.0]];
        assert_eq!(nearest(&[1.0, 0.0], &centers).0, 0);
        assert_eq!(nearest(&[9.0, 0.0], &centers).0, 1);
    }

    #[test]
    fn sse_zero_on_exact_centers() {
        let pts = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(sse(&pts, &pts), 0.0);
    }
}
