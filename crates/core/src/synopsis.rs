//! The checkpointable-summary contract.
//!
//! The paper's §2 requires Web-scale synopses to "intrinsically
//! distribute computation": summaries must be *partitioned* (each task
//! holds a shard), *mergeable* ([`crate::Merge`]), and *recoverable*
//! (MillWheel-style checkpoints + Samza-style log replay). This module
//! adds the third leg: a [`Synopsis`] serialises its complete state to
//! bytes and can be rebuilt from them, so a platform operator can
//! commit it through a checkpoint store and restore it after a crash.
//!
//! # Laws
//!
//! For any synopsis `s` and any fresh instance `t` of the same type:
//!
//! 1. **Round trip** — after `t.restore(&s.snapshot())`, `t` answers
//!    every query exactly like `s` (it is a complete state transfer,
//!    configuration included; `t`'s prior configuration is discarded).
//! 2. **Resume** — feeding a stream suffix to the restored `t` yields
//!    the same summary as feeding it to `s` directly: snapshots taken
//!    mid-stream are valid resume points, which is what makes
//!    checkpoint-then-replay recovery exact.
//! 3. **Merge coherence** — for types that also implement
//!    [`crate::Merge`], merging restored copies behaves identically to
//!    merging the originals (snapshots are faithful merge operands;
//!    `tests/property_tests.rs` checks this per family).
//!
//! Decoding is validated: `restore` on truncated, mis-tagged, or
//! corrupt bytes returns [`crate::SaError::Codec`] and must leave the
//! receiver untouched (implementations decode fully before mutating
//! `self`).

use crate::error::Result;

/// A summary whose complete state round-trips through bytes.
///
/// Implementations use the fixed-layout codec in [`crate::codec`]
/// (the workspace is offline — no serde): a leading one-byte type tag,
/// then fixed-width scalars and length-prefixed sequences.
pub trait Synopsis {
    /// Serialise the complete state (configuration included).
    fn snapshot(&self) -> Vec<u8>;

    /// Replace `self` with the state encoded in `bytes`.
    ///
    /// On error the receiver is left unchanged (decode-then-commit).
    fn restore(&mut self, bytes: &[u8]) -> Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{ByteReader, ByteWriter};

    /// A minimal synopsis used to pin down the contract itself.
    #[derive(Default)]
    struct Counter {
        n: u64,
    }

    impl Synopsis for Counter {
        fn snapshot(&self) -> Vec<u8> {
            let mut w = ByteWriter::new();
            w.tag(b'c').put_u64(self.n);
            w.finish()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<()> {
            let mut r = ByteReader::new(bytes);
            r.expect_tag(b'c', "Counter")?;
            let n = r.get_u64()?;
            r.finish()?;
            self.n = n;
            Ok(())
        }
    }

    #[test]
    fn round_trip_and_resume() {
        let mut s = Counter { n: 41 };
        let snap = s.snapshot();
        let mut t = Counter::default();
        t.restore(&snap).unwrap();
        assert_eq!(t.n, 41);
        // Resume: suffix applied to the restored copy matches the original.
        s.n += 1;
        t.n += 1;
        assert_eq!(t.n, s.n);
    }

    #[test]
    fn failed_restore_leaves_receiver_untouched() {
        let mut t = Counter { n: 7 };
        assert!(t.restore(&[b'c', 1]).is_err()); // truncated
        assert_eq!(t.n, 7);
        assert!(t.restore(&Counter { n: 1 }.snapshot()[..1]).is_err());
        assert_eq!(t.n, 7);
    }
}
