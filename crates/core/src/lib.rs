//! # sa-core
//!
//! Shared foundation for the `streaming-analytics` workspace: hashing
//! primitives, deterministic RNG, cross-crate traits, error types, exact
//! reference statistics, and synthetic workload generators.
//!
//! Everything algorithmic in the workspace is written from scratch; this
//! crate supplies the common substrate so that each sketch/sampler crate
//! stays focused on its algorithm.
//!
//! ## Modules
//!
//! * [`hash`] — one-shot and streaming xxHash64, 64-bit finalizers, and
//!   Kirsch–Mitzenmacher double hashing used by every hash-based sketch.
//! * [`rng`] — a tiny, dependency-free SplitMix64 for algorithm-internal
//!   randomness (reproducible, cheap, no trait objects in hot paths).
//! * [`traits`] — [`traits::Merge`] and the estimator traits shared across
//!   crates so heterogeneous sketches can be benchmarked uniformly.
//! * [`synopsis`] — [`synopsis::Synopsis`]: complete-state snapshot /
//!   restore, the contract that makes summaries checkpointable by the
//!   platform's operator layer.
//! * [`codec`] — the tiny hand-rolled byte codec snapshots are written
//!   with (the workspace is offline — no serde).
//! * [`error`] — the workspace error type.
//! * [`stats`] — exact/offline reference implementations (Welford, exact
//!   quantiles, exact heavy hitters) used as ground truth in tests and
//!   experiments.
//! * [`generators`] — synthetic workloads standing in for the paper's
//!   production streams (Zipf "hashtags", sensor series with injected
//!   anomalies, out-of-order event times, graph edge streams).

pub mod codec;
pub mod error;
pub mod generators;
pub mod hash;
pub mod rng;
pub mod stats;
pub mod synopsis;
pub mod traits;

pub use error::{Result, SaError, TopologyError};
pub use synopsis::Synopsis;
pub use traits::{Aggregator, Merge};
