//! Workspace error type.

use std::fmt;

/// Errors raised by constructors and merge operations across the workspace.
///
/// Streaming updates themselves are designed to be infallible (a sketch
/// never errors on `insert`); fallibility is confined to configuration and
/// to merging structurally incompatible summaries.
#[derive(Debug, Clone, PartialEq)]
pub enum SaError {
    /// A constructor parameter was out of its documented domain.
    InvalidParameter {
        /// Parameter name as it appears in the constructor signature.
        name: &'static str,
        /// Human-readable constraint violation.
        reason: String,
    },
    /// Two summaries could not be merged (different widths, seeds, …).
    IncompatibleMerge(String),
    /// The requested operation needs data the summary no longer holds.
    InsufficientData(String),
    /// A platform-level failure (topology validation, channel teardown…).
    Platform(String),
}

impl SaError {
    /// Shorthand for an invalid-parameter error.
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        SaError::InvalidParameter { name, reason: reason.into() }
    }
}

impl fmt::Display for SaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SaError::IncompatibleMerge(msg) => {
                write!(f, "incompatible merge: {msg}")
            }
            SaError::InsufficientData(msg) => {
                write!(f, "insufficient data: {msg}")
            }
            SaError::Platform(msg) => write!(f, "platform error: {msg}"),
        }
    }
}

impl std::error::Error for SaError {}

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, SaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SaError::invalid("epsilon", "must be in (0,1)");
        assert_eq!(e.to_string(), "invalid parameter `epsilon`: must be in (0,1)");
        let e = SaError::IncompatibleMerge("width 16 vs 32".into());
        assert!(e.to_string().contains("width 16 vs 32"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SaError::Platform("x".into()));
    }
}
