//! Workspace error type.

use std::fmt;

/// Errors raised by constructors and merge operations across the workspace.
///
/// Streaming updates themselves are designed to be infallible (a sketch
/// never errors on `insert`); fallibility is confined to configuration and
/// to merging structurally incompatible summaries.
#[derive(Debug, Clone, PartialEq)]
pub enum SaError {
    /// A constructor parameter was out of its documented domain.
    InvalidParameter {
        /// Parameter name as it appears in the constructor signature.
        name: &'static str,
        /// Human-readable constraint violation.
        reason: String,
    },
    /// Two summaries could not be merged (different widths, seeds, …).
    IncompatibleMerge(String),
    /// The requested operation needs data the summary no longer holds.
    InsufficientData(String),
    /// A snapshot could not be decoded (truncated, mis-tagged, or
    /// corrupt bytes handed to `Synopsis::restore`).
    Codec(String),
    /// A platform-level failure (channel teardown, worker panic…).
    Platform(String),
    /// The topology wiring is invalid (caught before any thread spawns).
    Topology(TopologyError),
    /// A storage-backend I/O failure. `transient` failures (EIO, short
    /// write, injected chaos) are safe to retry; persistent ones are
    /// not and must escalate.
    Io {
        /// Whether retrying the operation may succeed.
        transient: bool,
        /// What failed, naming the operation and path.
        context: String,
    },
    /// Durable state failed verification (CRC mismatch, bad frame,
    /// impossible length). Never retried, never silently repaired
    /// outside the documented torn-tail case: callers must fail loudly
    /// rather than serve wrong state.
    Corrupt(String),
}

/// Structural problems in a topology declaration, surfaced by
/// `TopologyBuilder::validate` (run automatically by `run_topology`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Two components share a name.
    DuplicateComponent(String),
    /// A bolt subscribes to a component that was never declared.
    UnknownUpstream {
        /// The subscribing bolt.
        component: String,
        /// The missing upstream name.
        upstream: String,
    },
    /// A component subscribes to itself.
    SelfLoop(String),
    /// A spout declares inputs.
    SpoutWithInputs(String),
    /// A fields grouping names a field index outside the upstream
    /// component's declared output schema. Caught at build time so the
    /// grouping cannot silently degenerate (an absent field contributes
    /// nothing to the routing hash) at the first tuple.
    FieldOutOfRange {
        /// The subscribing component.
        component: String,
        /// The upstream whose schema is violated.
        upstream: String,
        /// The offending field index.
        field: usize,
        /// The declared number of output fields.
        arity: usize,
    },
    /// The component graph contains a directed cycle.
    Cycle,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateComponent(name) => {
                write!(f, "duplicate component name `{name}`")
            }
            TopologyError::UnknownUpstream { component, upstream } => {
                write!(f, "`{component}` subscribes to unknown component `{upstream}`")
            }
            TopologyError::SelfLoop(name) => {
                write!(f, "`{name}` subscribes to itself")
            }
            TopologyError::SpoutWithInputs(name) => {
                write!(f, "spout `{name}` cannot have inputs")
            }
            TopologyError::FieldOutOfRange { component, upstream, field, arity } => {
                write!(
                    f,
                    "`{component}` fields-groups on field {field} of `{upstream}`, \
                     whose declared schema has only {arity} field(s)"
                )
            }
            TopologyError::Cycle => write!(f, "component graph contains a cycle"),
        }
    }
}

impl From<TopologyError> for SaError {
    fn from(e: TopologyError) -> Self {
        SaError::Topology(e)
    }
}

impl SaError {
    /// Shorthand for an invalid-parameter error.
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        SaError::InvalidParameter { name, reason: reason.into() }
    }

    /// Shorthand for a retryable storage failure.
    pub fn io_transient(context: impl Into<String>) -> Self {
        SaError::Io { transient: true, context: context.into() }
    }

    /// Shorthand for a non-retryable storage failure.
    pub fn io_permanent(context: impl Into<String>) -> Self {
        SaError::Io { transient: false, context: context.into() }
    }

    /// Shorthand for a corruption error.
    pub fn corrupt(context: impl Into<String>) -> Self {
        SaError::Corrupt(context.into())
    }

    /// Whether retrying the failed operation may succeed (used by the
    /// commit paths' bounded-backoff retry loops).
    pub fn is_transient(&self) -> bool {
        matches!(self, SaError::Io { transient: true, .. })
    }
}

impl fmt::Display for SaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SaError::IncompatibleMerge(msg) => {
                write!(f, "incompatible merge: {msg}")
            }
            SaError::InsufficientData(msg) => {
                write!(f, "insufficient data: {msg}")
            }
            SaError::Codec(msg) => write!(f, "codec error: {msg}"),
            SaError::Platform(msg) => write!(f, "platform error: {msg}"),
            SaError::Topology(e) => write!(f, "invalid topology: {e}"),
            SaError::Io { transient, context } => {
                let kind = if *transient { "transient" } else { "permanent" };
                write!(f, "{kind} storage I/O error: {context}")
            }
            SaError::Corrupt(msg) => write!(f, "corrupt durable state: {msg}"),
        }
    }
}

impl std::error::Error for SaError {}

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, SaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SaError::invalid("epsilon", "must be in (0,1)");
        assert_eq!(e.to_string(), "invalid parameter `epsilon`: must be in (0,1)");
        let e = SaError::IncompatibleMerge("width 16 vs 32".into());
        assert!(e.to_string().contains("width 16 vs 32"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SaError::Platform("x".into()));
    }
}
