//! Deterministic, dependency-free RNG for algorithm internals.
//!
//! Several streaming algorithms need a private source of random bits
//! (reservoir sampling, AMS sign hashes, wedge sampling, skip counters).
//! Pulling a full `rand` RNG into those hot paths costs monomorphisation
//! and makes reproducibility awkward across crate versions, so algorithms
//! in this workspace use this small SplitMix64 generator. Workload
//! *generators* (not algorithms) use `rand`/`rand_distr` freely.

use crate::hash::mix64;

/// SplitMix64: a tiny, fast, full-period 2^64 PRNG.
///
/// Statistical quality is more than sufficient for sampling decisions and
/// sketch seeding; it is not cryptographic.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded constructor; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Current internal state. `SplitMix64::new(rng.state())` resumes
    /// the exact stream — this is what lets randomized summaries
    /// (reservoirs) snapshot their generator and replay
    /// deterministically after recovery.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-high rejection-free approximation: bias is < 2^-64 per
        // draw, negligible for sampling decisions.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, len)`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Random boolean with probability `p` of `true`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Random sign in {-1, +1}.
    #[inline]
    pub fn sign(&mut self) -> i64 {
        if self.next_u64() & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Standard exponential variate (rate 1).
    #[inline]
    pub fn exponential(&mut self) -> f64 {
        // Inverse CDF; `1 - u` avoids ln(0).
        -(1.0 - self.next_f64()).ln()
    }

    /// Geometric number of failures before first success with prob `p`.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        debug_assert!(p > 0.0 && p <= 1.0);
        if p >= 1.0 {
            return 0;
        }
        (self.next_f64().ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(2);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_mean_close_to_p() {
        let mut r = SplitMix64::new(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn sign_is_balanced() {
        let mut r = SplitMix64::new(4);
        let sum: i64 = (0..100_000).map(|_| r.sign()).sum();
        assert!(sum.abs() < 2_000, "sum = {sum}");
    }

    #[test]
    fn exponential_mean_close_to_one() {
        let mut r = SplitMix64::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut r = SplitMix64::new(6);
        let p = 0.25;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.geometric(p) as f64).sum::<f64>() / n as f64;
        let expect = (1.0 - p) / p; // failures before success
        assert!((mean - expect).abs() < 0.1, "mean = {mean}, expect {expect}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(7);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
