//! Hashing primitives shared by every hash-based sketch in the workspace.
//!
//! The sketches in this workspace (Bloom filters, Count-Min, HyperLogLog,
//! KMV, AMS, …) all reduce items to one or two 64-bit hashes. We implement
//! xxHash64 from scratch (public-domain algorithm, excellent avalanche
//! behaviour, cheap on 64-bit machines) plus the standard finalizers, and
//! derive the *k* hash functions a sketch needs via Kirsch–Mitzenmacher
//! double hashing, which provably preserves the asymptotic false-positive
//! behaviour of k independent hashes while costing only two.

use std::hash::{Hash, Hasher};

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn read64(data: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(data[i..i + 8].try_into().unwrap())
}

#[inline]
fn read32(data: &[u8], i: usize) -> u32 {
    u32::from_le_bytes(data[i..i + 4].try_into().unwrap())
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2)).rotate_left(31).wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    let val = round(0, val);
    (acc ^ val).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

/// One-shot xxHash64 of `data` with the given `seed`.
pub fn xxhash64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut i = 0usize;
    let mut h: u64;
    if len >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while i + 32 <= len {
            v1 = round(v1, read64(data, i));
            v2 = round(v2, read64(data, i + 8));
            v3 = round(v3, read64(data, i + 16));
            v4 = round(v4, read64(data, i + 24));
            i += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(P5);
    }
    h = h.wrapping_add(len as u64);
    while i + 8 <= len {
        h ^= round(0, read64(data, i));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        i += 8;
    }
    if i + 4 <= len {
        h ^= u64::from(read32(data, i)).wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        i += 4;
    }
    while i < len {
        h ^= u64::from(data[i]).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
        i += 1;
    }
    avalanche(h)
}

/// SplitMix64 finalizer: a fast, high-quality bijective mixer for u64 keys.
///
/// Used where the item is already a 64-bit integer and a full byte-stream
/// hash would be wasteful (e.g. re-seeding, deriving register indices).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Hasher`] over xxHash64, so any `T: Hash` can be fed to the sketches.
///
/// Bytes are buffered and hashed on `finish`; for fixed-size keys the
/// buffer lives on the stack in practice (it starts with 32 bytes inline
/// capacity via `Vec::with_capacity`).
#[derive(Clone, Debug)]
pub struct XxHasher {
    seed: u64,
    buf: Vec<u8>,
}

impl XxHasher {
    /// Create a hasher with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, buf: Vec::with_capacity(32) }
    }

    /// Reset to a fresh hasher state under `seed`, keeping the byte
    /// buffer's capacity. Bulk callers hashing a run of items reuse one
    /// hasher this way instead of paying [`XxHasher::with_seed`]'s
    /// buffer allocation per item; results are bit-identical to
    /// [`hash64`].
    #[inline]
    pub fn reset(&mut self, seed: u64) {
        self.seed = seed;
        self.buf.clear();
    }
}

impl Default for XxHasher {
    fn default() -> Self {
        Self::with_seed(0)
    }
}

impl Hasher for XxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
    #[inline]
    fn finish(&self) -> u64 {
        xxhash64(&self.buf, self.seed)
    }
}

/// Hash any `T: Hash` to 64 bits with a seed.
#[inline]
pub fn hash64<T: Hash + ?Sized>(item: &T, seed: u64) -> u64 {
    let mut h = XxHasher::with_seed(seed);
    item.hash(&mut h);
    h.finish()
}

/// The two base hashes used to derive k index functions
/// (Kirsch–Mitzenmacher: `g_i(x) = h1(x) + i*h2(x)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DoubleHash {
    /// First base hash.
    pub h1: u64,
    /// Second base hash (forced odd so it is invertible mod 2^64).
    pub h2: u64,
}

impl DoubleHash {
    /// Compute the double hash of an item under a sketch-level seed.
    #[inline]
    pub fn of<T: Hash + ?Sized>(item: &T, seed: u64) -> Self {
        let h = hash64(item, seed);
        // Derive the second hash by remixing; forcing it odd guarantees the
        // probe sequence visits distinct slots for power-of-two tables.
        Self { h1: h, h2: mix64(h) | 1 }
    }

    /// Construct directly from a 64-bit value (for integer-keyed sketches).
    #[inline]
    pub fn of_u64(x: u64, seed: u64) -> Self {
        let h = mix64(x ^ mix64(seed));
        Self { h1: h, h2: mix64(h) | 1 }
    }

    /// The i-th derived hash.
    #[inline]
    pub fn derive(&self, i: u64) -> u64 {
        self.h1.wrapping_add(i.wrapping_mul(self.h2))
    }

    /// The i-th derived index into a table of `m` slots.
    #[inline]
    pub fn index(&self, i: u64, m: usize) -> usize {
        (self.derive(i) % m as u64) as usize
    }
}

/// Map a 64-bit hash to `[0, 1)` uniformly.
#[inline]
pub fn to_unit(h: u64) -> f64 {
    // Take the top 53 bits for a full-precision mantissa.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the canonical xxHash implementation.
    #[test]
    fn xxhash64_known_vectors() {
        assert_eq!(xxhash64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxhash64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxhash64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        assert_eq!(xxhash64(b"Hello, world!", 0), 0xF58336A78B6F9476);
    }

    #[test]
    fn xxhash64_seed_changes_output() {
        assert_ne!(xxhash64(b"abc", 0), xxhash64(b"abc", 1));
    }

    #[test]
    fn xxhash64_long_input_exercises_wide_loop() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let a = xxhash64(&data, 0);
        let b = xxhash64(&data, 0);
        assert_eq!(a, b);
        let mut data2 = data.clone();
        data2[999] ^= 1;
        assert_ne!(a, xxhash64(&data2, 0));
    }

    #[test]
    fn mix64_is_bijective_on_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn hash64_matches_for_equal_values() {
        assert_eq!(hash64(&"tweet", 7), hash64(&"tweet", 7));
        assert_ne!(hash64(&"tweet", 7), hash64(&"tweet", 8));
        assert_ne!(hash64(&"tweet", 7), hash64(&"tweets", 7));
    }

    #[test]
    fn double_hash_derives_distinct_indices() {
        let dh = DoubleHash::of(&"item", 42);
        let m = 1024;
        let idx: std::collections::HashSet<usize> = (0..8).map(|i| dh.index(i, m)).collect();
        // With h2 odd and m not huge, collisions among 8 probes are unlikely.
        assert!(idx.len() >= 6);
    }

    #[test]
    fn to_unit_in_range() {
        for i in 0..1000u64 {
            let u = to_unit(mix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn to_unit_roughly_uniform() {
        let n = 100_000u64;
        let mut buckets = [0u32; 10];
        for i in 0..n {
            let u = to_unit(mix64(i));
            buckets[(u * 10.0) as usize] += 1;
        }
        for b in buckets {
            let expected = n as f64 / 10.0;
            assert!((f64::from(b) - expected).abs() < expected * 0.05);
        }
    }
}
