//! Synthetic workload generators.
//!
//! The paper's experiments run on production streams (tweets, IoT sensors,
//! click-streams) we do not have. Per the reproduction's substitution rule
//! (DESIGN.md §2), each generator here reproduces the *distributional
//! property* an algorithm family is sensitive to:
//!
//! * [`ZipfStream`] — skewed token streams ("trending hashtags"): heavy
//!   hitters, frequency sketches and moments care only about skew.
//! * [`SensorSeries`] — seasonal signal + noise with injected anomalies
//!   and dropouts: anomaly detection and prediction workloads.
//! * [`EventStream`] — timestamped events with bounded out-of-orderness:
//!   window/platform workloads ("stream imperfections" in §3).
//! * [`GaussianMixtureGen`] — drifting mixtures for stream clustering.
//! * [`EdgeStreamGen`] — random/preferential-attachment edge streams for
//!   the graph-analysis rows.
//! * [`permutation_with_displacement`] — near-sorted data for the
//!   inversion-counting ("sortedness") row.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, Zipf};

/// Zipf-distributed stream of `u64` item ids from a vocabulary of size
/// `vocab`, exponent `s` (s=0 would be uniform; s≈1 matches word/hashtag
/// frequencies).
pub struct ZipfStream {
    rng: StdRng,
    dist: Zipf<f64>,
}

impl ZipfStream {
    /// Create a generator. `vocab ≥ 1`, `s > 0`.
    pub fn new(vocab: u64, s: f64, seed: u64) -> Self {
        let dist = Zipf::new(vocab, s).expect("valid Zipf parameters");
        Self { rng: StdRng::seed_from_u64(seed), dist }
    }

    /// Next item id in `[0, vocab)` (rank 0 is the most frequent item).
    pub fn next_id(&mut self) -> u64 {
        self.dist.sample(&mut self.rng) as u64 - 1
    }

    /// Materialize `n` ids.
    pub fn take_vec(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_id()).collect()
    }

    /// Materialize `n` ids rendered as hashtag strings (`"#tag42"`).
    pub fn take_hashtags(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| format!("#tag{}", self.next_id())).collect()
    }
}

/// A single generated sensor reading.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SensorPoint {
    /// Value after noise/anomaly/dropout effects.
    pub value: f64,
    /// Whether this index was injected as an anomaly (ground truth).
    pub is_anomaly: bool,
    /// Whether the reading was dropped (for prediction experiments the
    /// consumer sees `None` here and must impute).
    pub dropped: bool,
    /// Clean signal value before noise (for prediction RMSE).
    pub clean: f64,
}

/// Seasonal sensor series: `level + amplitude·sin(2πt/period) + drift·t +
/// N(0,σ²)`, with spike anomalies and Bernoulli dropouts injected at known
/// positions.
pub struct SensorSeries {
    rng: StdRng,
    noise: Normal<f64>,
    /// Base level.
    pub level: f64,
    /// Seasonal amplitude.
    pub amplitude: f64,
    /// Season length in samples.
    pub period: f64,
    /// Linear trend per sample.
    pub drift: f64,
    /// Probability a sample is replaced by a spike anomaly.
    pub anomaly_prob: f64,
    /// Spike magnitude in multiples of σ.
    pub anomaly_sigmas: f64,
    /// Probability a sample is dropped.
    pub dropout_prob: f64,
    t: u64,
}

impl SensorSeries {
    /// A generator with sensible defaults (σ=1, period 64, no trend).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            noise: Normal::new(0.0, 1.0).unwrap(),
            level: 10.0,
            amplitude: 3.0,
            period: 64.0,
            drift: 0.0,
            anomaly_prob: 0.0,
            anomaly_sigmas: 8.0,
            dropout_prob: 0.0,
            t: 0,
        }
    }

    /// Set the noise standard deviation.
    pub fn with_noise(mut self, sigma: f64) -> Self {
        self.noise = Normal::new(0.0, sigma).unwrap();
        self
    }

    /// Set the seasonal amplitude (0 disables seasonality).
    pub fn with_amplitude(mut self, amplitude: f64) -> Self {
        self.amplitude = amplitude;
        self
    }

    /// Set anomaly injection probability.
    pub fn with_anomalies(mut self, prob: f64, sigmas: f64) -> Self {
        self.anomaly_prob = prob;
        self.anomaly_sigmas = sigmas;
        self
    }

    /// Set dropout probability.
    pub fn with_dropout(mut self, prob: f64) -> Self {
        self.dropout_prob = prob;
        self
    }

    /// Set linear drift per sample.
    pub fn with_drift(mut self, drift: f64) -> Self {
        self.drift = drift;
        self
    }

    /// Generate the next reading.
    pub fn next_point(&mut self) -> SensorPoint {
        let t = self.t as f64;
        self.t += 1;
        let clean = self.level
            + self.amplitude * (2.0 * std::f64::consts::PI * t / self.period).sin()
            + self.drift * t;
        let sigma = self.noise.std_dev();
        let mut value = clean + self.noise.sample(&mut self.rng);
        let is_anomaly = self.rng.gen_bool(self.anomaly_prob);
        if is_anomaly {
            let sign = if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            value = clean + sign * self.anomaly_sigmas * sigma.max(1e-9);
        }
        let dropped = self.rng.gen_bool(self.dropout_prob);
        SensorPoint { value, is_anomaly, dropped, clean }
    }

    /// Materialize `n` readings.
    pub fn take_vec(&mut self, n: usize) -> Vec<SensorPoint> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

/// One timestamped keyed event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Logical event time (what windowing should use).
    pub event_time: u64,
    /// Arrival position (already reflected by stream order).
    pub key: String,
    /// Payload value.
    pub value: i64,
}

/// Generator of keyed events whose *arrival order* differs from event time
/// by at most `max_disorder` ticks — the "missing and out-of-order data"
/// imperfection §3 requires platforms to tolerate.
pub struct EventStream {
    rng: StdRng,
    zipf: Zipf<f64>,
    clock: u64,
    /// Maximum event-time disorder.
    pub max_disorder: u64,
    /// Probability an event is dropped entirely (missing data).
    pub drop_prob: f64,
}

impl EventStream {
    /// `keys` distinct keys with Zipf(1.1) popularity, given disorder bound.
    pub fn new(keys: u64, max_disorder: u64, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            zipf: Zipf::new(keys, 1.1).unwrap(),
            clock: max_disorder,
            max_disorder,
            drop_prob: 0.0,
        }
    }

    /// Set the probability of dropping events.
    pub fn with_drops(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Generate the next event, or `None` if this slot was dropped.
    pub fn next_event(&mut self) -> Option<Event> {
        self.clock += 1;
        if self.rng.gen_bool(self.drop_prob) {
            return None;
        }
        let disorder =
            if self.max_disorder == 0 { 0 } else { self.rng.gen_range(0..=self.max_disorder) };
        let key_id = self.zipf.sample(&mut self.rng) as u64 - 1;
        Some(Event {
            event_time: self.clock - disorder,
            key: format!("k{key_id}"),
            value: self.rng.gen_range(1..100),
        })
    }

    /// Materialize `n` slots (dropped slots omitted).
    pub fn take_vec(&mut self, n: usize) -> Vec<Event> {
        (0..n).filter_map(|_| self.next_event()).collect()
    }
}

/// Labeled point from a Gaussian mixture.
#[derive(Clone, Debug, PartialEq)]
pub struct LabeledPoint {
    /// Coordinates.
    pub coords: Vec<f64>,
    /// Index of the generating component (ground truth for clustering).
    pub label: usize,
}

/// Drifting Gaussian mixture in `dim` dimensions for stream clustering.
pub struct GaussianMixtureGen {
    rng: StdRng,
    noise: Normal<f64>,
    /// Component centers (drift moves them).
    pub centers: Vec<Vec<f64>>,
    /// Per-sample drift applied to every center coordinate.
    pub drift: f64,
}

impl GaussianMixtureGen {
    /// `k` random centers in `[-range, range]^dim` with noise σ.
    pub fn new(k: usize, dim: usize, range: f64, sigma: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers =
            (0..k).map(|_| (0..dim).map(|_| rng.gen_range(-range..range)).collect()).collect();
        Self { rng, noise: Normal::new(0.0, sigma).unwrap(), centers, drift: 0.0 }
    }

    /// Enable per-sample center drift.
    pub fn with_drift(mut self, drift: f64) -> Self {
        self.drift = drift;
        self
    }

    /// Sample one labeled point.
    pub fn next_point(&mut self) -> LabeledPoint {
        let label = self.rng.gen_range(0..self.centers.len());
        if self.drift != 0.0 {
            for c in &mut self.centers {
                for x in c.iter_mut() {
                    *x += self.drift;
                }
            }
        }
        let coords =
            self.centers[label].iter().map(|&c| c + self.noise.sample(&mut self.rng)).collect();
        LabeledPoint { coords, label }
    }

    /// Materialize `n` points.
    pub fn take_vec(&mut self, n: usize) -> Vec<LabeledPoint> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

/// Random edge streams for the graph rows (Table 1 "Graph analysis" and
/// "Path analysis").
pub struct EdgeStreamGen {
    rng: StdRng,
    /// Number of vertices.
    pub n: usize,
}

impl EdgeStreamGen {
    /// Generator over `n` vertices.
    pub fn new(n: usize, seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), n }
    }

    /// `m` uniform random edges (Erdős–Rényi G(n,m) with replacement;
    /// self-loops excluded).
    pub fn uniform_edges(&mut self, m: usize) -> Vec<(u32, u32)> {
        let mut edges = Vec::with_capacity(m);
        while edges.len() < m {
            let u = self.rng.gen_range(0..self.n) as u32;
            let v = self.rng.gen_range(0..self.n) as u32;
            if u != v {
                edges.push((u, v));
            }
        }
        edges
    }

    /// Preferential-attachment stream: each new vertex attaches `k` edges
    /// to endpoints sampled proportionally to degree (web-graph-like,
    /// heavy-tailed degrees).
    pub fn preferential_attachment(&mut self, k: usize) -> Vec<(u32, u32)> {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        // Endpoint multiset: sampling uniformly from it is degree-biased.
        let mut endpoints: Vec<u32> = vec![0, 1];
        edges.push((0, 1));
        for v in 2..self.n as u32 {
            for _ in 0..k {
                let t = endpoints[self.rng.gen_range(0..endpoints.len())];
                if t != v {
                    edges.push((v, t));
                    endpoints.push(v);
                    endpoints.push(t);
                }
            }
        }
        edges
    }

    /// A clique of `size` vertices embedded among `extra` random edges —
    /// triangle-rich planted structure for triangle-counting accuracy.
    pub fn planted_clique(&mut self, size: usize, extra: usize) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for i in 0..size as u32 {
            for j in (i + 1)..size as u32 {
                edges.push((i, j));
            }
        }
        edges.extend(self.uniform_edges(extra));
        let mut rng = StdRng::seed_from_u64(self.rng.gen());
        use rand::seq::SliceRandom;
        edges.shuffle(&mut rng);
        edges
    }
}

/// A permutation of `0..n` where each element is displaced at most `d`
/// positions from sorted order — "almost sorted" input whose inversion
/// count grows with `d` (Table 1 "Counting inversions": sortedness).
pub fn permutation_with_displacement(n: usize, d: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u64> = (0..n as u64).collect();
    if d == 0 {
        return v;
    }
    // Local shuffles of windows of size d+1 bound displacement by d.
    let mut i = 0;
    while i < n {
        let end = (i + d + 1).min(n);
        for j in (i + 1..end).rev() {
            let k = rng.gen_range(i..=j);
            v.swap(j, k);
        }
        i = end;
    }
    v
}

/// An AR(1) series `x_t = φ·x_{t-1} + ε_t` for prediction experiments.
pub fn ar1_series(n: usize, phi: f64, sigma: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let noise = Normal::new(0.0, sigma).unwrap();
    let mut v = Vec::with_capacity(n);
    let mut x = 0.0;
    for _ in 0..n {
        x = phi * x + noise.sample(&mut rng);
        v.push(x);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{exact_counts, exact_distinct};

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut g = ZipfStream::new(1000, 1.1, 7);
        let ids = g.take_vec(50_000);
        assert!(ids.iter().all(|&i| i < 1000));
        let counts = exact_counts(&ids);
        let top = counts.values().max().copied().unwrap();
        // Rank-1 item under Zipf(1.1) dominates: far above uniform share.
        assert!(top as f64 > 5.0 * (50_000.0 / 1000.0));
    }

    #[test]
    fn zipf_hashtags_format() {
        let mut g = ZipfStream::new(10, 1.0, 1);
        let tags = g.take_hashtags(5);
        assert!(tags.iter().all(|t| t.starts_with("#tag")));
    }

    #[test]
    fn sensor_series_injects_anomalies() {
        let mut g = SensorSeries::new(3).with_noise(0.5).with_anomalies(0.02, 10.0);
        let pts = g.take_vec(5000);
        let n_anom = pts.iter().filter(|p| p.is_anomaly).count();
        assert!(n_anom > 50 && n_anom < 200, "n_anom = {n_anom}");
        // Injected anomalies are far from the clean signal.
        for p in pts.iter().filter(|p| p.is_anomaly) {
            assert!((p.value - p.clean).abs() > 3.0);
        }
    }

    #[test]
    fn sensor_series_dropout_rate() {
        let mut g = SensorSeries::new(4).with_dropout(0.1);
        let pts = g.take_vec(10_000);
        let dropped = pts.iter().filter(|p| p.dropped).count();
        assert!((800..1200).contains(&dropped), "dropped = {dropped}");
    }

    #[test]
    fn event_stream_disorder_bounded() {
        let mut g = EventStream::new(50, 16, 5);
        let evs = g.take_vec(10_000);
        // Arrival index i corresponds to clock = max_disorder + 1 + i.
        for (i, e) in evs.iter().enumerate() {
            let clock = 16 + 1 + i as u64;
            assert!(e.event_time <= clock && e.event_time + 16 >= clock);
        }
    }

    #[test]
    fn event_stream_drops() {
        let mut g = EventStream::new(10, 0, 6).with_drops(0.5);
        let evs = g.take_vec(10_000);
        assert!(evs.len() > 4_000 && evs.len() < 6_000);
    }

    #[test]
    fn mixture_points_near_their_center() {
        let mut g = GaussianMixtureGen::new(3, 2, 100.0, 1.0, 8);
        let centers = g.centers.clone();
        for p in g.take_vec(500) {
            let c = &centers[p.label];
            let d2: f64 = p.coords.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(d2.sqrt() < 6.0);
        }
    }

    #[test]
    fn edge_gen_no_self_loops() {
        let mut g = EdgeStreamGen::new(100, 9);
        for (u, v) in g.uniform_edges(1000) {
            assert_ne!(u, v);
            assert!(u < 100 && v < 100);
        }
    }

    #[test]
    fn preferential_attachment_has_heavy_tail() {
        let mut g = EdgeStreamGen::new(2000, 10);
        let edges = g.preferential_attachment(2);
        let mut deg = vec![0u32; 2000];
        for (u, v) in &edges {
            deg[*u as usize] += 1;
            deg[*v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let meand = deg.iter().map(|&d| f64::from(d)).sum::<f64>() / 2000.0;
        assert!(f64::from(max) > 8.0 * meand, "max {max} mean {meand}");
    }

    #[test]
    fn planted_clique_contains_all_clique_edges() {
        let mut g = EdgeStreamGen::new(500, 11);
        let edges = g.planted_clique(10, 200);
        let set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                assert!(set.contains(&(i, j)) || set.contains(&(j, i)));
            }
        }
    }

    #[test]
    fn displacement_permutation_bounds() {
        for d in [0usize, 3, 10] {
            let v = permutation_with_displacement(1000, d, 12);
            assert_eq!(exact_distinct(&v), 1000);
            for (i, &x) in v.iter().enumerate() {
                assert!((x as i64 - i as i64).unsigned_abs() as usize <= d);
            }
        }
    }

    #[test]
    fn ar1_is_stationary_for_small_phi() {
        let v = ar1_series(50_000, 0.5, 1.0, 13);
        let m = crate::stats::mean(&v);
        assert!(m.abs() < 0.1, "mean = {m}");
    }
}
