//! Exact/offline reference statistics.
//!
//! Every approximate algorithm in the workspace is validated against an
//! exact computation. These references are deliberately simple (hash maps,
//! sorts) — they are the "batch layer" ground truth for tests and for the
//! EXPERIMENTS.md accuracy columns, not streaming algorithms themselves.

use crate::codec::{ByteReader, ByteWriter};
use crate::synopsis::Synopsis;
use crate::traits::Merge;
use std::collections::HashMap;
use std::hash::Hash;

/// Numerically stable online mean/variance (Welford's algorithm).
///
/// Used both as a reference and as a building block by the time-series
/// crate (it is itself a legitimate streaming algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Observe one value.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance with Bessel's correction (0 for n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observed value (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Combine with another accumulator (Chan et al. parallel variance).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.mean = (self.n as f64 * self.mean + other.n as f64 * other.mean) / n;
        self.m2 = m2;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Welford accumulators always merge (no shape to mismatch); this
/// wraps the inherent infallible merge so [`OnlineStats`] can flow
/// through generic mergeable-synopsis operators.
impl Merge for OnlineStats {
    fn merge(&mut self, other: &Self) -> crate::Result<()> {
        OnlineStats::merge(self, other);
        Ok(())
    }
}

const ONLINE_STATS_TAG: u8 = b'W';

impl Synopsis for OnlineStats {
    fn snapshot(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(1 + 8 * 5);
        w.tag(ONLINE_STATS_TAG)
            .put_u64(self.n)
            .put_f64(self.mean)
            .put_f64(self.m2)
            .put_f64(self.min)
            .put_f64(self.max);
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> crate::Result<()> {
        let mut r = ByteReader::new(bytes);
        r.expect_tag(ONLINE_STATS_TAG, "OnlineStats")?;
        let n = r.get_u64()?;
        let mean = r.get_f64()?;
        let m2 = r.get_f64()?;
        let min = r.get_f64()?;
        let max = r.get_f64()?;
        r.finish()?;
        *self = Self { n, mean, m2, min, max };
        Ok(())
    }
}

/// Exact `q`-quantile of a slice (nearest-rank, `q ∈ [0,1]`).
///
/// Returns `None` on an empty slice. Sorts a copy: O(n log n).
pub fn exact_quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    Some(v[rank - 1])
}

/// Exact rank of `x` (number of elements ≤ x).
pub fn exact_rank(values: &[f64], x: f64) -> usize {
    values.iter().filter(|&&v| v <= x).count()
}

/// Exact item frequencies.
pub fn exact_counts<T: Eq + Hash + Clone>(items: &[T]) -> HashMap<T, u64> {
    let mut m = HashMap::new();
    for it in items {
        *m.entry(it.clone()).or_insert(0) += 1;
    }
    m
}

/// Exact heavy hitters: items with frequency > `theta * n`, sorted by
/// descending count.
pub fn exact_heavy_hitters<T: Eq + Hash + Clone>(items: &[T], theta: f64) -> Vec<(T, u64)> {
    let n = items.len() as f64;
    let mut hh: Vec<(T, u64)> =
        exact_counts(items).into_iter().filter(|(_, c)| (*c as f64) > theta * n).collect();
    hh.sort_by_key(|e| std::cmp::Reverse(e.1));
    hh
}

/// Exact top-k by frequency (ties broken arbitrarily), descending.
pub fn exact_top_k<T: Eq + Hash + Clone>(items: &[T], k: usize) -> Vec<(T, u64)> {
    let mut all: Vec<(T, u64)> = exact_counts(items).into_iter().collect();
    all.sort_by_key(|e| std::cmp::Reverse(e.1));
    all.truncate(k);
    all
}

/// Exact number of distinct items.
pub fn exact_distinct<T: Eq + Hash>(items: &[T]) -> usize {
    items.iter().collect::<std::collections::HashSet<_>>().len()
}

/// Exact k-th frequency moment `F_k = Σ f_i^k`.
pub fn exact_moment<T: Eq + Hash + Clone>(items: &[T], k: u32) -> f64 {
    exact_counts(items).values().map(|&c| (c as f64).powi(k as i32)).sum()
}

/// Exact inversion count via merge sort, O(n log n).
pub fn exact_inversions<T: PartialOrd + Clone>(values: &[T]) -> u64 {
    fn sort_count<T: PartialOrd + Clone>(v: &mut Vec<T>) -> u64 {
        let n = v.len();
        if n <= 1 {
            return 0;
        }
        let mut right = v.split_off(n / 2);
        let mut inv = sort_count(v) + sort_count(&mut right);
        let mut merged = Vec::with_capacity(n);
        let (mut i, mut j) = (0, 0);
        while i < v.len() && j < right.len() {
            if v[i] <= right[j] {
                merged.push(v[i].clone());
                i += 1;
            } else {
                // v[i..] are all greater than right[j]: each is an inversion.
                inv += (v.len() - i) as u64;
                merged.push(right[j].clone());
                j += 1;
            }
        }
        merged.extend_from_slice(&v[i..]);
        merged.extend_from_slice(&right[j..]);
        *v = merged;
        inv
    }
    let mut v = values.to_vec();
    sort_count(&mut v)
}

/// Relative error |est - truth| / truth (0 when both are 0).
pub fn relative_error(est: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if est == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (est - truth).abs() / truth.abs()
    }
}

/// Mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Exact Pearson correlation of two equal-length slices.
///
/// Returns `None` when fewer than two points or zero variance.
pub fn exact_pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n < 2 {
        return None;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, -2.5, 10.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let m = mean(&data);
        let var = data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - m).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -2.5);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn welford_merge_equals_whole() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for (i, &x) in data.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            whole.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), 1);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 3.0);
    }

    #[test]
    fn welford_snapshot_restore_resumes() {
        let mut s = OnlineStats::new();
        for i in 0..100 {
            s.push((i as f64).cos());
        }
        let snap = s.snapshot();
        let mut t = OnlineStats::new();
        t.restore(&snap).unwrap();
        assert_eq!(t.count(), s.count());
        assert_eq!(t.mean(), s.mean());
        // Resume both with the same suffix: identical state.
        for i in 100..150 {
            s.push(i as f64);
            t.push(i as f64);
        }
        assert_eq!(t.variance(), s.variance());
        assert_eq!(t.min(), s.min());
        assert_eq!(t.max(), s.max());
        // Corrupt bytes leave the receiver untouched.
        assert!(t.restore(&snap[..snap.len() - 1]).is_err());
        assert_eq!(t.count(), s.count());
    }

    #[test]
    fn exact_quantile_nearest_rank() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(exact_quantile(&v, 0.0), Some(1.0));
        assert_eq!(exact_quantile(&v, 0.5), Some(3.0));
        assert_eq!(exact_quantile(&v, 1.0), Some(5.0));
        assert_eq!(exact_quantile(&[], 0.5), None);
    }

    #[test]
    fn heavy_hitters_and_top_k() {
        let items = vec!["a", "a", "a", "b", "b", "c"];
        let hh = exact_heavy_hitters(&items, 0.25);
        assert_eq!(hh, vec![("a", 3), ("b", 2)]);
        let tk = exact_top_k(&items, 2);
        assert_eq!(tk[0], ("a", 3));
        assert_eq!(tk[1], ("b", 2));
    }

    #[test]
    fn moments_and_distinct() {
        let items = vec![1, 1, 2, 3];
        assert_eq!(exact_distinct(&items), 3);
        assert_eq!(exact_moment(&items, 0), 3.0); // F0 = #distinct
        assert_eq!(exact_moment(&items, 1), 4.0); // F1 = stream length
        assert_eq!(exact_moment(&items, 2), 6.0); // 4 + 1 + 1
    }

    #[test]
    fn inversions_known_cases() {
        assert_eq!(exact_inversions(&[1, 2, 3, 4]), 0);
        assert_eq!(exact_inversions(&[4, 3, 2, 1]), 6);
        assert_eq!(exact_inversions(&[2, 1, 3]), 1);
        assert_eq!(exact_inversions::<i32>(&[]), 0);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((exact_pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((exact_pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(exact_pearson(&[1.0], &[1.0]), None);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
    }
}
