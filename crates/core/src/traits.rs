//! Cross-crate traits.
//!
//! The tutorial's Section 2 stresses that Web-scale streaming algorithms
//! must "intrinsically distribute computation across multiple nodes":
//! operationally this means every summary must be *mergeable* so that
//! per-partition summaries can be combined at a aggregator. [`Merge`] is
//! that contract, and the estimator traits let the benchmark harness sweep
//! heterogeneous algorithms for the same Table-1 row uniformly.

use crate::error::Result;

/// A summary that can absorb another summary built with identical
/// configuration, as if their input streams had been concatenated.
///
/// Laws (checked by property tests across the workspace):
/// * **identity** — merging a freshly-constructed empty summary is a no-op
///   for all query results;
/// * **stream equivalence** — `sketch(A) ⊎ sketch(B)` answers queries like
///   `sketch(A ++ B)` (exactly for deterministic summaries, with matched
///   randomness for seeded ones);
/// * merging summaries with different shape/seed returns
///   [`crate::SaError::IncompatibleMerge`].
pub trait Merge: Sized {
    /// Absorb `other` into `self`.
    fn merge(&mut self, other: &Self) -> Result<()>;
}

/// The capability bundle a query planner needs from an aggregation
/// state: checkpointable ([`crate::Synopsis`]), mergeable across
/// partitions ([`Merge`]), cloneable so one declared template can seed
/// every parallel task, and sendable to worker threads.
///
/// Blanket-implemented — any summary satisfying the bounds is an
/// `Aggregator` automatically, so the trait is purely a capability
/// alias: `Query::aggregate` (in `sa-platform`) accepts every Table-1
/// summary family without per-type plumbing.
pub trait Aggregator: crate::Synopsis + Merge + Clone + Send + 'static {}

impl<T: crate::Synopsis + Merge + Clone + Send + 'static> Aggregator for T {}

/// Estimators of the number of distinct elements (Table 1, "Estimating
/// Cardinality").
pub trait CardinalityEstimator {
    /// Account for one occurrence of an item, given its 64-bit hash.
    fn insert_hash(&mut self, hash: u64);
    /// Current estimate of the number of distinct items inserted.
    fn estimate(&self) -> f64;
    /// Bytes of heap the summary occupies (for space/accuracy sweeps).
    fn size_bytes(&self) -> usize;
}

/// Point-frequency estimators (Table 1, "Finding Frequent Elements"
/// substrate; Count-Min, Count-Sketch).
pub trait FrequencyEstimator {
    /// Account for `count` occurrences of the item with this hash.
    fn add_hash(&mut self, hash: u64, count: i64);
    /// Estimated frequency of the item with this hash.
    fn estimate_hash(&self, hash: u64) -> i64;
}

/// Rank/quantile summaries (Table 1, "Estimating Quantiles").
pub trait QuantileSketch {
    /// Observe one value.
    fn insert(&mut self, value: f64);
    /// Estimate the `q`-quantile, `q ∈ [0,1]`. Returns `None` when empty.
    fn query(&self, q: f64) -> Option<f64>;
    /// Number of values observed.
    fn count(&self) -> u64;
}

/// Approximate-membership filters (Table 1, "Filtering").
pub trait MembershipFilter {
    /// Insert an item by hash. Returns `false` if the filter had to reject
    /// the insert (e.g. a full cuckoo filter).
    fn insert_hash(&mut self, hash: u64) -> bool;
    /// May return a false positive, never a false negative for inserted
    /// (and not deleted) items.
    fn contains_hash(&self, hash: u64) -> bool;
    /// Bits of storage used.
    fn bits(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SaError;

    // A toy exact counter proves the traits are object-safe where intended
    // and that Merge's laws are expressible.
    #[derive(Default)]
    struct Exact(std::collections::HashSet<u64>);

    impl Merge for Exact {
        fn merge(&mut self, other: &Self) -> Result<()> {
            self.0.extend(&other.0);
            Ok(())
        }
    }

    impl CardinalityEstimator for Exact {
        fn insert_hash(&mut self, h: u64) {
            self.0.insert(h);
        }
        fn estimate(&self) -> f64 {
            self.0.len() as f64
        }
        fn size_bytes(&self) -> usize {
            self.0.len() * 8
        }
    }

    #[test]
    fn merge_identity_law() {
        let mut a = Exact::default();
        a.insert_hash(1);
        a.insert_hash(2);
        let empty = Exact::default();
        a.merge(&empty).unwrap();
        assert_eq!(a.estimate(), 2.0);
    }

    #[test]
    fn merge_stream_equivalence() {
        let mut a = Exact::default();
        let mut b = Exact::default();
        let mut whole = Exact::default();
        for h in 0..100 {
            if h % 2 == 0 {
                a.insert_hash(h);
            } else {
                b.insert_hash(h);
            }
            whole.insert_hash(h);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(), whole.estimate());
    }

    #[test]
    fn estimator_traits_are_object_safe() {
        let mut v: Vec<Box<dyn CardinalityEstimator>> = vec![Box::new(Exact::default())];
        v[0].insert_hash(7);
        assert_eq!(v[0].estimate(), 1.0);
        let _ = SaError::Platform(String::new()); // silence unused import
    }
}
