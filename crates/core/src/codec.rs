//! A tiny hand-rolled byte codec for synopsis snapshots.
//!
//! The workspace is fully offline (no serde), so checkpointable
//! summaries encode themselves with this fixed-layout little-endian
//! writer/reader pair. The format is deliberately boring: every
//! snapshot starts with a one-byte type tag (so restoring the wrong
//! kind of summary fails loudly instead of mis-reading), followed by
//! fixed-width scalars and length-prefixed sequences. Decoding is
//! fully validated — a truncated or mis-tagged buffer yields
//! [`SaError::Codec`], never a panic or a silently wrong summary.

use crate::error::{Result, SaError};

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Write a one-byte type tag (conventionally the first byte).
    pub fn tag(&mut self, tag: u8) -> &mut Self {
        self.put_u8(tag)
    }

    /// Write a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Write a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) -> &mut Self {
        self.put_u8(u8::from(v))
    }

    /// Write a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write an `i64` (little-endian).
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write an `f64` by bit pattern (NaN-safe round trip).
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.put_u64(v.to_bits())
    }

    /// Write a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Validating little-endian decoder over a borrowed buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn short(what: &str) -> SaError {
    SaError::Codec(format!("buffer too short reading {what}"))
}

impl<'a> ByteReader<'a> {
    /// Reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| short(what))?;
        if end > self.buf.len() {
            return Err(short(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read the leading type tag and check it matches `expected`.
    pub fn expect_tag(&mut self, expected: u8, kind: &str) -> Result<()> {
        let got = self.get_u8()?;
        if got != expected {
            return Err(SaError::Codec(format!(
                "snapshot tag mismatch: expected {kind} ({expected:#04x}), got {got:#04x}"
            )));
        }
        Ok(())
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a one-byte `bool` (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SaError::Codec(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    /// Read an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a sequence length and sanity-check it against the bytes
    /// actually remaining (each element occupies ≥ `min_elem_bytes`),
    /// so a corrupt length cannot trigger a huge allocation.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize> {
        let n = self.get_u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.saturating_mul(min_elem_bytes.max(1) as u64) > remaining {
            return Err(SaError::Codec(format!(
                "sequence length {n} exceeds remaining {remaining} bytes"
            )));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.get_len(1)?;
        self.take(n, "bytes")
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SaError::Codec("invalid UTF-8 in string".into()))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the buffer was consumed exactly (trailing garbage is a
    /// corrupt snapshot).
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(SaError::Codec(format!(
                "{} trailing bytes after snapshot",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// An element type that generic summaries (`SpaceSaving<T>`,
/// `Reservoir<T>`) can carry through a snapshot.
///
/// Implemented for the scalar types the workspace streams actually use;
/// applications holding richer items implement it the same way the
/// built-ins do — write with [`ByteWriter`], read with [`ByteReader`].
pub trait CodecItem: Sized {
    /// Append this element to `w`.
    fn encode_item(&self, w: &mut ByteWriter);
    /// Decode one element from `r`.
    fn decode_item(r: &mut ByteReader<'_>) -> Result<Self>;
}

impl CodecItem for u64 {
    fn encode_item(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
    fn decode_item(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_u64()
    }
}

impl CodecItem for i64 {
    fn encode_item(&self, w: &mut ByteWriter) {
        w.put_i64(*self);
    }
    fn decode_item(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_i64()
    }
}

impl CodecItem for u32 {
    fn encode_item(&self, w: &mut ByteWriter) {
        w.put_u32(*self);
    }
    fn decode_item(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_u32()
    }
}

impl CodecItem for f64 {
    fn encode_item(&self, w: &mut ByteWriter) {
        w.put_f64(*self);
    }
    fn decode_item(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_f64()
    }
}

impl CodecItem for String {
    fn encode_item(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
    fn decode_item(r: &mut ByteReader<'_>) -> Result<Self> {
        r.get_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = ByteWriter::new();
        w.tag(b'T')
            .put_u8(7)
            .put_bool(true)
            .put_u32(0xDEAD_BEEF)
            .put_u64(u64::MAX)
            .put_i64(-42)
            .put_f64(std::f64::consts::PI)
            .put_bytes(&[1, 2, 3])
            .put_str("héllo");
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        r.expect_tag(b'T', "test").unwrap();
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn nan_round_trips_by_bits() {
        let mut w = ByteWriter::new();
        w.put_f64(f64::NAN);
        let buf = w.finish();
        let back = ByteReader::new(&buf).get_f64().unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn truncated_buffer_is_an_error() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf[..5]);
        assert!(matches!(r.get_u64(), Err(SaError::Codec(_))));
    }

    #[test]
    fn wrong_tag_is_an_error() {
        let mut w = ByteWriter::new();
        w.tag(b'A');
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        let err = r.expect_tag(b'B', "other").unwrap_err();
        assert!(err.to_string().contains("tag mismatch"));
    }

    #[test]
    fn corrupt_length_rejected_without_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd sequence length
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.get_bytes(), Err(SaError::Codec(_))));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(1).put_u8(2);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        r.get_u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn invalid_bool_and_utf8_rejected() {
        let mut r = ByteReader::new(&[7]);
        assert!(r.get_bool().is_err());
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let buf = w.finish();
        assert!(ByteReader::new(&buf).get_str().is_err());
    }

    #[test]
    fn codec_items_round_trip() {
        let mut w = ByteWriter::new();
        42u64.encode_item(&mut w);
        (-3i64).encode_item(&mut w);
        9u32.encode_item(&mut w);
        2.5f64.encode_item(&mut w);
        "word".to_string().encode_item(&mut w);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert_eq!(u64::decode_item(&mut r).unwrap(), 42);
        assert_eq!(i64::decode_item(&mut r).unwrap(), -3);
        assert_eq!(u32::decode_item(&mut r).unwrap(), 9);
        assert_eq!(f64::decode_item(&mut r).unwrap(), 2.5);
        assert_eq!(String::decode_item(&mut r).unwrap(), "word");
        r.finish().unwrap();
    }
}
