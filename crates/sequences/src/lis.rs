//! Longest increasing subsequence over streams.

use sa_core::{Result, SaError};

/// Exact streaming LIS length via patience sorting.
///
/// Maintains the minimal possible tail of an increasing subsequence of
/// every length; each arrival binary-searches and replaces (or extends)
/// in O(log L). Space is O(L) — linear in the LIS, which is the proven
/// lower bound for exact computation (Gál & Gopalan, the paper's
/// \[87\]).
#[derive(Clone, Debug, Default)]
pub struct PatienceLis {
    /// tails[i] = smallest tail of an increasing subsequence of length i+1.
    tails: Vec<i64>,
    n: u64,
}

impl PatienceLis {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed the next element; returns the LIS length so far.
    pub fn push(&mut self, x: i64) -> usize {
        self.n += 1;
        // Strictly increasing: find first tail >= x.
        let pos = self.tails.partition_point(|&t| t < x);
        if pos == self.tails.len() {
            self.tails.push(x);
        } else {
            self.tails[pos] = x;
        }
        self.tails.len()
    }

    /// Current LIS length.
    pub fn lis_len(&self) -> usize {
        self.tails.len()
    }

    /// Elements seen.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Space used (pile tails stored).
    pub fn space(&self) -> usize {
        self.tails.len()
    }
}

/// Space-bounded approximate LIS: at most `k` patience piles.
///
/// When the LIS exceeds `k`, the structure keeps the *k smallest tails*
/// (dropping the largest pile) plus a count of dropped piles — the
/// reported length is a lower bound that is exact whenever the true LIS
/// ≤ k, matching the deterministic one-pass approximation trade-off of
/// Liben-Nowell et al. (the paper's \[122\]).
#[derive(Clone, Debug)]
pub struct BoundedLis {
    tails: Vec<i64>,
    k: usize,
    /// Piles evicted because the bound was hit.
    overflow: u64,
    n: u64,
}

impl BoundedLis {
    /// Keep at most `k ≥ 1` piles.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(SaError::invalid("k", "must be positive"));
        }
        Ok(Self { tails: Vec::with_capacity(k + 1), k, overflow: 0, n: 0 })
    }

    /// Feed the next element.
    pub fn push(&mut self, x: i64) {
        self.n += 1;
        let pos = self.tails.partition_point(|&t| t < x);
        if pos == self.tails.len() {
            if self.tails.len() < self.k {
                self.tails.push(x);
            } else {
                // A chain longer than k exists; we cannot afford its
                // pile, only remember that it happened.
                self.overflow += 1;
            }
        } else {
            self.tails[pos] = x;
        }
    }

    /// Lower bound on the LIS (exact when no overflow occurred).
    pub fn lis_lower_bound(&self) -> usize {
        self.tails.len()
    }

    /// Whether the answer is exact.
    pub fn is_exact(&self) -> bool {
        self.overflow == 0
    }

    /// Upper bound: piles + evictions (a chain may have continued).
    pub fn lis_upper_bound(&self) -> u64 {
        self.tails.len() as u64 + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::generators::permutation_with_displacement;

    /// O(n²) reference LIS.
    fn lis_exact(v: &[i64]) -> usize {
        let n = v.len();
        if n == 0 {
            return 0;
        }
        let mut dp = vec![1usize; n];
        for i in 1..n {
            for j in 0..i {
                if v[j] < v[i] {
                    dp[i] = dp[i].max(dp[j] + 1);
                }
            }
        }
        dp.into_iter().max().unwrap()
    }

    #[test]
    fn known_sequences() {
        let mut p = PatienceLis::new();
        for x in [3i64, 1, 4, 1, 5, 9, 2, 6] {
            p.push(x);
        }
        assert_eq!(p.lis_len(), 4); // 1,4,5,9 or 1,4,5,6 etc.
        let mut sorted = PatienceLis::new();
        for x in 0..100i64 {
            sorted.push(x);
        }
        assert_eq!(sorted.lis_len(), 100);
        let mut rev = PatienceLis::new();
        for x in (0..100i64).rev() {
            rev.push(x);
        }
        assert_eq!(rev.lis_len(), 1);
    }

    #[test]
    fn matches_quadratic_reference() {
        let mut rng = sa_core::rng::SplitMix64::new(1);
        for trial in 0..20 {
            let v: Vec<i64> = (0..200).map(|_| rng.next_below(50) as i64).collect();
            let mut p = PatienceLis::new();
            for &x in &v {
                p.push(x);
            }
            assert_eq!(p.lis_len(), lis_exact(&v), "trial {trial}");
        }
    }

    #[test]
    fn near_sorted_has_long_lis() {
        let v = permutation_with_displacement(10_000, 3, 7);
        let mut p = PatienceLis::new();
        for &x in &v {
            p.push(x as i64);
        }
        // Displacement ≤ 3 keeps the LIS near n.
        assert!(p.lis_len() > 2_500, "LIS = {}", p.lis_len());
    }

    #[test]
    fn bounded_exact_below_k() {
        let mut b = BoundedLis::new(64).unwrap();
        let mut p = PatienceLis::new();
        let mut rng = sa_core::rng::SplitMix64::new(2);
        for _ in 0..500 {
            let x = rng.next_below(30) as i64; // LIS ≤ 30 < 64
            b.push(x);
            p.push(x);
        }
        assert!(b.is_exact());
        assert_eq!(b.lis_lower_bound(), p.lis_len());
    }

    #[test]
    fn bounded_brackets_truth_above_k() {
        let mut b = BoundedLis::new(10).unwrap();
        let mut p = PatienceLis::new();
        for x in 0..100i64 {
            b.push(x);
            p.push(x);
        }
        assert!(!b.is_exact());
        assert!(b.lis_lower_bound() <= p.lis_len());
        assert!(b.lis_upper_bound() >= p.lis_len() as u64);
        assert_eq!(b.lis_lower_bound(), 10);
    }

    #[test]
    fn invalid_k() {
        assert!(BoundedLis::new(0).is_err());
    }
}
