//! Inversion counting — the Table-1 **Counting Inversions** row
//! ("estimate number of inversions; measure sortedness of data",
//! Ajtai–Jayram–Kumar–Sivakumar \[36\]).

use sa_core::rng::SplitMix64;
use sa_core::{Result, SaError};

/// Exact streaming inversion counter over a bounded value universe,
/// using a Fenwick (binary indexed) tree: O(log U) per element,
/// O(U) space. The ground truth for the sampling estimator.
#[derive(Clone, Debug)]
pub struct ExactInversions {
    /// Fenwick tree over value counts.
    tree: Vec<u64>,
    universe: usize,
    inversions: u64,
    n: u64,
}

impl ExactInversions {
    /// Values must lie in `0..universe`.
    pub fn new(universe: usize) -> Result<Self> {
        if universe == 0 {
            return Err(SaError::invalid("universe", "must be positive"));
        }
        Ok(Self { tree: vec![0; universe + 1], universe, inversions: 0, n: 0 })
    }

    fn add(&mut self, mut i: usize) {
        i += 1;
        while i <= self.universe {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Count of previously seen values ≤ i.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0;
        let mut idx = i.min(self.universe);
        while idx > 0 {
            s += self.tree[idx];
            idx -= idx & idx.wrapping_neg();
        }
        s
    }

    /// Feed the next value; returns inversions added by it.
    ///
    /// # Panics
    /// Panics if `x ≥ universe`.
    pub fn push(&mut self, x: u64) -> u64 {
        assert!((x as usize) < self.universe, "value out of universe");
        // Inversions added = # earlier elements strictly greater than x.
        let greater = self.n - self.prefix(x as usize);
        self.inversions += greater;
        self.add(x as usize);
        self.n += 1;
        greater
    }

    /// Total inversions so far.
    pub fn total(&self) -> u64 {
        self.inversions
    }

    /// Elements seen.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Normalized sortedness in \[0,1\]: 1 = sorted, 0 = reversed.
    pub fn sortedness(&self) -> f64 {
        if self.n < 2 {
            return 1.0;
        }
        let max = self.n * (self.n - 1) / 2;
        1.0 - self.inversions as f64 / max as f64
    }
}

/// Sampling-based inversion estimator in sublinear space.
///
/// Keeps `k` uniformly sampled earlier values via reservoir sampling;
/// each arrival `x_t` is compared against the sample, and the fraction
/// of retained values greater than `x_t` — an unbiased estimate of
/// `Pr_{i<t}[x_i > x_t]` — is scaled by `t−1` and accumulated. Standard
/// error ∼ `1/√(pairs compared)` — the space/accuracy trade the \[36\]
/// lower bounds show is necessary.
#[derive(Clone, Debug)]
pub struct SampledInversions {
    sample: Vec<u64>,
    k: usize,
    n: u64,
    /// Running unbiased estimate of the inversion count.
    estimate: f64,
    rng: SplitMix64,
}

impl SampledInversions {
    /// Keep `k ≥ 8` sampled elements.
    pub fn new(k: usize) -> Result<Self> {
        if k < 8 {
            return Err(SaError::invalid("k", "must be at least 8"));
        }
        Ok(Self {
            sample: Vec::with_capacity(k),
            k,
            n: 0,
            estimate: 0.0,
            rng: SplitMix64::new(0x1277),
        })
    }

    /// Use a specific RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::new(seed);
        self
    }

    /// Feed the next value.
    pub fn push(&mut self, x: u64) {
        self.n += 1;
        // Fraction of sampled earlier elements greater than x estimates
        // Pr[x_i > x over i < t]; scale by (t-1) earlier elements.
        if !self.sample.is_empty() && self.n > 1 {
            let greater = self.sample.iter().filter(|&&s| s > x).count();
            self.estimate += greater as f64 / self.sample.len() as f64 * (self.n - 1) as f64;
        }
        // Reservoir over elements.
        if self.sample.len() < self.k {
            self.sample.push(x);
        } else {
            let j = self.rng.next_below(self.n);
            if (j as usize) < self.k {
                self.sample[j as usize] = x;
            }
        }
    }

    /// Estimated total inversions.
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// Elements seen.
    pub fn n(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::generators::permutation_with_displacement;
    use sa_core::stats::{exact_inversions, relative_error};

    #[test]
    fn exact_matches_merge_sort_reference() {
        let mut rng = SplitMix64::new(1);
        for trial in 0..10 {
            let v: Vec<u64> = (0..500).map(|_| rng.next_below(100)).collect();
            let mut counter = ExactInversions::new(100).unwrap();
            for &x in &v {
                counter.push(x);
            }
            assert_eq!(counter.total(), exact_inversions(&v), "trial {trial}");
        }
    }

    #[test]
    fn sortedness_endpoints() {
        let mut sorted = ExactInversions::new(100).unwrap();
        for x in 0..100 {
            sorted.push(x);
        }
        assert_eq!(sorted.total(), 0);
        assert_eq!(sorted.sortedness(), 1.0);
        let mut rev = ExactInversions::new(100).unwrap();
        for x in (0..100).rev() {
            rev.push(x);
        }
        assert_eq!(rev.total(), 100 * 99 / 2);
        assert_eq!(rev.sortedness(), 0.0);
    }

    #[test]
    fn displacement_controls_inversions() {
        let mut counts = Vec::new();
        for d in [0usize, 10, 100, 1000] {
            let v = permutation_with_displacement(5_000, d, 3);
            let mut c = ExactInversions::new(5_000).unwrap();
            for &x in &v {
                c.push(x);
            }
            counts.push(c.total());
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] < counts[2] && counts[2] < counts[3], "{counts:?}");
    }

    #[test]
    fn sampled_estimator_tracks_truth() {
        let n = 20_000usize;
        for d in [50usize, 2000] {
            let v = permutation_with_displacement(n, d, 9);
            let truth = exact_inversions(&v) as f64;
            let mut est_sum = 0.0;
            let runs = 3;
            for seed in 0..runs {
                let mut s = SampledInversions::new(512).unwrap().with_seed(seed);
                for &x in &v {
                    s.push(x);
                }
                est_sum += s.estimate();
            }
            let err = relative_error(est_sum / runs as f64, truth);
            assert!(err < 0.25, "d={d}: err {err} (truth {truth})");
        }
    }

    #[test]
    fn sampled_space_is_bounded() {
        let mut s = SampledInversions::new(64).unwrap();
        for i in 0..100_000u64 {
            s.push(i % 1000);
        }
        assert_eq!(s.sample.len(), 64);
        assert_eq!(s.n(), 100_000);
    }

    #[test]
    fn invalid_params() {
        assert!(ExactInversions::new(0).is_err());
        assert!(SampledInversions::new(4).is_err());
    }

    #[test]
    #[should_panic(expected = "value out of universe")]
    fn out_of_universe_panics() {
        let mut c = ExactInversions::new(10).unwrap();
        c.push(10);
    }
}
