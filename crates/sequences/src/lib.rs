//! # sa-sequences
//!
//! Order statistics of streams — two Table-1 rows:
//!
//! * **Counting Inversions** ([`inversions`]) — "estimate the number of
//!   inversions … measure sortedness of data" (Ajtai–Jayram–Kumar–
//!   Sivakumar, the paper's \[36\]): an exact BIT-based counter for
//!   ground truth and a sampling estimator in sublinear space.
//! * **Finding Subsequences** ([`lis`], [`lcs`]) — "find Longest
//!   Increasing Subsequences, Longest Common Subsequence, subsequences
//!   similar to a given query" (\[122, 152, 87\]; application: traffic
//!   analysis). Patience sorting gives exact streaming LIS length in
//!   O(n) space; [`lis::BoundedLis`] keeps only `k` patience piles for
//!   the space-bounded approximation the streaming papers study; LCS is
//!   against a fixed query pattern in O(|query|) space per element.
//!
//! (Similarity search against a query *shape* over numeric streams lives
//! in `sa-timeseries::patterns`.)

pub mod inversions;
pub mod lcs;
pub mod lis;

pub use inversions::{ExactInversions, SampledInversions};
pub use lcs::StreamingLcs;
pub use lis::{BoundedLis, PatienceLis};
