//! Longest common subsequence against a fixed query, over a stream.
//!
//! The general two-stream LCS needs Ω(n) space (Sun & Woodruff, the
//! paper's \[152\]); the practical streaming variant fixes one side — a
//! query pattern of length `m` — and processes the stream one element at
//! a time with the single-row DP, O(m) space and O(m) per element.

use sa_core::{Result, SaError};

/// Streaming LCS length between a fixed `query` and the stream so far.
///
/// ```
/// use sa_sequences::StreamingLcs;
///
/// let mut lcs = StreamingLcs::new(b"GATTACA".to_vec()).unwrap();
/// for &c in b"GCATGCU" {
///     lcs.push(c);
/// }
/// assert_eq!(lcs.lcs_len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct StreamingLcs<T: Eq + Clone> {
    query: Vec<T>,
    /// row[j] = LCS(stream so far, query[..j]).
    row: Vec<usize>,
    n: u64,
}

impl<T: Eq + Clone> StreamingLcs<T> {
    /// Non-empty query pattern.
    pub fn new(query: Vec<T>) -> Result<Self> {
        if query.is_empty() {
            return Err(SaError::invalid("query", "must be non-empty"));
        }
        let m = query.len();
        Ok(Self { query, row: vec![0; m + 1], n: 0 })
    }

    /// Feed the next stream element; returns the updated LCS length.
    pub fn push(&mut self, x: T) -> usize {
        self.n += 1;
        let mut prev_diag = 0; // row[j-1] from the previous stream step
        for j in 1..=self.query.len() {
            let old = self.row[j];
            if self.query[j - 1] == x {
                self.row[j] = prev_diag + 1;
            }
            if self.row[j] < self.row[j - 1] {
                self.row[j] = self.row[j - 1];
            }
            prev_diag = old;
        }
        self.row[self.query.len()]
    }

    /// Current LCS length.
    pub fn lcs_len(&self) -> usize {
        self.row[self.query.len()]
    }

    /// Fraction of the query matched, in `[0,1]` — a similarity score
    /// ("subsequences similar to a given query sequence").
    pub fn similarity(&self) -> f64 {
        self.lcs_len() as f64 / self.query.len() as f64
    }

    /// Stream elements consumed.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Query length.
    pub fn query_len(&self) -> usize {
        self.query.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Full O(nm) reference.
    fn lcs_exact<T: Eq>(a: &[T], b: &[T]) -> usize {
        let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
        for i in 1..=a.len() {
            for j in 1..=b.len() {
                dp[i][j] = if a[i - 1] == b[j - 1] {
                    dp[i - 1][j - 1] + 1
                } else {
                    dp[i - 1][j].max(dp[i][j - 1])
                };
            }
        }
        dp[a.len()][b.len()]
    }

    #[test]
    fn classic_dna_example() {
        let mut lcs = StreamingLcs::new(b"GATTACA".to_vec()).unwrap();
        let mut len = 0;
        for &c in b"GCATGCU" {
            len = lcs.push(c);
        }
        assert_eq!(len, 4);
        assert_eq!(lcs.lcs_len(), lcs_exact(b"GCATGCU", b"GATTACA"));
    }

    #[test]
    fn matches_reference_on_random_streams() {
        let mut rng = sa_core::rng::SplitMix64::new(3);
        for trial in 0..20 {
            let query: Vec<u8> = (0..30).map(|_| rng.next_below(4) as u8).collect();
            let stream: Vec<u8> = (0..200).map(|_| rng.next_below(4) as u8).collect();
            let mut lcs = StreamingLcs::new(query.clone()).unwrap();
            for (i, &x) in stream.iter().enumerate() {
                let got = lcs.push(x);
                if i % 37 == 0 {
                    assert_eq!(got, lcs_exact(&stream[..=i], &query), "trial {trial}, prefix {i}");
                }
            }
            assert_eq!(lcs.lcs_len(), lcs_exact(&stream, &query));
        }
    }

    #[test]
    fn identical_stream_matches_fully() {
        let q = vec![1, 2, 3, 4, 5];
        let mut lcs = StreamingLcs::new(q.clone()).unwrap();
        for x in q {
            lcs.push(x);
        }
        assert_eq!(lcs.similarity(), 1.0);
    }

    #[test]
    fn disjoint_alphabets_match_nothing() {
        let mut lcs = StreamingLcs::new(vec![1, 2, 3]).unwrap();
        for x in [4, 5, 6, 7] {
            lcs.push(x);
        }
        assert_eq!(lcs.lcs_len(), 0);
        assert_eq!(lcs.similarity(), 0.0);
    }

    #[test]
    fn empty_query_rejected() {
        assert!(StreamingLcs::<u8>::new(vec![]).is_err());
    }
}
