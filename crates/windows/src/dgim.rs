//! DGIM basic counting (Datar, Gionis, Indyk, Motwani — SICOMP 2002).

use sa_core::codec::{ByteReader, ByteWriter};
use sa_core::{Merge, Result, SaError, Synopsis};
use std::collections::VecDeque;

/// Approximate count of 1-bits in a sliding window of `n` slots.
///
/// Ones are grouped into buckets of power-of-two sizes, at most `r`
/// buckets per size (newest first); exceeding `r` merges the two oldest
/// of that size. The estimate drops half of the oldest (straddling)
/// bucket, giving relative error at most `1/(2(r−1))` — so
/// `r = ⌈1/(2ε)⌉ + 1` yields ε-accuracy in `O((1/ε)·log²n)` bits.
/// The `r` knob is the t16 ablation (space ↔ accuracy).
///
/// ```
/// use sa_windows::Dgim;
///
/// let mut d = Dgim::new(10_000, 0.05).unwrap();
/// for t in 0..100_000u64 {
///     d.push(t % 3 == 0); // a third of slots are 1
/// }
/// let est = d.estimate() as f64;
/// assert!((est - 3333.0).abs() / 3333.0 < 0.06);
/// ```
#[derive(Clone, Debug)]
pub struct Dgim {
    /// (last-1 timestamp, bucket size); newest at the front.
    buckets: VecDeque<(u64, u64)>,
    window: u64,
    /// Max buckets allowed per size.
    r: usize,
    now: u64,
}

impl Dgim {
    /// Window of `n ≥ 1` slots, relative error target `ε ∈ (0, 0.5]`.
    pub fn new(n: u64, epsilon: f64) -> Result<Self> {
        if n == 0 {
            return Err(SaError::invalid("n", "must be positive"));
        }
        if !(epsilon > 0.0 && epsilon <= 0.5) {
            return Err(SaError::invalid("epsilon", "must be in (0, 0.5]"));
        }
        let r = (1.0 / (2.0 * epsilon)).ceil() as usize + 1;
        Ok(Self { buckets: VecDeque::new(), window: n, r, now: 0 })
    }

    /// Directly choose `r` (max buckets per size); `r ≥ 2`.
    pub fn with_r(n: u64, r: usize) -> Result<Self> {
        if n == 0 {
            return Err(SaError::invalid("n", "must be positive"));
        }
        if r < 2 {
            return Err(SaError::invalid("r", "must be at least 2"));
        }
        Ok(Self { buckets: VecDeque::new(), window: n, r, now: 0 })
    }

    /// Push the next bit into the window.
    pub fn push(&mut self, bit: bool) {
        self.now += 1;
        // Expire buckets that left the window entirely.
        while let Some(&(ts, _)) = self.buckets.back() {
            if ts + self.window <= self.now {
                self.buckets.pop_back();
            } else {
                break;
            }
        }
        if !bit {
            return;
        }
        self.buckets.push_front((self.now, 1));
        // Cascade merges: at most r buckets of each size. Bucket sizes
        // are non-decreasing toward the past, so each size forms a
        // contiguous run starting where the previous one ended — the
        // cascade is O(r) amortized.
        let mut size = 1u64;
        let mut run_start = 0usize;
        loop {
            let mut j = run_start;
            while j < self.buckets.len() && self.buckets[j].1 == size {
                j += 1;
            }
            if j - run_start <= self.r {
                break;
            }
            // Merge the two oldest of the run (positions j-2, j-1),
            // keeping the newer timestamp of the pair.
            let newer_ts = self.buckets[j - 2].0;
            self.buckets[j - 2] = (newer_ts, size * 2);
            self.buckets.remove(j - 1);
            run_start = j - 2;
            size *= 2;
        }
    }

    /// Estimated number of 1s among the last `window` slots.
    pub fn estimate(&self) -> u64 {
        self.estimate_last(self.window)
    }

    /// Estimated number of 1s among the last `w ≤ window` slots.
    pub fn estimate_last(&self, w: u64) -> u64 {
        let w = w.min(self.window);
        let cutoff = self.now.saturating_sub(w);
        let mut total = 0u64;
        let mut oldest_included = 0u64;
        for &(ts, size) in &self.buckets {
            if ts > cutoff {
                total += size;
                oldest_included = size;
            }
        }
        // The oldest bucket may straddle the boundary: count half.
        total - oldest_included / 2
    }

    /// Number of buckets stored (space diagnostic).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Exact upper bound on the relative error for this `r`.
    pub fn error_bound(&self) -> f64 {
        1.0 / (2.0 * (self.r as f64 - 1.0))
    }

    /// Slots consumed so far.
    pub fn now(&self) -> u64 {
        self.now
    }
}

impl Merge for Dgim {
    /// Combine two counters observed over the *same* slot clock (e.g.
    /// two shards of one stream): the merged counter estimates the
    /// union's 1-count. Buckets are pooled on the shared time axis,
    /// expired against the newer frontier, and the per-size bucket cap
    /// is repaired by the same oldest-pair merges the push cascade
    /// uses. Deterministic given the two bucket multisets, so the
    /// operation is commutative; estimates stay within the DGIM bound
    /// because every bucket still covers a disjoint set of 1s.
    fn merge(&mut self, other: &Self) -> Result<()> {
        if self.window != other.window || self.r != other.r {
            return Err(SaError::IncompatibleMerge(format!(
                "DGIM shape mismatch: (window {}, r {}) vs (window {}, r {})",
                self.window, self.r, other.window, other.r
            )));
        }
        self.now = self.now.max(other.now);
        let sort = |all: &mut Vec<(u64, u64)>| {
            // Newest first; same timestamp → smaller bucket first.
            all.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        };
        let mut all: Vec<(u64, u64)> =
            self.buckets.iter().chain(other.buckets.iter()).copied().collect();
        sort(&mut all);
        all.retain(|&(ts, _)| ts + self.window > self.now);
        // Repair the ≤ r buckets-per-size invariant, smallest size up
        // (each repair feeds one bucket of the next size).
        let mut size = 1u64;
        loop {
            let pos: Vec<usize> = (0..all.len()).filter(|&i| all[i].1 == size).collect();
            if pos.len() > self.r {
                // Merge the two oldest of this size, keeping the newer
                // timestamp of the pair.
                let oldest = pos[pos.len() - 1];
                let second = pos[pos.len() - 2];
                all[second] = (all[second].0, size * 2);
                all.remove(oldest);
                sort(&mut all);
                continue;
            }
            match all.iter().map(|&(_, s)| s).filter(|&s| s > size).min() {
                Some(next) => size = next,
                None => break,
            }
        }
        self.buckets = all.into();
        Ok(())
    }
}

const SNAPSHOT_TAG: u8 = b'D';

impl Synopsis for Dgim {
    fn snapshot(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(1 + 8 * 4 + self.buckets.len() * 16);
        w.tag(SNAPSHOT_TAG).put_u64(self.window).put_u64(self.r as u64).put_u64(self.now);
        w.put_u64(self.buckets.len() as u64);
        for &(ts, size) in &self.buckets {
            w.put_u64(ts).put_u64(size);
        }
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = ByteReader::new(bytes);
        r.expect_tag(SNAPSHOT_TAG, "Dgim")?;
        let window = r.get_u64()?;
        let rr = r.get_u64()? as usize;
        let now = r.get_u64()?;
        if window == 0 || rr < 2 {
            return Err(SaError::Codec(format!("DGIM snapshot has window={window}, r={rr}")));
        }
        let len = r.get_len(16)?;
        let mut buckets = VecDeque::with_capacity(len);
        for _ in 0..len {
            let ts = r.get_u64()?;
            let size = r.get_u64()?;
            buckets.push_back((ts, size));
        }
        r.finish()?;
        *self = Self { buckets, window, r: rr, now };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::rng::SplitMix64;
    use std::collections::VecDeque;

    /// Exact sliding-window reference.
    struct ExactWindow {
        bits: VecDeque<bool>,
        n: usize,
    }
    impl ExactWindow {
        fn new(n: usize) -> Self {
            Self { bits: VecDeque::new(), n }
        }
        fn push(&mut self, b: bool) {
            self.bits.push_back(b);
            if self.bits.len() > self.n {
                self.bits.pop_front();
            }
        }
        fn count(&self) -> u64 {
            self.bits.iter().filter(|&&b| b).count() as u64
        }
    }

    fn run_against_exact(density: f64, epsilon: f64, seed: u64) {
        let n = 10_000u64;
        let mut d = Dgim::new(n, epsilon).unwrap();
        let mut exact = ExactWindow::new(n as usize);
        let mut rng = SplitMix64::new(seed);
        for i in 0..100_000u64 {
            let bit = rng.bernoulli(density);
            d.push(bit);
            exact.push(bit);
            if i % 977 == 0 && i > n {
                let t = exact.count();
                let e = d.estimate();
                if t > 0 {
                    let rel = (e as f64 - t as f64).abs() / t as f64;
                    assert!(rel <= epsilon + 0.01, "i={i}: est {e} vs true {t} (rel {rel})");
                }
            }
        }
    }

    #[test]
    fn accuracy_dense_stream() {
        run_against_exact(0.5, 0.05, 1);
    }

    #[test]
    fn accuracy_sparse_stream() {
        run_against_exact(0.02, 0.1, 2);
    }

    #[test]
    fn accuracy_tight_epsilon() {
        run_against_exact(0.3, 0.01, 3);
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let mut d = Dgim::new(1_000, 0.1).unwrap();
        for _ in 0..5_000 {
            d.push(true);
        }
        let e = d.estimate();
        assert!((e as f64 - 1_000.0).abs() <= 100.0 + 1.0, "est {e}");
        let mut z = Dgim::new(1_000, 0.1).unwrap();
        for _ in 0..5_000 {
            z.push(false);
        }
        assert_eq!(z.estimate(), 0);
    }

    #[test]
    fn space_is_polylog() {
        let mut d = Dgim::new(1_000_000, 0.05).unwrap();
        for _ in 0..2_000_000u64 {
            d.push(true);
        }
        // r·log2(n) ≈ 11·20 = 220 buckets max.
        assert!(d.bucket_count() < 300, "{} buckets", d.bucket_count());
    }

    #[test]
    fn sub_window_queries() {
        let mut d = Dgim::new(10_000, 0.05).unwrap();
        for _ in 0..10_000 {
            d.push(true);
        }
        let e = d.estimate_last(1_000) as f64;
        assert!((e - 1_000.0).abs() <= 110.0, "est {e}");
    }

    #[test]
    fn larger_r_means_smaller_error_bound() {
        let d2 = Dgim::with_r(100, 2).unwrap();
        let d8 = Dgim::with_r(100, 8).unwrap();
        assert!(d8.error_bound() < d2.error_bound());
        assert_eq!(d2.error_bound(), 0.5);
    }

    #[test]
    fn invalid_params() {
        assert!(Dgim::new(0, 0.1).is_err());
        assert!(Dgim::new(10, 0.0).is_err());
        assert!(Dgim::new(10, 0.6).is_err());
        assert!(Dgim::with_r(10, 1).is_err());
    }

    #[test]
    fn snapshot_restore_resumes_exactly() {
        let mut rng = SplitMix64::new(21);
        let mut s = Dgim::new(1_000, 0.05).unwrap();
        for _ in 0..20_000 {
            s.push(rng.bernoulli(0.4));
        }
        let mut t = Dgim::new(7, 0.5).unwrap(); // differently configured
        t.restore(&s.snapshot()).unwrap();
        assert_eq!(t.now(), s.now());
        assert_eq!(t.estimate(), s.estimate());
        // Resume both with the same bit suffix: identical estimates.
        for _ in 0..5_000 {
            let b = rng.bernoulli(0.4);
            s.push(b);
            t.push(b);
        }
        assert_eq!(t.estimate(), s.estimate());
        assert_eq!(t.bucket_count(), s.bucket_count());
        let snap = s.snapshot();
        assert!(t.restore(&snap[..snap.len() - 5]).is_err());
    }
}
