//! Sliding-window max/min via monotonic deques — the O(1) amortized
//! building block behind windowed "location/motion" and threshold
//! operators (§2's common streaming operators).

use sa_core::{Result, SaError};
use std::collections::VecDeque;

/// Exact maximum and minimum of the last `n` values, O(1) amortized.
#[derive(Clone, Debug)]
pub struct SlidingExtrema {
    /// (index, value), values strictly decreasing — front is the max.
    maxq: VecDeque<(u64, f64)>,
    /// (index, value), values strictly increasing — front is the min.
    minq: VecDeque<(u64, f64)>,
    window: u64,
    now: u64,
}

impl SlidingExtrema {
    /// Window of `n ≥ 1` values.
    pub fn new(n: u64) -> Result<Self> {
        if n == 0 {
            return Err(SaError::invalid("n", "must be positive"));
        }
        Ok(Self { maxq: VecDeque::new(), minq: VecDeque::new(), window: n, now: 0 })
    }

    /// Push the next value.
    pub fn push(&mut self, value: f64) {
        self.now += 1;
        let cutoff = self.now.saturating_sub(self.window);
        while self.maxq.front().is_some_and(|&(i, _)| i <= cutoff) {
            self.maxq.pop_front();
        }
        while self.minq.front().is_some_and(|&(i, _)| i <= cutoff) {
            self.minq.pop_front();
        }
        while self.maxq.back().is_some_and(|&(_, v)| v <= value) {
            self.maxq.pop_back();
        }
        while self.minq.back().is_some_and(|&(_, v)| v >= value) {
            self.minq.pop_back();
        }
        self.maxq.push_back((self.now, value));
        self.minq.push_back((self.now, value));
    }

    /// Maximum of the live window (`None` before any push).
    pub fn max(&self) -> Option<f64> {
        self.maxq.front().map(|&(_, v)| v)
    }

    /// Minimum of the live window.
    pub fn min(&self) -> Option<f64> {
        self.minq.front().map(|&(_, v)| v)
    }

    /// Range (max − min) of the live window.
    pub fn range(&self) -> Option<f64> {
        Some(self.max()? - self.min()?)
    }

    /// Stored entries across both deques.
    pub fn stored(&self) -> usize {
        self.maxq.len() + self.minq.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::rng::SplitMix64;
    use std::collections::VecDeque;

    #[test]
    fn matches_exact_on_random_stream() {
        let n = 500u64;
        let mut se = SlidingExtrema::new(n).unwrap();
        let mut rng = SplitMix64::new(1);
        let mut window: VecDeque<f64> = VecDeque::new();
        for _ in 0..20_000 {
            let v = rng.next_f64() * 1000.0 - 500.0;
            se.push(v);
            window.push_back(v);
            if window.len() > n as usize {
                window.pop_front();
            }
            let exact_max = window.iter().cloned().fold(f64::MIN, f64::max);
            let exact_min = window.iter().cloned().fold(f64::MAX, f64::min);
            assert_eq!(se.max(), Some(exact_max));
            assert_eq!(se.min(), Some(exact_min));
        }
    }

    #[test]
    fn monotone_streams() {
        let mut se = SlidingExtrema::new(10).unwrap();
        for i in 0..100 {
            se.push(i as f64);
        }
        assert_eq!(se.max(), Some(99.0));
        assert_eq!(se.min(), Some(90.0));
        assert_eq!(se.range(), Some(9.0));
        // Decreasing stream stores everything in one deque but stays
        // bounded by the window.
        let mut sd = SlidingExtrema::new(10).unwrap();
        for i in (0..100).rev() {
            sd.push(i as f64);
        }
        assert_eq!(sd.min(), Some(0.0));
        assert_eq!(sd.max(), Some(9.0));
        assert!(sd.stored() <= 20);
    }

    #[test]
    fn empty_and_invalid() {
        let se = SlidingExtrema::new(5).unwrap();
        assert_eq!(se.max(), None);
        assert_eq!(se.min(), None);
        assert_eq!(se.range(), None);
        assert!(SlidingExtrema::new(0).is_err());
    }
}
