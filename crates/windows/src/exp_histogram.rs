//! Generalized exponential histogram: count / sum / variance over a
//! sliding window (the "maintaining statistics like variance" problem of
//! §2 — Babcock, Datar, Motwani, O'Callaghan's extension of DGIM).

use sa_core::{Result, SaError};
use std::collections::VecDeque;

/// One bucket's aggregates (mergeable via Chan's parallel-variance rule).
#[derive(Clone, Copy, Debug)]
struct Bucket {
    /// Timestamp of the most recent element in the bucket.
    ts: u64,
    count: u64,
    sum: f64,
    /// Sum of squared deviations from the bucket mean.
    m2: f64,
}

impl Bucket {
    fn merge(self, other: Bucket) -> Bucket {
        let count = self.count + other.count;
        let delta = other.mean() - self.mean();
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / count as f64;
        Bucket { ts: self.ts.max(other.ts), count, sum: self.sum + other.sum, m2 }
    }
    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Sliding-window count / sum / mean / variance.
///
/// Every arrival opens a singleton bucket; when more than `r` buckets
/// share a count, the two oldest merge (doubling the count) — the DGIM
/// discipline applied to full statistics. All aggregates except the
/// straddling oldest bucket are exact, so the relative error of
/// count/sum is `≤ 1/(2(r−1))` and mean/variance inherit the same
/// boundary fuzziness.
#[derive(Clone, Debug)]
pub struct ExpHistogram {
    /// Newest at the front.
    buckets: VecDeque<Bucket>,
    window: u64,
    r: usize,
    now: u64,
}

impl ExpHistogram {
    /// Window of `n ≥ 1` slots, error target `ε ∈ (0, 0.5]`.
    pub fn new(n: u64, epsilon: f64) -> Result<Self> {
        if n == 0 {
            return Err(SaError::invalid("n", "must be positive"));
        }
        if !(epsilon > 0.0 && epsilon <= 0.5) {
            return Err(SaError::invalid("epsilon", "must be in (0, 0.5]"));
        }
        let r = (1.0 / (2.0 * epsilon)).ceil() as usize + 1;
        Ok(Self { buckets: VecDeque::new(), window: n, r, now: 0 })
    }

    /// Push the next value.
    pub fn push(&mut self, value: f64) {
        self.now += 1;
        while let Some(b) = self.buckets.back() {
            if b.ts + self.window <= self.now {
                self.buckets.pop_back();
            } else {
                break;
            }
        }
        self.buckets.push_front(Bucket { ts: self.now, count: 1, sum: value, m2: 0.0 });
        // Cascade merges on bucket *count* (powers of two, contiguous
        // non-decreasing runs toward the past).
        let mut size = 1u64;
        let mut run_start = 0usize;
        loop {
            let mut j = run_start;
            while j < self.buckets.len() && self.buckets[j].count == size {
                j += 1;
            }
            if j - run_start <= self.r {
                break;
            }
            let merged = self.buckets[j - 1].merge(self.buckets[j - 2]);
            self.buckets[j - 2] = merged;
            self.buckets.remove(j - 1);
            run_start = j - 2;
            size *= 2;
        }
    }

    /// Combine all live buckets, halving the straddling oldest one.
    fn combined(&self) -> Bucket {
        let mut acc: Option<Bucket> = None;
        let live = self.buckets.len();
        for (i, &b) in self.buckets.iter().enumerate() {
            let mut b = b;
            if i + 1 == live && live > 1 {
                // Oldest bucket straddles the window boundary: take half.
                b.count = (b.count / 2).max(1);
                let frac = b.count as f64 / self.buckets[i].count as f64;
                b.sum *= frac;
                b.m2 *= frac;
            }
            acc = Some(match acc {
                None => b,
                Some(a) => a.merge(b),
            });
        }
        acc.unwrap_or(Bucket { ts: 0, count: 0, sum: 0.0, m2: 0.0 })
    }

    /// Approximate number of live elements.
    pub fn count(&self) -> u64 {
        if self.buckets.is_empty() {
            0
        } else {
            self.combined().count
        }
    }

    /// Approximate sum over the window.
    pub fn sum(&self) -> f64 {
        self.combined().sum
    }

    /// Approximate mean over the window.
    pub fn mean(&self) -> f64 {
        self.combined().mean()
    }

    /// Approximate population variance over the window.
    pub fn variance(&self) -> f64 {
        let b = self.combined();
        if b.count < 2 {
            0.0
        } else {
            b.m2 / b.count as f64
        }
    }

    /// Buckets stored (space diagnostic).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::rng::SplitMix64;

    #[test]
    fn matches_exact_statistics() {
        let n = 5_000u64;
        let mut eh = ExpHistogram::new(n, 0.05).unwrap();
        let mut rng = SplitMix64::new(1);
        let mut all: Vec<f64> = Vec::new();
        for _ in 0..50_000 {
            let v = rng.next_f64() * 10.0 + 5.0;
            eh.push(v);
            all.push(v);
        }
        let live = &all[all.len() - n as usize..];
        let exact_mean = sa_core::stats::mean(live);
        let exact_var = live.iter().map(|x| (x - exact_mean) * (x - exact_mean)).sum::<f64>()
            / live.len() as f64;
        let exact_sum: f64 = live.iter().sum();
        assert!((eh.count() as f64 - n as f64).abs() / n as f64 <= 0.06, "count {}", eh.count());
        assert!(
            (eh.sum() - exact_sum).abs() / exact_sum <= 0.06,
            "sum {} vs {exact_sum}",
            eh.sum()
        );
        assert!(
            (eh.mean() - exact_mean).abs() / exact_mean <= 0.02,
            "mean {} vs {exact_mean}",
            eh.mean()
        );
        assert!(
            (eh.variance() - exact_var).abs() / exact_var <= 0.15,
            "var {} vs {exact_var}",
            eh.variance()
        );
    }

    #[test]
    fn detects_windowed_mean_shift() {
        let mut eh = ExpHistogram::new(1_000, 0.1).unwrap();
        for _ in 0..10_000 {
            eh.push(1.0);
        }
        for _ in 0..2_000 {
            eh.push(100.0);
        }
        // The window is now entirely in the new regime.
        assert!((eh.mean() - 100.0).abs() < 5.0, "mean = {}", eh.mean());
        assert!(eh.variance() < 10.0, "var = {}", eh.variance());
    }

    #[test]
    fn space_is_polylog() {
        let mut eh = ExpHistogram::new(100_000, 0.05).unwrap();
        let mut rng = SplitMix64::new(2);
        for _ in 0..500_000 {
            eh.push(rng.next_f64());
        }
        assert!(eh.bucket_count() < 300, "{} buckets", eh.bucket_count());
    }

    #[test]
    fn empty_and_singleton() {
        let mut eh = ExpHistogram::new(10, 0.1).unwrap();
        assert_eq!(eh.count(), 0);
        assert_eq!(eh.variance(), 0.0);
        eh.push(7.0);
        assert_eq!(eh.count(), 1);
        assert_eq!(eh.mean(), 7.0);
        assert_eq!(eh.variance(), 0.0);
    }

    #[test]
    fn invalid_params() {
        assert!(ExpHistogram::new(0, 0.1).is_err());
        assert!(ExpHistogram::new(10, 0.9).is_err());
    }
}
