//! # sa-windows
//!
//! Sliding-window algorithms — Section 2's second synopsis technique and
//! two dedicated Table-1 rows:
//!
//! * [`Dgim`] — Datar–Gionis–Indyk–Motwani exponential-histogram bit
//!   counting, the **Basic Counting** row (\[72\]): `(1±ε)`-approximate
//!   count of 1-bits in the last `n` slots using `O((1/ε)·log²n)` bits.
//! * [`SignificantOneCounter`] — Lee & Ting (SODA'06, \[119\]), the
//!   **Significant One Counting** row: `ε·m` error guaranteed only when
//!   `m ≥ θn`, in `O(1/(εθ))` space — cheaper than DGIM when only
//!   significant counts matter (traffic accounting \[81\]).
//! * [`ExpHistogram`] — generalized exponential histogram maintaining
//!   count/sum/mean/variance over the window ("maintaining statistics
//!   like variance", §2).
//! * [`SlidingExtrema`] — monotonic-deque max/min over the window.
//! * [`SlidingQuantile`] — block-merged quantile summary over a sliding
//!   window (the Arasu–Manku \[42\] problem).
//! * [`assigners`] — tumbling/sliding/session event-time window
//!   assignment used by the platform crate.

pub mod assigners;
mod dgim;
mod exp_histogram;
mod extrema;
mod significant;
mod sw_quantiles;

pub use dgim::Dgim;
pub use exp_histogram::ExpHistogram;
pub use extrema::SlidingExtrema;
pub use significant::SignificantOneCounter;
pub use sw_quantiles::SlidingQuantile;
