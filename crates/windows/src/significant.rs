//! Significant-one counting (Lee & Ting, SODA 2006 — the paper's
//! \[119\]): ε-accuracy only when the count is *significant*
//! (`m ≥ θn`), in `O(1/(εθ))` space instead of DGIM's `O((1/ε)·log²n)`.
//!
//! The insight: if only counts above `θn` matter (traffic accounting
//! \[81\]), buckets can have a fixed size `λ = ½εθn` rather than an
//! exponential ladder. At most `n/λ = 2/(εθ)` buckets exist, each
//! contributing at most λ of boundary uncertainty through the single
//! straddling bucket — so the absolute error is `≤ λ ≤ ½εθn ≤ ½εm ≤ εm`
//! whenever `m ≥ θn`.

use sa_core::{Result, SaError};
use std::collections::VecDeque;

/// Fixed-λ bucket counter for significant counts.
#[derive(Clone, Debug)]
pub struct SignificantOneCounter {
    /// Sealed buckets: (timestamp of last 1, ones) with ones == λ.
    buckets: VecDeque<(u64, u64)>,
    /// Ones in the currently filling bucket.
    fill: u64,
    lambda: u64,
    window: u64,
    theta: f64,
    epsilon: f64,
    now: u64,
}

impl SignificantOneCounter {
    /// Window `n`, significance threshold `θ ∈ (0,1)`, error `ε ∈ (0,1)`.
    pub fn new(n: u64, theta: f64, epsilon: f64) -> Result<Self> {
        if n == 0 {
            return Err(SaError::invalid("n", "must be positive"));
        }
        if !(theta > 0.0 && theta < 1.0) {
            return Err(SaError::invalid("theta", "must be in (0,1)"));
        }
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SaError::invalid("epsilon", "must be in (0,1)"));
        }
        let lambda = ((epsilon * theta * n as f64) / 2.0).floor().max(1.0) as u64;
        Ok(Self { buckets: VecDeque::new(), fill: 0, lambda, window: n, theta, epsilon, now: 0 })
    }

    /// Push the next bit.
    pub fn push(&mut self, bit: bool) {
        self.now += 1;
        // Expire buckets whose last 1 left the window.
        while let Some(&(ts, _)) = self.buckets.front() {
            if ts + self.window <= self.now {
                self.buckets.pop_front();
            } else {
                break;
            }
        }
        if bit {
            self.fill += 1;
            if self.fill == self.lambda {
                self.buckets.push_back((self.now, self.lambda));
                self.fill = 0;
            }
        }
    }

    /// Estimated 1s in the window. Accurate to `ε·m` when `m ≥ θ·n`;
    /// below the significance threshold only the weaker absolute bound
    /// `≤ ½εθn` holds (by design — that is the space saving).
    pub fn estimate(&self) -> u64 {
        let full: u64 = self.buckets.iter().map(|&(_, s)| s).sum();
        let straddle = if self.buckets.len() > 1 { self.lambda / 2 } else { 0 };
        (full + self.fill).saturating_sub(straddle)
    }

    /// Whether the current estimate clears the significance threshold.
    pub fn is_significant(&self) -> bool {
        self.estimate() as f64 >= self.theta * self.window as f64
    }

    /// Buckets stored — bounded by `2/(εθ) + 1` regardless of n.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket granularity λ.
    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    /// Theoretical space bound in buckets.
    pub fn space_bound(&self) -> usize {
        (2.0 / (self.epsilon * self.theta)).ceil() as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::rng::SplitMix64;
    use std::collections::VecDeque;

    struct ExactWindow {
        bits: VecDeque<bool>,
        n: usize,
    }
    impl ExactWindow {
        fn new(n: usize) -> Self {
            Self { bits: VecDeque::new(), n }
        }
        fn push(&mut self, b: bool) {
            self.bits.push_back(b);
            if self.bits.len() > self.n {
                self.bits.pop_front();
            }
        }
        fn count(&self) -> u64 {
            self.bits.iter().filter(|&&b| b).count() as u64
        }
    }

    #[test]
    fn significant_counts_within_epsilon() {
        let n = 10_000u64;
        let theta = 0.2;
        let eps = 0.1;
        let mut c = SignificantOneCounter::new(n, theta, eps).unwrap();
        let mut exact = ExactWindow::new(n as usize);
        let mut rng = SplitMix64::new(3);
        for i in 0..100_000u64 {
            let bit = rng.bernoulli(0.5); // m ≈ 0.5n ≥ θn: significant
            c.push(bit);
            exact.push(bit);
            if i > n && i % 1_003 == 0 {
                let t = exact.count();
                let e = c.estimate();
                let rel = (e as f64 - t as f64).abs() / t as f64;
                assert!(rel <= eps, "i={i}: est {e} true {t} rel {rel}");
                assert!(c.is_significant());
            }
        }
    }

    #[test]
    fn insignificant_counts_have_absolute_bound_only() {
        let n = 10_000u64;
        let theta = 0.2;
        let eps = 0.1;
        let mut c = SignificantOneCounter::new(n, theta, eps).unwrap();
        let mut exact = ExactWindow::new(n as usize);
        let mut rng = SplitMix64::new(4);
        for _ in 0..50_000u64 {
            let bit = rng.bernoulli(0.01); // m ≈ 0.01n < θn
            c.push(bit);
            exact.push(bit);
        }
        let t = exact.count();
        let e = c.estimate();
        let abs_bound = eps * theta * n as f64; // λ-scale slack
        assert!((e as f64 - t as f64).abs() <= abs_bound, "est {e} true {t} bound {abs_bound}");
        assert!(!c.is_significant());
    }

    #[test]
    fn space_independent_of_window_size() {
        for n in [10_000u64, 1_000_000] {
            let mut c = SignificantOneCounter::new(n, 0.1, 0.1).unwrap();
            for _ in 0..2 * n {
                c.push(true);
            }
            assert!(
                c.bucket_count() <= c.space_bound(),
                "n={n}: {} buckets > bound {}",
                c.bucket_count(),
                c.space_bound()
            );
        }
    }

    #[test]
    fn uses_less_space_than_dgim_at_same_epsilon() {
        use crate::Dgim;
        // The space advantage appears when only large counts matter
        // (θ = 0.5) and ε is tight — DGIM must pay (1/2ε)·log²n while
        // the λ-counter pays 2/(εθ).
        let n = 1_000_000u64;
        let mut sig = SignificantOneCounter::new(n, 0.5, 0.01).unwrap();
        let mut dgim = Dgim::new(n, 0.01).unwrap();
        let mut rng = SplitMix64::new(5);
        for _ in 0..2 * n {
            let b = rng.bernoulli(0.5);
            sig.push(b);
            dgim.push(b);
        }
        assert!(
            sig.bucket_count() < dgim.bucket_count(),
            "sig {} vs dgim {}",
            sig.bucket_count(),
            dgim.bucket_count()
        );
    }

    #[test]
    fn invalid_params() {
        assert!(SignificantOneCounter::new(0, 0.1, 0.1).is_err());
        assert!(SignificantOneCounter::new(10, 0.0, 0.1).is_err());
        assert!(SignificantOneCounter::new(10, 0.1, 1.0).is_err());
    }
}
