//! Sliding-window quantiles (the Arasu–Manku problem — "approximate
//! counts and quantiles over sliding windows", PODS 2004, the paper's
//! \[42\]) via block-level summaries.
//!
//! The window is covered by `B` equal blocks. Completed blocks are
//! compressed to a weighted sample (every ⌈εb⌉-th order statistic), the
//! current block is kept exact; a query merges the compressed blocks
//! overlapping the window. Rank error ≤ ε per block plus one boundary
//! block, i.e. `ε·w + w/B` total — choose `B ≈ 1/ε` for `O(ε·w)`.

use sa_core::{Result, SaError};
use std::collections::VecDeque;

/// A compressed block: sorted values with equal weights.
#[derive(Clone, Debug)]
struct BlockSummary {
    /// Sorted representative values.
    values: Vec<f64>,
    /// Weight (in original elements) per representative.
    weight: f64,
    /// Index of the last element in this block.
    end: u64,
}

/// Quantiles over the last `w` elements.
#[derive(Clone, Debug)]
pub struct SlidingQuantile {
    blocks: VecDeque<BlockSummary>,
    current: Vec<f64>,
    window: u64,
    block: usize,
    keep_every: usize,
    now: u64,
}

impl SlidingQuantile {
    /// Window `w ≥ 2`, rank-error target `ε ∈ (0, 0.5)`.
    pub fn new(w: u64, epsilon: f64) -> Result<Self> {
        if w < 2 {
            return Err(SaError::invalid("w", "must be at least 2"));
        }
        if !(epsilon > 0.0 && epsilon < 0.5) {
            return Err(SaError::invalid("epsilon", "must be in (0, 0.5)"));
        }
        // B ≈ 2/ε blocks; each compressed to ~2/ε representatives.
        let blocks = ((2.0 / epsilon).ceil() as u64).min(w.max(2)) as usize;
        let block = (w as usize / blocks).max(1);
        let keep_every = ((epsilon * block as f64) / 2.0).floor().max(1.0) as usize;
        Ok(Self {
            blocks: VecDeque::new(),
            current: Vec::with_capacity(block),
            window: w,
            block,
            keep_every,
            now: 0,
        })
    }

    /// Push the next value.
    pub fn push(&mut self, value: f64) {
        self.now += 1;
        self.current.push(value);
        if self.current.len() >= self.block {
            let mut vals = std::mem::take(&mut self.current);
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // Keep every keep_every-th order statistic (offset to the
            // middle of its stratum).
            let kept: Vec<f64> =
                vals.iter().skip(self.keep_every / 2).step_by(self.keep_every).copied().collect();
            let weight = vals.len() as f64 / kept.len().max(1) as f64;
            self.blocks.push_back(BlockSummary { values: kept, weight, end: self.now });
        }
        // Drop blocks entirely outside the window.
        let cutoff = self.now.saturating_sub(self.window);
        while let Some(b) = self.blocks.front() {
            if b.end <= cutoff {
                self.blocks.pop_front();
            } else {
                break;
            }
        }
    }

    /// Approximate `q`-quantile of the window (`None` while empty).
    pub fn query(&self, q: f64) -> Option<f64> {
        let mut weighted: Vec<(f64, f64)> = Vec::new();
        for b in &self.blocks {
            for &v in &b.values {
                weighted.push((v, b.weight));
            }
        }
        for &v in &self.current {
            weighted.push((v, 1.0));
        }
        if weighted.is_empty() {
            return None;
        }
        weighted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let total: f64 = weighted.iter().map(|(_, w)| w).sum();
        let target = q.clamp(0.0, 1.0) * total;
        let mut acc = 0.0;
        for (v, w) in &weighted {
            acc += w;
            if acc >= target {
                return Some(*v);
            }
        }
        weighted.last().map(|(v, _)| *v)
    }

    /// Stored representatives (space diagnostic).
    pub fn stored(&self) -> usize {
        self.blocks.iter().map(|b| b.values.len()).sum::<usize>() + self.current.len()
    }

    /// Elements seen.
    pub fn n(&self) -> u64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::rng::SplitMix64;
    use sa_core::stats::exact_rank;

    #[test]
    fn window_quantiles_within_error() {
        let w = 10_000u64;
        let eps = 0.05;
        let mut sq = SlidingQuantile::new(w, eps).unwrap();
        let mut rng = SplitMix64::new(1);
        let mut all = Vec::new();
        for _ in 0..60_000 {
            let v = rng.next_f64() * 100.0;
            sq.push(v);
            all.push(v);
        }
        let live = &all[all.len() - w as usize..];
        for &q in &[0.1, 0.5, 0.9] {
            let est = sq.query(q).unwrap();
            let r = exact_rank(live, est) as f64;
            let err = (r - q * w as f64).abs() / w as f64;
            assert!(err <= 2.0 * eps, "q={q}: rank error {err}");
        }
    }

    #[test]
    fn reflects_distribution_shift() {
        let mut sq = SlidingQuantile::new(1_000, 0.05).unwrap();
        for _ in 0..5_000 {
            sq.push(10.0);
        }
        for _ in 0..1_500 {
            sq.push(1_000.0);
        }
        let med = sq.query(0.5).unwrap();
        assert!(med > 500.0, "median = {med} did not track the shift");
    }

    #[test]
    fn space_is_compressed() {
        let w = 100_000u64;
        let mut sq = SlidingQuantile::new(w, 0.02).unwrap();
        let mut rng = SplitMix64::new(2);
        for _ in 0..300_000 {
            sq.push(rng.next_f64());
        }
        assert!(sq.stored() < w as usize / 4, "stored {} ≥ w/4", sq.stored());
    }

    #[test]
    fn empty_and_invalid() {
        let sq = SlidingQuantile::new(100, 0.1).unwrap();
        assert_eq!(sq.query(0.5), None);
        assert!(SlidingQuantile::new(1, 0.1).is_err());
        assert!(SlidingQuantile::new(100, 0.5).is_err());
    }
}
