//! Event-time window assignment: tumbling, sliding (hopping), and
//! session windows — the windowing vocabulary shared by every platform
//! in Table 2 (MillWheel's "notion of logical time", Spark's window
//! operator, Flink's assigners).

/// A half-open event-time window `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Window {
    /// Inclusive start.
    pub start: u64,
    /// Exclusive end.
    pub end: u64,
}

impl Window {
    /// Whether a timestamp falls inside the window.
    pub fn contains(&self, t: u64) -> bool {
        self.start <= t && t < self.end
    }

    /// Window length.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Assign a timestamp to its tumbling window of the given `size`.
pub fn tumbling(t: u64, size: u64) -> Window {
    assert!(size > 0, "window size must be positive");
    let start = t - t % size;
    Window { start, end: start + size }
}

/// Assign a timestamp to every sliding window of `size` advancing by
/// `slide` that contains it (at most `⌈size/slide⌉` windows).
pub fn sliding(t: u64, size: u64, slide: u64) -> Vec<Window> {
    assert!(size > 0 && slide > 0, "size and slide must be positive");
    assert!(slide <= size, "slide must not exceed size");
    let mut out = Vec::new();
    let last_start = t - t % slide;
    let mut start = last_start;
    loop {
        if start + size > t {
            out.push(Window { start, end: start + size });
        }
        if start < slide {
            break;
        }
        start -= slide;
        if start + size <= t {
            break;
        }
    }
    out.reverse();
    out
}

/// Incremental session-window builder with a fixed inactivity `gap`:
/// timestamps within `gap` of an existing session extend it; sessions
/// that touch are merged.
#[derive(Clone, Debug, Default)]
pub struct SessionWindows {
    /// Sorted, disjoint sessions.
    sessions: Vec<Window>,
    gap: u64,
}

impl SessionWindows {
    /// Create with inactivity gap `gap ≥ 1`.
    pub fn new(gap: u64) -> Self {
        assert!(gap > 0, "gap must be positive");
        Self { sessions: Vec::new(), gap }
    }

    /// Add an event timestamp; returns the (possibly merged) session it
    /// now belongs to.
    pub fn add(&mut self, t: u64) -> Window {
        self.add_tracking(t).0
    }

    /// Like [`SessionWindows::add`], but also returns the pre-existing
    /// sessions the new event absorbed (in ascending order). Stateful
    /// operators keying per-session aggregates need these to know which
    /// old aggregates to merge into the widened session.
    pub fn add_tracking(&mut self, t: u64) -> (Window, Vec<Window>) {
        let mut new = Window { start: t, end: t + self.gap };
        let mut absorbed = Vec::new();
        // Merge every session that overlaps [t, t+gap) or abuts within gap.
        let mut i = 0;
        while i < self.sessions.len() {
            let s = self.sessions[i];
            let overlaps = s.start <= new.end && new.start <= s.end;
            if overlaps {
                new.start = new.start.min(s.start);
                new.end = new.end.max(s.end);
                absorbed.push(s);
                self.sessions.remove(i);
            } else {
                i += 1;
            }
        }
        let pos = self.sessions.partition_point(|s| s.start < new.start);
        self.sessions.insert(pos, new);
        (new, absorbed)
    }

    /// Remove an open session (e.g. after its state was garbage
    /// collected). Returns whether it was present.
    pub fn remove(&mut self, w: &Window) -> bool {
        match self.sessions.iter().position(|s| s == w) {
            Some(i) => {
                self.sessions.remove(i);
                true
            }
            None => false,
        }
    }

    /// Sessions whose end precedes the watermark — safe to emit.
    pub fn close_before(&mut self, watermark: u64) -> Vec<Window> {
        let mut closed = Vec::new();
        self.sessions.retain(|s| {
            if s.end <= watermark {
                closed.push(*s);
                false
            } else {
                true
            }
        });
        closed
    }

    /// Currently open sessions.
    pub fn open(&self) -> &[Window] {
        &self.sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_partitions_time() {
        assert_eq!(tumbling(0, 10), Window { start: 0, end: 10 });
        assert_eq!(tumbling(9, 10), Window { start: 0, end: 10 });
        assert_eq!(tumbling(10, 10), Window { start: 10, end: 20 });
        assert!(tumbling(25, 10).contains(25));
    }

    #[test]
    fn sliding_covers_timestamp() {
        let ws = sliding(25, 10, 5);
        assert_eq!(ws.len(), 2);
        for w in &ws {
            assert!(w.contains(25), "{w:?}");
            assert_eq!(w.len(), 10);
        }
        assert_eq!(ws[0], Window { start: 20, end: 30 });
        // slide == size degenerates to tumbling.
        let wt = sliding(25, 10, 10);
        assert_eq!(wt, vec![tumbling(25, 10)]);
    }

    #[test]
    fn sliding_early_timestamps() {
        let ws = sliding(2, 10, 5);
        assert!(!ws.is_empty());
        for w in ws {
            assert!(w.contains(2));
        }
    }

    #[test]
    fn sessions_merge_on_proximity() {
        let mut s = SessionWindows::new(10);
        s.add(100);
        s.add(105); // extends
        assert_eq!(s.open().len(), 1);
        assert_eq!(s.open()[0], Window { start: 100, end: 115 });
        s.add(200); // separate
        assert_eq!(s.open().len(), 2);
        s.add(120); // bridges nothing (115+ gap? 120 within [100,115+?]) —
                    // 120 < 115? no: 120 overlaps [120,130) with [100,115)? no.
        assert_eq!(s.open().len(), 3);
        // An event between two sessions merges them.
        s.add(112); // [112,122) overlaps [100,115) and [120,130)
        assert_eq!(s.open().len(), 2);
        assert_eq!(s.open()[0], Window { start: 100, end: 130 });
    }

    #[test]
    fn add_tracking_reports_absorbed_sessions() {
        let mut s = SessionWindows::new(10);
        s.add(100);
        s.add(120);
        let (merged, absorbed) = s.add_tracking(110);
        assert_eq!(merged, Window { start: 100, end: 130 });
        assert_eq!(
            absorbed,
            vec![Window { start: 100, end: 110 }, Window { start: 120, end: 130 }]
        );
        let (solo, none) = s.add_tracking(500);
        assert_eq!(solo, Window { start: 500, end: 510 });
        assert!(none.is_empty());
    }

    #[test]
    fn remove_drops_open_session() {
        let mut s = SessionWindows::new(5);
        let w = s.add(10);
        assert!(s.remove(&w));
        assert!(!s.remove(&w), "already gone");
        assert!(s.open().is_empty());
    }

    #[test]
    fn sessions_close_on_watermark() {
        let mut s = SessionWindows::new(5);
        s.add(10);
        s.add(100);
        let closed = s.close_before(50);
        assert_eq!(closed, vec![Window { start: 10, end: 15 }]);
        assert_eq!(s.open().len(), 1);
    }

    #[test]
    #[should_panic(expected = "slide must not exceed size")]
    fn sliding_rejects_bad_slide() {
        sliding(0, 5, 10);
    }
}
