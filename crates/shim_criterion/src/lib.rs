//! Offline stand-in for the `criterion` crate.
//!
//! The vendored environment has no registry access, so this package
//! reproduces the slice of criterion's API the t-series benches use:
//! groups, `bench_function`/`bench_with_input`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//! Measurement is a plain adaptive wall-clock loop — good enough to
//! compare configurations on one machine, with none of criterion's
//! statistics.

use std::time::{Duration, Instant};

/// Re-exported opaque-value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared per-iteration workload, for items/sec reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark name (`function/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { full: format!("{}/{}", function.into(), parameter) }
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== bench group: {name} ==");
        BenchmarkGroup { _c: self, throughput: None, target: Duration::from_millis(300) }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_one(name, None, Duration::from_millis(300), f);
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    throughput: Option<Throughput>,
    target: Duration,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration workload for items/sec reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Criterion compatibility: sample count maps onto measure time.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.target = Duration::from_millis(30 * n.clamp(5, 100) as u64);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.throughput, self.target, f);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.full, self.throughput, self.target, |b| f(b, input));
        self
    }

    /// End the group (printing already happened per bench).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    target: Duration,
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_secs: f64,
}

impl Bencher {
    /// Measure `f`: one warmup call, then enough iterations to fill the
    /// measurement window.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let reps = (self.target.as_secs_f64() / once.as_secs_f64()).clamp(1.0, 1e7) as u64;
        let t1 = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        self.mean_secs = t1.elapsed().as_secs_f64() / reps as f64;
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    target: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { target, mean_secs: 0.0 };
    f(&mut b);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if b.mean_secs > 0.0 => {
            format!("  {:.2} Melem/s", n as f64 / b.mean_secs / 1e6)
        }
        Some(Throughput::Bytes(n)) if b.mean_secs > 0.0 => {
            format!("  {:.2} MiB/s", n as f64 / b.mean_secs / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("  {name:<40} {:>12.3} µs/iter{rate}", b.mean_secs * 1e6);
}

/// Bundle benchmark functions into one runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
